"""Tests for the synthetic survey pipeline (geometry, population, measurement)."""

import random

import pytest

from repro.htm import arcmin_between, htm_level
from repro.pipeline import (CLASS_FRACTIONS, FramesPipeline, decode_obj_id,
                            deblend_family, encode_field_id, encode_obj_id,
                            make_geometry, overlap_fraction, primary_fraction,
                            synthesize_population)
from repro.pipeline.geometry import BANDS_PER_STRIPE, STRIPE_WIDTH_DEG
from repro.schema.flags import PhotoFlags, PhotoType


class TestGeometry:
    @pytest.fixture(scope="class")
    def geometry(self):
        return make_geometry(24, center_ra=185.0, seed=5)

    def test_field_count_close_to_requested(self, geometry):
        assert len(geometry) in (24, 36)

    def test_stripe_width(self, geometry):
        assert geometry.dec_max - geometry.dec_min == pytest.approx(STRIPE_WIDTH_DEG)

    def test_two_runs_and_six_camcols(self, geometry):
        runs = {field.run for field in geometry}
        camcols = {field.camcol for field in geometry}
        assert len(runs) == 2
        assert camcols == set(range(1, 7))

    def test_every_interior_point_is_covered(self, geometry):
        rng = random.Random(3)
        for _ in range(200):
            ra = rng.uniform(geometry.ra_min + 1e-6, geometry.ra_max - 1e-6)
            dec = rng.uniform(geometry.dec_min + 1e-6, geometry.dec_max - 1e-6)
            assert geometry.fields_containing(ra, dec)

    def test_overlap_fraction_near_eleven_percent(self, geometry):
        fraction = overlap_fraction(geometry, sample_points=4000)
        assert 0.05 <= fraction <= 0.18

    def test_primary_field_is_deterministic(self, geometry):
        candidates = None
        for field in geometry:
            # Find a point covered by two fields.
            probe_dec = field.dec_max - 1e-4
            covering = geometry.fields_containing(field.ra_center, probe_dec)
            if len(covering) >= 2:
                candidates = (field.ra_center, probe_dec)
                break
        assert candidates is not None
        primary = geometry.primary_field_for(*candidates)
        assert primary is geometry.primary_field_for(*candidates)

    def test_adjacent_fields_share_run_and_camcol(self):
        geometry = make_geometry(48, center_ra=185.0, seed=5)
        field = geometry.fields[0]
        for neighbour in geometry.adjacent_fields(field):
            assert neighbour.run == field.run and neighbour.camcol == field.camcol
            assert abs(neighbour.field - field.field) == 1

    def test_bands_per_stripe_constant(self):
        assert BANDS_PER_STRIPE == 12


class TestPopulation:
    @pytest.fixture(scope="class")
    def population(self):
        geometry = make_geometry(12, center_ra=185.0, seed=5)
        return synthesize_population(geometry, rng=random.Random(1),
                                     density_per_sq_deg=4000.0)

    def test_class_mix_roughly_matches_fractions(self, population):
        counts = {}
        for source in population:
            counts[source.kind] = counts.get(source.kind, 0) + 1
        total = len(population)
        assert counts["galaxy"] / total == pytest.approx(CLASS_FRACTIONS["galaxy"], abs=0.08)
        assert counts["star"] / total == pytest.approx(CLASS_FRACTIONS["star"], abs=0.08)

    def test_magnitudes_in_survey_range(self, population):
        for source in population:
            assert 10.0 < source.mag_r < 24.5

    def test_quasars_are_blue(self, population):
        quasars = [source for source in population if source.kind == "qso"]
        assert quasars
        mean_ug = sum(source.colors["u"] - source.colors["g"] for source in quasars) / len(quasars)
        assert mean_ug < 0.6

    def test_q1_cluster_planted(self, population):
        cluster = [source for source in population if source.tag == "q1_cluster"]
        assert len(cluster) >= 10
        for source in cluster:
            assert arcmin_between(source.ra, source.dec, 185.0, -0.5) <= 1.0

    def test_saturated_interlopers_planted(self, population):
        saturated = [source for source in population if source.tag == "q1_saturated"]
        assert saturated
        assert all(source.mag_r < 14.0 for source in saturated)

    def test_asteroid_velocities_in_query_window(self, population):
        asteroids = [source for source in population
                     if source.kind == "asteroid" and not source.tag]
        assert asteroids
        for source in asteroids:
            speed2 = source.rowv ** 2 + source.colv ** 2
            assert 50.0 <= speed2 <= 1000.0
            assert source.rowv >= 0 and source.colv >= 0

    def test_neo_pairs_planted_close_together(self, population):
        reds = {source.tag: source for source in population if source.tag.endswith("_red")}
        greens = {source.tag: source for source in population if source.tag.endswith("_green")}
        assert len(reds) >= 3
        for tag, red in reds.items():
            green = greens[tag.replace("_red", "_green")]
            assert arcmin_between(red.ra, red.dec, green.ra, green.dec) < 4.0


class TestFramesPipeline:
    @pytest.fixture()
    def measured(self):
        geometry = make_geometry(12, center_ra=185.0, seed=5)
        population = synthesize_population(geometry, rng=random.Random(2),
                                           density_per_sq_deg=800.0)
        frames = FramesPipeline(random.Random(3))
        field = geometry.fields[0]
        rows = []
        for number, source in enumerate(population[:50], start=1):
            rows.append(frames.measure(source, field, number))
        return field, rows

    def test_objid_encoding_roundtrip(self):
        obj_id = encode_obj_id(756, 44, 3, 112, 57)
        decoded = decode_obj_id(obj_id)
        assert decoded == {"run": 756, "rerun": 44, "camcol": 3, "field": 112, "obj": 57}

    def test_field_id_embedded_in_obj_id(self):
        field_id = encode_field_id(756, 44, 3, 112)
        obj_id = encode_obj_id(756, 44, 3, 112, 57)
        assert decode_obj_id(obj_id)["field"] == field_id & 0xFFFF

    def test_measured_rows_have_spatial_columns(self, measured):
        _field, rows = measured
        for row in rows:
            assert htm_level(row["htmID"]) == 20
            norm = row["cx"] ** 2 + row["cy"] ** 2 + row["cz"] ** 2
            assert norm == pytest.approx(1.0, abs=1e-9)

    def test_magnitude_errors_grow_for_faint_objects(self, measured):
        _field, rows = measured
        bright = [row for row in rows if row["modelMag_r"] < 18]
        faint = [row for row in rows if row["modelMag_r"] > 21]
        if bright and faint:
            mean_bright = sum(row["modelMagErr_r"] for row in bright) / len(bright)
            mean_faint = sum(row["modelMagErr_r"] for row in faint) / len(faint)
            assert mean_faint > mean_bright

    def test_saturated_flag_for_bright_objects(self, measured):
        _field, rows = measured
        for row in rows:
            if row["psfMag_r"] < 13.0:
                assert row["flags"] & int(PhotoFlags.SATURATED)

    def test_frame_rows_cover_zoom_levels(self, measured):
        field, _rows = measured
        frames = FramesPipeline(random.Random(3)).frame_rows(field)
        assert [frame["zoom"] for frame in frames] == [0, 1, 2, 3, 4]
        assert all(isinstance(frame["img"], bytes) and frame["img"] for frame in frames)

    def test_profile_row_blob_lengths(self, measured):
        from repro.schema.photo import PROFILE_BINS

        geometry = make_geometry(12, center_ra=185.0, seed=5)
        population = synthesize_population(geometry, rng=random.Random(2),
                                           density_per_sq_deg=200.0)
        frames = FramesPipeline(random.Random(3))
        row = frames.measure(population[0], geometry.fields[0], 1)
        profile = frames.profile_row(row, population[0])
        assert len(profile["profMean"]) == PROFILE_BINS * 5 * 4
        assert profile["objID"] == row["objID"]


class TestDeblendAndSurvey:
    def test_deblend_family_creates_two_children(self):
        rng = random.Random(1)
        row = {"objID": encode_obj_id(756, 44, 1, 100, 5), "obj": 5, "type": int(PhotoType.GALAXY),
               "flags": 0, "nChild": 0, "parentID": 0, "ra": 185.0, "dec": -0.5,
               "petroRad_r": 3.0, "modelMag_r": 19.0, "probPSF": 0.1}
        rows, next_number = deblend_family(row, rng, 20001, force=True)
        assert len(rows) == 3
        parent, child_a, child_b = rows
        assert parent["flags"] & int(PhotoFlags.BLENDED)
        assert parent["nChild"] == 2
        for child in (child_a, child_b):
            assert child["parentID"] == parent["objID"]
            assert child["flags"] & int(PhotoFlags.CHILD)
            assert child["modelMag_r"] > parent["modelMag_r"]
        assert next_number == 20003

    def test_deblend_family_can_skip(self):
        rng = random.Random(1)
        row = {"objID": 1, "obj": 1, "type": int(PhotoType.STAR), "flags": 0, "nChild": 0,
               "parentID": 0, "ra": 1.0, "dec": 1.0, "petroRad_r": 1.0, "probPSF": 0.9}
        rows, next_number = deblend_family(row, rng, 100, force=False)
        assert rows == [row]
        assert next_number == 100

    def test_survey_counts_and_ratios(self, survey_output):
        counts = survey_output.counts()
        assert counts["PhotoObj"] > 1000
        assert counts["Profile"] == counts["PhotoObj"]
        assert counts["Frame"] == 5 * counts["Field"]
        assert counts["SpecLine"] >= 20 * counts["SpecObj"]
        assert counts["xcRedShift"] == 30 * counts["SpecObj"]
        assert counts["Plate"] >= 1

    def test_primary_fraction_near_eighty_percent(self, survey_output):
        fraction = primary_fraction(survey_output.tables["PhotoObj"])
        assert 0.70 <= fraction <= 0.92

    def test_duplicate_fraction_near_eleven_percent(self, survey_output):
        photo = survey_output.tables["PhotoObj"]
        top_level = [row for row in photo if row["parentID"] == 0]
        secondaries = [row for row in top_level
                       if not row["flags"] & int(PhotoFlags.PRIMARY)]
        fraction = len(secondaries) / len(top_level)
        assert 0.04 <= fraction <= 0.20

    def test_spec_objects_point_back_to_photo(self, survey_output):
        photo_ids = {row["objID"] for row in survey_output.tables["PhotoObj"]}
        for spec in survey_output.tables["SpecObj"]:
            assert spec["objID"] in photo_ids

    def test_specobjid_backfilled_on_photoobj(self, survey_output):
        spec_ids = {row["specObjID"] for row in survey_output.tables["SpecObj"]}
        linked = {row["specObjID"] for row in survey_output.tables["PhotoObj"]
                  if row["specObjID"]}
        assert linked == spec_ids

    def test_export_csv_roundtrip(self, survey_output, tmp_path):
        from repro.pipeline import read_csv

        paths = survey_output.export_csv(tmp_path / "csv")
        assert set(paths) == set(survey_output.tables)
        columns, rows = read_csv(paths["Field"])
        assert len(rows) == len(survey_output.tables["Field"])
        assert "fieldID" in columns
