"""Property tests: ColumnStore and RowStore are observationally identical.

The same random data is loaded into a row-backed and a column-backed
table, a random single-table query (filter / projection / aggregation /
ORDER BY / TOP) runs against both, and the results must match exactly —
the column-backed run through the vectorized batch pipeline, the
row-backed run through the fused/compiled row path.  A second pass
deletes a random subset, vacuums both stores and re-checks.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (Database, Planner, PrimaryKey, bigint, boolean,
                          floating, text)
from repro.engine.sql import parse_select

settings.register_profile("repro-columnar", deadline=None, max_examples=40)
settings.load_profile("repro-columnar")


ROW_STRATEGY = st.lists(
    st.tuples(
        st.one_of(st.none(),
                  st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)),
        st.integers(min_value=-255, max_value=255),
        st.sampled_from(["star", "galaxy", "Star", "QSO", ""]),
        st.booleans(),
    ),
    min_size=0, max_size=80)

PREDICATES = [
    "value > 10",
    "value is not null and value < 0",
    "flags & 3 = 1",
    "flags between 16 and 200",
    "label = 'star'",
    "label in ('star', 'QSO')",
    "label like 's%'",
    "value > -100 and flags % 7 = 2",
    "flags / 2 >= 10 or value is null",
    "label between 'B' and 'b'",          # case-SENSITIVE, unlike =/</<=
    "not (flags > 100) and -flags < 50",
    "ok & 1 = 1",
    "(flags | 8) % 3 = 0 and label >= 'Q'",
]

PROJECTIONS = [
    "id, value, flags, label",
    "id, value * 2 - 1 as v2, flags & 15 as low",
    "id, ok & ok as both, -flags as neg",  # bool bitwise must yield ints
    "*",
]

AGGREGATES = [
    "count(*) as n",
    "count(*) as n, min(value) as lo, max(value) as hi, avg(flags) as af",
    "label, count(*) as n, sum(flags) as s",        # GROUP BY label
    "count(distinct label) as d",
]


def _build_pair(rows):
    databases = []
    for storage in ("row", "column"):
        database = Database(f"prop-{storage}")
        table = database.create_table("t", [
            bigint("id"), floating("value", nullable=True),
            bigint("flags"), text("label", nullable=True), boolean("ok"),
        ], primary_key=PrimaryKey(["id"]), storage=storage)
        table.insert_many(
            {"id": index, "value": value, "flags": flags,
             "label": label or None, "ok": ok}
            for index, (value, flags, label, ok) in enumerate(rows))
        databases.append(database)
    return databases


def _run(database, sql):
    plan = Planner(database).plan(parse_select(sql))
    result = plan.execute()
    return result.rows, result.statistics


def _queries(predicate_index, projection_index, aggregate_index,
             order_desc, top):
    predicate = PREDICATES[predicate_index % len(PREDICATES)]
    projection = PROJECTIONS[projection_index % len(PROJECTIONS)]
    aggregate = AGGREGATES[aggregate_index % len(AGGREGATES)]
    top_clause = f"top {top} " if top else ""
    direction = "desc" if order_desc else ""
    queries = [
        f"select {top_clause}{projection} from t where {predicate}",
        f"select {projection} from t where {predicate} order by id {direction}",
    ]
    if aggregate.startswith("label,"):
        queries.append(f"select {aggregate} from t where {predicate} group by label")
    else:
        queries.append(f"select {aggregate} from t where {predicate}")
    return queries


@given(rows=ROW_STRATEGY,
       predicate_index=st.integers(min_value=0, max_value=63),
       projection_index=st.integers(min_value=0, max_value=63),
       aggregate_index=st.integers(min_value=0, max_value=63),
       order_desc=st.booleans(),
       top=st.integers(min_value=0, max_value=7))
def test_column_store_matches_row_store(rows, predicate_index, projection_index,
                                        aggregate_index, order_desc, top):
    row_db, col_db = _build_pair(rows)
    for sql in _queries(predicate_index, projection_index, aggregate_index,
                        order_desc, top):
        row_rows, _ = _run(row_db, sql)
        col_rows, _ = _run(col_db, sql)
        assert col_rows == row_rows, sql
        # Dict equality treats True == 1; require identical value types
        # too (the interpreter's bitwise ops return ints, never bools).
        assert [[type(value) for value in row.values()] for row in col_rows] == \
            [[type(value) for value in row.values()] for row in row_rows], sql


@given(rows=ROW_STRATEGY,
       predicate_index=st.integers(min_value=0, max_value=63),
       modulus=st.integers(min_value=2, max_value=5))
def test_vacuum_preserves_results_on_both_stores(rows, predicate_index, modulus):
    row_db, col_db = _build_pair(rows)
    sql = (f"select id, value, flags, label from t "
           f"where {PREDICATES[predicate_index % len(PREDICATES)]} order by id")
    for database in (row_db, col_db):
        table = database.table("t")
        table.delete_where(lambda row: row["id"] % modulus == 0)
    before_row, _ = _run(row_db, sql)
    before_col, _ = _run(col_db, sql)
    assert before_col == before_row
    for database in (row_db, col_db):
        table = database.table("t")
        dead = table.tombstone_count
        assert table.vacuum() == dead
        assert table.tombstone_count == 0
    after_row, _ = _run(row_db, sql)
    after_col, _ = _run(col_db, sql)
    assert after_row == before_row
    assert after_col == before_col
