"""Cluster subsystem tests: partitioning, pruning, merges, integration.

The acceptance test at the bottom builds a 4-shard SkyServer over the
same synthetic survey the session fixtures load single-node, runs the
whole fig13 20-query suite on both, and asserts byte-identical results.
"""

from __future__ import annotations

import pytest

from repro.cluster import (ClusterSession, DerivedPlacement, FallbackPlan,
                           HashPlacement, HtmPlacement, ShardCluster,
                           SingleTablePlan, ZonePlacement, colocated,
                           quantile_boundaries, stable_hash)
from repro.engine import (Database, PrimaryKey, SqlSession, bigint, floating,
                          integer)
from repro.engine.operators import AggregateState
from repro.engine.expressions import AggregateCall
from repro.skyserver import QueryLimits, SkyServer
from repro.skyserver.pool import SkyServerPool


# ---------------------------------------------------------------------------
# Fixtures: a small generic two-table database (Obj + its Nbr arm)
# ---------------------------------------------------------------------------

def build_generic(rows: int = 400, neighbors: int = 600) -> Database:
    import random

    database = Database("cluster-unit")
    obj = database.create_table(
        "Obj",
        [bigint("objID"), integer("type"), floating("dec"), floating("mag"),
         bigint("htmID")],
        primary_key=PrimaryKey(["objID"]))
    nbr = database.create_table(
        "Neighbors",
        [bigint("objID"), bigint("neighborObjID"), floating("distance")],
        primary_key=PrimaryKey(["objID", "neighborObjID"]))
    rng = random.Random(20020603)
    ids = [i * 13 + 5 for i in range(rows)]
    obj.insert_many(
        {"objID": oid, "type": rng.randint(0, 3),
         "dec": rng.uniform(-30.0, 30.0), "mag": rng.uniform(14.0, 24.0),
         "htmID": rng.randint(10 ** 12, 2 * 10 ** 12)}
        for oid in ids)
    seen = set()
    pairs = []
    while len(pairs) < neighbors:
        a, b = rng.sample(ids, 2)
        if (a, b) in seen:
            continue
        seen.add((a, b))
        pairs.append({"objID": a, "neighborObjID": b,
                      "distance": rng.uniform(0.0, 1.0)})
    nbr.insert_many(pairs)
    database.analyze()
    return database


AFFINITY = {"obj": "objid", "neighbors": "objid"}


def make_cluster(shards: int, partition: str = "hash") -> ShardCluster:
    return ShardCluster.from_database(build_generic(), shards=shards,
                                      partition=partition, affinity=AFFINITY)


# ---------------------------------------------------------------------------
# Partitioning schemes
# ---------------------------------------------------------------------------

class TestPlacements:
    def test_stable_hash_is_process_independent(self):
        assert stable_hash(12345) == stable_hash(12345)
        assert stable_hash("abc") == stable_hash("abc")
        # splitmix64 spreads sequential ids
        shards = {stable_hash(i) % 4 for i in range(32)}
        assert shards == {0, 1, 2, 3}

    def test_hash_placement_prunes_equality_to_one_shard(self):
        placement = HashPlacement("Obj", "objid", 8)
        assert placement.prune_equal(42) == {stable_hash(42) % 8}
        assert placement.prune_range(1, 100) == set(range(8))

    def test_range_placement_boundaries(self):
        placement = ZonePlacement("Obj", "dec", 4, [-10.0, 0.0, 10.0])
        assert placement.shard_of({"dec": -20.0}) == 0
        assert placement.shard_of({"dec": -5.0}) == 1
        assert placement.shard_of({"dec": 25.0}) == 3
        assert placement.prune_range(-5.0, 5.0) == {1, 2}
        assert placement.prune_range(11.0, 20.0) == {3}
        assert placement.prune_range(None, -15.0) == {0}

    def test_htm_placement_prunes_cover_ranges(self):
        placement = HtmPlacement("PhotoObj", "htmid", 4, [100, 200, 300])
        assert placement.prune_ranges([(10, 50)]) == {0}
        assert placement.prune_ranges([(150, 160), (350, 400)]) == {1, 3}

    def test_quantile_boundaries_balance(self):
        values = list(range(100))
        boundaries = quantile_boundaries(values, 4)
        assert len(boundaries) == 3
        assert boundaries == sorted(boundaries)

    def test_derived_placement_follows_parent(self):
        parent = ZonePlacement("Obj", "dec", 2, [0.0])
        route = {1: 0, 2: 1}
        derived = DerivedPlacement("Neighbors", "objid", 2, "Obj", route)
        assert derived.shard_of({"objid": 1}) == 0
        assert derived.shard_of({"objid": 2}) == 1
        assert colocated(derived, "objid", parent, "objid")
        assert not colocated(derived, "neighborobjid", parent, "objid")

    def test_hash_colocation_requires_same_token_and_columns(self):
        a = HashPlacement("Obj", "objid", 4)
        b = HashPlacement("Neighbors", "objid", 4)
        c = HashPlacement("Neighbors", "objid", 8)
        assert colocated(a, "objid", b, "objid")
        assert not colocated(a, "objid", c, "objid")
        assert not colocated(a, "mag", b, "objid")


# ---------------------------------------------------------------------------
# Shard nodes: sequences survive layout changes
# ---------------------------------------------------------------------------

class TestShardNode:
    def test_split_preserves_global_order(self):
        database = build_generic(rows=50, neighbors=40)
        original = [row["objid"] for _rid, row in
                    database.table("Obj").iter_rows()]
        cluster = ShardCluster.from_database(database, shards=3,
                                             affinity=AFFINITY)
        gathered = [row["objid"] for _seq, row in cluster.gathered_rows("Obj")]
        assert gathered == original

    def test_sequences_survive_convert_and_vacuum(self):
        database = build_generic(rows=60, neighbors=10)
        cluster = ShardCluster.from_database(database, shards=2,
                                             affinity=AFFINITY)
        before = [row["objid"] for _seq, row in cluster.gathered_rows("Obj")]
        for node in cluster.shards:
            node.convert_storage("column")
        assert [row["objid"] for _s, row in cluster.gathered_rows("Obj")] == before
        removed = cluster.delete_where("Obj", lambda row: row["type"] == 0)
        assert removed > 0
        survivors = [row["objid"] for _s, row in cluster.gathered_rows("Obj")]
        for node in cluster.shards:
            node.vacuum("Obj")
        assert [row["objid"] for _s, row in cluster.gathered_rows("Obj")] == survivors

    def test_insert_routes_by_placement(self):
        cluster = make_cluster(4)
        placement = cluster.placement("Obj")
        shard = cluster.insert("Obj", {"objID": 999983, "type": 1,
                                       "dec": 1.0, "mag": 20.0, "htmID": 7})
        assert shard == placement.shard_of({"objid": 999983})
        assert cluster.total_rows("Obj") == 401


# ---------------------------------------------------------------------------
# Distributed planning and pruning
# ---------------------------------------------------------------------------

class TestPlanningAndPruning:
    def test_single_table_chain_distributes(self):
        cluster = make_cluster(4)
        session = ClusterSession(cluster)
        from repro.engine.sql import parse_batch

        query = parse_batch("select objID from Obj where mag < 20")[0].query
        plan = session.cluster_planner.plan(query)
        assert isinstance(plan, SingleTablePlan)

    def test_function_and_multiway_joins_fall_back(self):
        cluster = make_cluster(2)
        session = ClusterSession(cluster)
        from repro.engine.sql import parse_batch

        sql = ("select o.objID from Obj o "
               "join Neighbors n on n.objID = o.objID "
               "join Obj p on p.objID = n.neighborObjID")
        plan = session.cluster_planner.plan(parse_batch(sql)[0].query)
        assert isinstance(plan, FallbackPlan)

    def test_pk_equality_prunes_to_one_shard(self):
        cluster = make_cluster(4)
        session = ClusterSession(cluster)
        executor = cluster.executor
        before = executor.fragments_pruned
        result = session.query("select objID from Obj where objID = 57")
        assert len(result.rows) == 1
        assert executor.fragments_pruned - before == 3

    def test_zone_range_prunes_shards(self):
        cluster = make_cluster(4, partition="zone")
        session = ClusterSession(cluster)
        executor = cluster.executor
        before = executor.fragments_pruned
        session.query("select count(*) as n from Obj where dec between 25 and 29")
        assert executor.fragments_pruned - before >= 2

    def test_statistics_prune_non_partition_columns(self):
        # Zone shards carry disjoint dec statistics, so even a predicate
        # evaluated through the stats-only path prunes.
        cluster = make_cluster(4, partition="zone")
        from repro.cluster import candidate_shards
        from repro.engine.sql import parse_batch

        session = ClusterSession(cluster)
        query = parse_batch("select objID from Obj where dec > 29")[0].query
        plan = session.cluster_planner.plan(query)
        assert isinstance(plan, SingleTablePlan)
        survivors = candidate_shards(cluster, plan.relation,
                                     cluster.coordinator.evaluation_context())
        assert len(survivors) < 4

    def test_explain_shows_shard_and_merge_operators(self):
        cluster = make_cluster(4)
        session = ClusterSession(cluster)
        text = session.explain("select objID from Obj where objID = 57")
        assert "Merge" in text
        assert "Shard[0]" in text and "Shard[3]" in text
        assert "pruned=3" in text
        fallback = session.explain(
            "select o.objID from Obj o join Neighbors n "
            "on n.neighborObjID = o.objID")
        assert "Gather" in fallback


# ---------------------------------------------------------------------------
# Equivalence on the generic database (spot checks; the hypothesis suite
# in test_property_cluster.py covers the space)
# ---------------------------------------------------------------------------

QUERIES = [
    "select objID, mag from Obj where mag < 18 and type = 2",
    "select count(*) as n, min(mag) as lo, max(mag) as hi, avg(mag) as m "
    "from Obj where dec > 0",
    "select type, count(*) as n from Obj group by type order by n desc",
    "select top 7 objID from Obj where type = 1",
    "select top 5 objID, mag from Obj order by mag desc",
    "select distinct type from Obj",
    "select * from Obj where dec between 5 and 6",
    "select n.objID, n.distance, o.mag from Neighbors n "
    "join Obj o on o.objID = n.objID where n.distance < 0.2 and o.mag < 20",
    "select n.objID, count(*) as companions from Neighbors n "
    "join Obj o on o.objID = n.objID where o.type = 1 "
    "group by n.objID having count(*) >= 2 order by companions desc",
]


@pytest.mark.parametrize("shards,partition", [(2, "hash"), (4, "hash"),
                                              (4, "zone"), (3, "htm")])
def test_generic_equivalence(shards, partition):
    single = SqlSession(build_generic())
    cluster = make_cluster(shards, partition)
    session = ClusterSession(cluster)
    for sql in QUERIES:
        expected = single.query(sql)
        actual = session.query(sql)
        assert actual.columns == expected.columns, sql
        assert actual.rows == expected.rows, sql


def test_select_into_materialises_on_coordinator():
    single = SqlSession(build_generic())
    cluster = make_cluster(3)
    session = ClusterSession(cluster)
    sql = "select objID, mag into ##bright from Obj where mag < 16"
    expected = single.query(sql)
    actual = session.query(sql)
    assert actual.rows == expected.rows
    follow = session.query("select count(*) as n from ##bright")
    assert follow.rows[0]["n"] == len(expected.rows)


def test_row_limit_enforced_on_distributed_path():
    from repro.engine import QueryLimitExceeded

    cluster = make_cluster(2)
    session = ClusterSession(cluster, row_limit=5)
    with pytest.raises(QueryLimitExceeded):
        session.query("select objID from Obj")


def test_analyze_refreshes_shard_statistics():
    cluster = make_cluster(2)
    session = ClusterSession(cluster)
    cluster.insert("Obj", {"objID": 10 ** 9, "type": 1, "dec": 0.5,
                           "mag": 15.0, "htmID": 11})
    session.execute("analyze Obj")
    for node in cluster.shards:
        statistics = node.database.table_statistics("Obj")
        assert statistics is not None
        assert not statistics.is_stale(node.table("Obj"))


# ---------------------------------------------------------------------------
# AVG partial aggregation (engine satellite)
# ---------------------------------------------------------------------------

class TestAggregatePartials:
    def test_avg_merges_as_sum_count_pairs(self):
        left = AggregateState(AggregateCall("avg", None))
        right = AggregateState(AggregateCall("avg", None))
        for value in (2, 4):
            left.update(value)
        for value in (6,):
            right.update(value)
        left.merge_partial(right.partial_state())
        assert left.result() == (2 + 4 + 6) / 3

    def test_count_min_max_merge(self):
        left = AggregateState(AggregateCall("min", None))
        right = AggregateState(AggregateCall("min", None))
        left.update(5)
        right.update(3)
        left.merge_partial(right.partial_state())
        assert left.result() == 3

    def test_distinct_partials_refuse_to_merge(self):
        from repro.engine.errors import PlanError

        state = AggregateState(AggregateCall("count", None, distinct=True))
        with pytest.raises(PlanError):
            state.partial_state()

    def test_avg_stays_on_batch_path(self):
        """AVG over a columnar scan aggregates in batch mode (no row fallback)."""
        database = build_generic(rows=200, neighbors=10)
        for name in database.table_names():
            database.table(name).convert_storage("column")
        session = SqlSession(database)
        result = session.query(
            "select avg(mag) as m, count(*) as n from Obj where mag < 22")
        assert result.statistics.batches_processed > 0
        # And the sharded partial path covers integer AVG without the
        # ordered-input gather.
        cluster = ShardCluster.from_database(build_generic(rows=200, neighbors=10),
                                             shards=2, affinity=AFFINITY,
                                             columnar=True)
        csession = ClusterSession(cluster)
        csession.query("select avg(type) as t from Obj")
        assert cluster.executor.ordered_aggregate_gathers == 0
        # Float AVG gathers ordered inputs for bit-identical results.
        csession.query("select avg(mag) as m from Obj")
        assert cluster.executor.ordered_aggregate_gathers == 1


    def test_huge_integer_sums_use_ordered_mode(self):
        """SUM over 62-bit ids exceeds float's exact-integer range: the
        partial path would merge non-associatively, so the executor must
        gather ordered inputs and stay bit-identical to a single node."""
        import random

        def build():
            database = Database("bigsum")
            table = database.create_table(
                "photoobj", [bigint("objid"), floating("mag")],
                primary_key=PrimaryKey(["objid"]))
            rng = random.Random(3)
            table.insert_many({"objid": rng.getrandbits(62),
                               "mag": rng.uniform(10, 20)}
                              for _ in range(2000))
            database.analyze()
            return database

        sql = "select sum(objid) as s, avg(objid) as a from photoobj"
        expected = SqlSession(build()).query(sql)
        cluster = ShardCluster.from_database(build(), shards=4)
        actual = ClusterSession(cluster).query(sql)
        assert actual.rows == expected.rows
        assert cluster.executor.ordered_aggregate_gathers == 1


def test_cone_pruning_keeps_shards_with_stale_statistics():
    """A row inserted after ANALYZE (outside every analyzed htmID range)
    must still be found by the pruned cone scatter."""
    import random

    from repro.htm import cover_circle, lookup_id
    from repro.skyserver.spatial import nearby_from_candidates

    database = Database("stale-cone")
    table = database.create_table(
        "PhotoObj",
        [bigint("objID"), floating("ra"), floating("dec"), bigint("htmID"),
         bigint("type"), bigint("mode"), floating("modelMag_r")],
        primary_key=PrimaryKey(["objID"]))
    rng = random.Random(5)
    rows = []
    for index in range(200):
        ra, dec = rng.uniform(183.0, 184.0), rng.uniform(-1.4, -0.6)
        rows.append({"objID": index, "ra": ra, "dec": dec,
                     "htmID": lookup_id(ra, dec), "type": 1, "mode": 1,
                     "modelMag_r": 18.0})
    table.insert_many(rows)
    table.create_index("ix_htm", ["htmID"])
    database.analyze()
    cluster = ShardCluster.from_database(database, shards=4, partition="htm")
    ra, dec = 186.5, 1.2
    cluster.insert("PhotoObj", {"objID": 999999, "ra": ra, "dec": dec,
                                "htmID": lookup_id(ra, dec), "type": 1,
                                "mode": 1, "modelMag_r": 18.0})
    candidates = cluster.executor.cone_candidate_rows(cover_circle(ra, dec, 2.0))
    found = nearby_from_candidates(candidates, ra, dec, 2.0)
    assert [entry["objID"] for entry in found] == [999999]


# ---------------------------------------------------------------------------
# Result-cache invalidation across shards (pool satellite)
# ---------------------------------------------------------------------------

def test_pool_cache_invalidated_by_shard_dml():
    cluster = make_cluster(3)

    class _Host:
        database = cluster.coordinator

    host = _Host()
    host.cluster = cluster
    pool = SkyServerPool(host, workers=2, result_cache_size=16)
    try:
        sql = "select count(*) as n from Obj"
        first = pool.execute(sql)
        assert first.rows[0]["n"] == 400
        again = pool.execute(sql)
        assert again.rows[0]["n"] == 400
        assert pool.result_cache.hits >= 1
        # DML lands on exactly one shard; the cached cluster-wide result
        # must still be invalidated.
        cluster.insert("Obj", {"objID": 31337, "type": 2, "dec": -1.0,
                               "mag": 19.0, "htmID": 3})
        refreshed = pool.execute(sql)
        assert refreshed.rows[0]["n"] == 401
        assert pool.result_cache.invalidations >= 1
    finally:
        pool.shutdown()


# ---------------------------------------------------------------------------
# SkyServer integration: the fig13 acceptance criterion
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def sharded_skyserver(survey_output):
    from repro.schema import create_skyserver_database
    from repro.loader import SkyServerLoader

    database = create_skyserver_database(with_indices=False)
    loader = SkyServerLoader(database, shards=4)
    report = loader.load_pipeline_output(survey_output)
    assert report.succeeded, report.summary()
    assert report.shards == 4 and report.cluster is not None
    return SkyServer(database, limits=QueryLimits.private(),
                     cluster=report.cluster)


class TestShardedSkyServer:
    def test_fig13_suite_byte_identical(self, skyserver, sharded_skyserver):
        single = skyserver.run_all_data_mining_queries()
        sharded = sharded_skyserver.run_all_data_mining_queries()
        assert len(single) == len(sharded) >= 20
        for expected, actual in zip(single, sharded):
            assert actual.query_id == expected.query_id
            assert actual.result.columns == expected.result.columns, (
                expected.query_id)
            assert actual.result.rows == expected.result.rows, expected.query_id

    def test_additional_queries_identical(self, skyserver, sharded_skyserver):
        single = skyserver.run_all_data_mining_queries(
            ["SX1", "SX2", "SX3", "SX4", "SX5"])
        sharded = sharded_skyserver.run_all_data_mining_queries(
            ["SX1", "SX2", "SX3", "SX4", "SX5"])

        def stable(rows):
            # The two fixtures are independent *loads*: their
            # CURRENT_TIMESTAMP insert times differ by wall clock, not
            # by layout.  SX1's SELECT * is the only query exposing it.
            return [{name: value for name, value in row.items()
                     if name != "inserttime"} for row in rows]

        for expected, actual in zip(single, sharded):
            assert stable(actual.result.rows) == stable(expected.result.rows), (
                expected.query_id)

    def test_cluster_statistics_surface(self, sharded_skyserver):
        sharded_skyserver.query("select count(*) as n from PhotoObj")
        statistics = sharded_skyserver.site_statistics()["cluster"]
        assert statistics["shards"] == 4
        assert statistics["partition"] == "hash"
        assert statistics["queries"]["distributed"] >= 1
        assert "pruned" in statistics["fragments"]
        assert "partial_merges" in statistics["merge"]
        assert statistics["placements"]["photoobj"]["column"] == "objid"

    def test_cone_search_matches_single_node(self, skyserver, sharded_skyserver):
        single = skyserver.cone_search(185.0, -0.5, 2.0)
        sharded = sharded_skyserver.cone_search(185.0, -0.5, 2.0)
        assert [row["objID"] for row in sharded] == [row["objID"] for row in single]

    def test_explore_object_gathers(self, skyserver, sharded_skyserver):
        row = next(iter(skyserver.database.table("PhotoObj")))
        expected = skyserver.explore_object(row["objid"])
        actual = sharded_skyserver.explore_object(row["objid"])

        def stable(record):
            return {name: value for name, value in record.items()
                    if name != "inserttime"}

        assert stable(actual["photo"]) == stable(expected["photo"])
        assert actual["neighbors"] == expected["neighbors"]

    def test_explain_distributed_query(self, sharded_skyserver):
        text = sharded_skyserver.explain(
            "select objID from PhotoObj where objID = 1")
        assert "Merge" in text and "Shard[" in text
