"""Tests for the columnar storage layer and the vectorized batch engine."""

from __future__ import annotations

import random

import pytest

from repro.engine import (ColumnStore, Database, Planner, PrimaryKey,
                          RowStore, SqlSession, bigint, floating,
                          make_storage, text)
from repro.engine.errors import SchemaError
from repro.engine.explain import plan_operators
from repro.engine.sql import parse_select
from repro.engine.types import Column, DataType
from repro.htm import HtmRange
from repro.loader import SkyServerLoader
from repro.loader.steps import LoadStep
from repro.skyserver.spatial import _merge_ranges


COLUMNS = [
    Column("id", DataType.BIGINT),
    Column("mag", DataType.FLOAT, nullable=True),
    Column("name", DataType.TEXT, nullable=True),
]


def _sample_rows(count: int = 10) -> list[dict]:
    return [{"id": index, "mag": float(index) / 2 if index % 3 else None,
             "name": f"obj{index}" if index % 4 else None}
            for index in range(count)]


def _build_database(storage: str, row_count: int = 2_000,
                    with_nulls: bool = False) -> Database:
    database = Database(f"columnar-{storage}")
    table = database.create_table("photoobj", [
        bigint("id"), floating("ra"), floating("dec"),
        bigint("flags"), floating("modelmag_r", nullable=with_nulls),
        text("type"),
    ], primary_key=PrimaryKey(["id"]), storage=storage)
    rng = random.Random(2002)
    table.insert_many([
        {"id": index,
         "ra": rng.uniform(0.0, 360.0),
         "dec": rng.uniform(-90.0, 90.0),
         "flags": rng.randrange(16),
         "modelmag_r": (None if with_nulls and index % 7 == 0
                        else rng.uniform(14.0, 24.0)),
         "type": rng.choice(["star", "galaxy", "unknown"])}
        for index in range(row_count)
    ])
    return database


class TestStorageEngines:
    def test_make_storage_kinds(self):
        assert isinstance(make_storage("row", COLUMNS), RowStore)
        assert isinstance(make_storage("column", COLUMNS), ColumnStore)
        with pytest.raises(SchemaError):
            make_storage("parquet", COLUMNS)

    @pytest.mark.parametrize("kind", ["row", "column"])
    def test_append_get_roundtrip(self, kind):
        storage = make_storage(kind, COLUMNS)
        rows = _sample_rows()
        ids = [storage.append(dict(row)) for row in rows]
        assert ids == list(range(len(rows)))
        for row_id, row in zip(ids, rows):
            assert storage.get(row_id) == row
        assert storage.get(999) is None
        assert storage.live_count == len(rows)
        assert list(storage.iter_dicts()) == rows

    @pytest.mark.parametrize("kind", ["row", "column"])
    def test_delete_keeps_row_ids_stable(self, kind):
        storage = make_storage(kind, COLUMNS)
        for row in _sample_rows():
            storage.append(row)
        assert storage.delete(3)
        assert not storage.delete(3)          # already dead
        assert storage.get(3) is None
        assert storage.get(4)["id"] == 4      # neighbours untouched
        assert storage.tombstone_count == 1
        assert [row_id for row_id, _row in storage.iter_rows()] == \
            [i for i in range(10) if i != 3]

    @pytest.mark.parametrize("kind", ["row", "column"])
    def test_vacuum_compacts_and_reassigns(self, kind):
        storage = make_storage(kind, COLUMNS)
        for row in _sample_rows():
            storage.append(row)
        for victim in (0, 4, 9):
            storage.delete(victim)
        assert storage.vacuum() == 3
        assert storage.vacuum() == 0
        assert len(storage) == 7
        assert storage.tombstone_count == 0
        survivors = [row["id"] for _rid, row in storage.iter_rows()]
        assert survivors == [1, 2, 3, 5, 6, 7, 8]
        assert storage.get(0)["id"] == 1      # ids compacted

    def test_column_store_bigint_overflow_promotes(self):
        storage = ColumnStore([Column("big", DataType.BIGINT)])
        storage.append({"big": 2 ** 70})
        storage.append({"big": 5})
        assert storage.get(0) == {"big": 2 ** 70}
        assert storage.get(1) == {"big": 5}

    def test_column_store_null_masks(self):
        storage = ColumnStore(COLUMNS)
        for row in _sample_rows():
            storage.append(row)
        _buffers, masks = storage.batch_columns()
        assert "mag" in masks and "name" in masks
        assert "id" not in masks              # NULL-free columns have no mask
        assert storage.column_null_count("id") == 0
        assert storage.column_null_count("mag") > 0


class TestTableStorageIntegration:
    @pytest.mark.parametrize("kind", ["row", "column"])
    def test_vacuum_through_table_interface(self, kind):
        database = Database("vac")
        table = database.create_table("t", [bigint("id"), floating("v")],
                                      primary_key=PrimaryKey(["id"]),
                                      storage=kind)
        table.insert_many({"id": i, "v": i * 0.5} for i in range(100))
        table.delete_where(lambda row: row["id"] % 2 == 0)
        assert table.tombstone_count == 50
        assert table.vacuum() == 50
        assert table.tombstone_count == 0
        assert len(table.rows) == 50
        result = SqlSession(database).query("select id from t where v > 24")
        assert [row["id"] for row in result.rows] == [49 + 2 * i for i in range(26)]
        # The PK index was rebuilt with the compacted ids.
        index = table.primary_key_index()
        assert sorted(table.get_row(rid)["id"] for rid in index.scan()) == \
            sorted(row["id"] for row in table)

    @pytest.mark.parametrize("kind", ["row", "column"])
    def test_maybe_vacuum_threshold(self, kind):
        database = Database("vac2")
        table = database.create_table("t", [bigint("id")], storage=kind)
        table.insert_many({"id": i} for i in range(100))
        table.delete_row(0)
        assert table.maybe_vacuum() == 0      # 1% dead: below threshold
        table.delete_where(lambda row: row["id"] < 40)
        assert table.maybe_vacuum() == 40     # 40% dead: compacted

    def test_convert_storage_round_trip(self):
        database = _build_database("row", row_count=200)
        table = database.table("photoobj")
        before = list(table)
        version = database.schema_version
        assert table.convert_storage("column") == 200
        assert table.storage.kind == "column"
        assert database.schema_version > version      # plan caches invalidate
        assert list(table) == before
        assert table.convert_storage("column") == 200  # no-op
        table.convert_storage("row")
        assert table.storage.kind == "row"
        assert list(table) == before

    def test_describe_reports_storage_kind(self):
        database = _build_database("column", row_count=10)
        assert database.table("photoobj").describe()["storage"] == "column"


SCAN_SQL = ("select id, ra + dec as pos, modelmag_r * 2 - 1 as m2 "
            "from photoobj "
            "where modelmag_r > 15 and modelmag_r < 22 and flags & 3 = 1")
AGG_SQL = ("select count(*) as n, avg(modelmag_r) as mean_r, "
           "min(modelmag_r) as lo, max(modelmag_r) as hi "
           "from photoobj where modelmag_r > 15 and flags & 3 = 1")
GROUP_SQL = ("select type, count(*) as n, avg(modelmag_r) as m "
             "from photoobj where modelmag_r > 15 group by type")


class TestVectorizedExecution:
    @pytest.mark.parametrize("sql", [SCAN_SQL, AGG_SQL, GROUP_SQL])
    def test_matches_row_store_results(self, sql):
        row_result = Planner(_build_database("row")).plan(parse_select(sql)).execute()
        col_result = Planner(_build_database("column")).plan(parse_select(sql)).execute()
        assert col_result.rows == row_result.rows
        assert col_result.statistics.batches_processed > 0
        assert row_result.statistics.batches_processed == 0
        assert col_result.statistics.rows_scanned == row_result.statistics.rows_scanned

    def test_explain_labels_batch_operators(self):
        database = _build_database("column", row_count=50)
        labels = plan_operators(Planner(database).plan(parse_select(SCAN_SQL)))
        assert labels == ["Batch Compute Scalar", "Batch Table Scan"]
        labels = plan_operators(Planner(database).plan(parse_select(AGG_SQL)))
        assert "Batch Aggregate" in labels and "Batch Table Scan" in labels
        # `ra` is not covered by any index, so the source is a table scan.
        top = Planner(database).plan(parse_select("select top 5 ra from photoobj"))
        assert plan_operators(top) == ["Batch Top", "Batch Compute Scalar",
                                       "Batch Table Scan"]

    def test_ordered_group_aggregate_still_batches(self):
        """ORDER BY sorts the group rows; the aggregation below batches."""
        sql = GROUP_SQL + " order by type"
        col_db = _build_database("column")
        plan = Planner(col_db).plan(parse_select(sql))
        assert "Batch Aggregate" in plan_operators(plan)
        col_result = plan.execute()
        row_result = Planner(_build_database("row")).plan(parse_select(sql)).execute()
        assert col_result.rows == row_result.rows
        assert col_result.statistics.batches_processed > 0

    def test_sort_between_project_and_scan_stays_row_mode(self):
        sql = "select ra from photoobj where flags >= 0 order by ra"
        plan = Planner(_build_database("column")).plan(parse_select(sql))
        assert not any(label.startswith("Batch") for label in plan_operators(plan))
        assert plan.execute().statistics.batches_processed == 0

    def test_planner_switch_disables_vectorization(self):
        database = _build_database("column")
        planner = Planner(database, enable_vectorized=False)
        plan = planner.plan(parse_select(SCAN_SQL))
        assert not any(label.startswith("Batch") for label in plan_operators(plan))
        result = plan.execute()
        assert result.statistics.batches_processed == 0
        vectorized = Planner(database).plan(parse_select(SCAN_SQL)).execute()
        assert result.rows == vectorized.rows

    def test_uncompiled_execution_falls_back(self):
        database = _build_database("column")
        plan = Planner(database).plan(parse_select(AGG_SQL))
        compiled = plan.execute()
        interpreted = plan.execute(compiled=False)
        assert interpreted.statistics.batches_processed == 0
        assert interpreted.rows == compiled.rows

    def test_nullable_column_takes_row_view_fallback(self):
        """NULLs disable codegen but the batch pipeline stays exact."""
        row_result = Planner(_build_database("row", with_nulls=True)).plan(
            parse_select(AGG_SQL)).execute()
        col_result = Planner(_build_database("column", with_nulls=True)).plan(
            parse_select(AGG_SQL)).execute()
        assert col_result.rows == row_result.rows
        assert col_result.statistics.batches_processed > 0

    def test_case_insensitive_string_predicates(self):
        sql = ("select id from photoobj "
               "where type = 'STAR' and type in ('Star', 'GALAXY') "
               "and type like 's%'")
        row = Planner(_build_database("row")).plan(parse_select(sql)).execute()
        col = Planner(_build_database("column")).plan(parse_select(sql)).execute()
        assert col.rows == row.rows and len(col.rows) > 0

    def test_star_projection(self):
        sql = "select * from photoobj where id < 5"
        row = Planner(_build_database("row")).plan(parse_select(sql)).execute()
        col = Planner(_build_database("column")).plan(parse_select(sql)).execute()
        assert col.rows == row.rows

    def test_top_stops_early(self):
        database = _build_database("column", row_count=20_000)
        plan = Planner(database).plan(
            parse_select("select top 3 id from photoobj where flags >= 0"))
        result = plan.execute()
        assert len(result.rows) == 3
        # TOP consumes at most one extra batch, never the whole table.
        assert result.statistics.rows_scanned <= 8192

    def test_session_counters_and_explain_footer(self):
        database = _build_database("column")
        session = SqlSession(database)
        session.query(AGG_SQL)
        session.query("select 1 as one")       # relationless: row path
        modes = session.execution_mode_statistics()
        assert modes["batch_executions"] == 1
        assert modes["row_executions"] == 1
        assert modes["batches_processed"] >= 1
        explained = session.plan(AGG_SQL)
        explained.execute()
        assert "batches=" in explained.explain()


class TestLoaderColumnarSwitch:
    def test_loader_converts_loaded_tables(self):
        database = Database("load-columnar")
        database.create_table("obs", [bigint("id"), floating("mag")],
                              primary_key=PrimaryKey(["id"]))
        step = LoadStep(table_name="obs",
                        rows=[{"id": i, "mag": i * 0.25} for i in range(50)])
        loader = SkyServerLoader(database, columnar=True)
        report = loader.run_steps([step], build_indices=False,
                                  build_neighbors=False, validate=False)
        assert report.succeeded
        assert report.columnar_tables == 1
        table = database.table("obs")
        assert table.storage.kind == "column"
        assert table.row_count == 50
        result = SqlSession(database).query(
            "select count(*) as n from obs where mag > 5")
        assert result.statistics.batches_processed > 0
        assert result.rows[0]["n"] == 29

    def test_loader_default_stays_row_oriented(self):
        database = Database("load-row")
        database.create_table("obs", [bigint("id")])
        loader = SkyServerLoader(database)
        report = loader.run_steps(
            [LoadStep(table_name="obs", rows=[{"id": 1}])],
            build_indices=False, build_neighbors=False, validate=False)
        assert report.succeeded and report.columnar_tables == 0
        assert database.table("obs").storage.kind == "row"


class TestHtmRangeMerging:
    def test_overlapping_and_adjacent_ranges_merge(self):
        ranges = [HtmRange(10, 20), HtmRange(21, 30), HtmRange(15, 25),
                  HtmRange(40, 50), HtmRange(52, 60)]
        assert _merge_ranges(ranges) == [(10, 30), (40, 50), (52, 60)]

    def test_merged_ranges_are_disjoint_and_sorted(self):
        rng = random.Random(11)
        ranges = []
        for _ in range(200):
            low = rng.randrange(0, 1000)
            ranges.append(HtmRange(low, low + rng.randrange(0, 40)))
        merged = _merge_ranges(ranges)
        for (low_a, high_a), (low_b, _high_b) in zip(merged, merged[1:]):
            assert high_a + 1 < low_b      # disjoint, non-adjacent
        covered = set()
        for low, high in merged:
            covered.update(range(low, high + 1))
        expected = set()
        for r in ranges:
            expected.update(range(r.low, r.high + 1))
        assert covered == expected
