"""Observability tests: metrics, traces, the query log and invariance.

The layer's one hard ground rule — tracing off produces byte-identical
plans and results, tracing on changes only counters — is attacked with
hypothesis over random queries under both storage layouts, worker
counts 1 and 4, and shard counts 1 and 4.  Unit tests cover histogram
percentile math, span parenting (including explicit cross-thread
parents), the durable query log's recovery round-trip, and the
acceptance path: one pooled query on a four-shard server produces a
single trace holding admission, plan, per-shard fragment and merge
spans that all share the query id.
"""

from __future__ import annotations

import threading
import time

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.engine import (Database, Planner, PrimaryKey, bigint, floating,
                          integer)
from repro.engine.explain import plan_operators
from repro.engine.sql import parse_select
from repro.skyserver import QueryLimits, ServerConfig, SkyServer, TelemetryConfig
from repro.skyserver.pool import SkyServerPool
from repro.telemetry import (LatencyHistogram, MetricsRegistry, Telemetry,
                             Tracer, TRACER, render_trace)
from repro.traffic import analyze_query_log

INVARIANCE_SETTINGS = settings(deadline=None, max_examples=15)


@pytest.fixture(autouse=True)
def _restore_tracer():
    """Constructing servers flips the global tracer; put it back."""
    enabled = TRACER.enabled
    capacity = TRACER.capacity
    yield
    TRACER.enabled = enabled
    TRACER.capacity = capacity
    TRACER.reset()


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("c") is counter
        gauge = registry.gauge("g")
        gauge.set(2.5)
        gauge.add(-0.5)
        assert gauge.value == 2.0

    def test_histogram_percentiles_are_ordered_and_bounded(self):
        histogram = LatencyHistogram("t")
        values = [0.0005 * i for i in range(1, 201)]   # 0.5ms .. 100ms
        for value in values:
            histogram.observe(value)
        p50 = histogram.percentile(50.0)
        p95 = histogram.percentile(95.0)
        p99 = histogram.percentile(99.0)
        assert 0.0 < p50 <= p95 <= p99 <= max(values)
        # The bucket bounds double, so the estimate is within 2x of the
        # exact rank statistic.
        assert p50 == pytest.approx(0.050, rel=1.0)
        assert p99 == pytest.approx(0.099, rel=1.0)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 200
        assert snapshot["p50_ms"] <= snapshot["p95_ms"] <= snapshot["p99_ms"]
        assert snapshot["max_ms"] == pytest.approx(100.0, rel=0.01)

    def test_histogram_single_value_is_exactish(self):
        histogram = LatencyHistogram("one")
        histogram.observe(0.010)
        # Interpolation is clamped into [min, max] of what was observed.
        for q in (50.0, 95.0, 99.0):
            assert histogram.percentile(q) == pytest.approx(0.010)

    def test_registry_reset_keeps_handles_valid(self):
        registry = MetricsRegistry()
        counter = registry.counter("kept")
        counter.inc(7)
        registry.reset()
        assert counter.value == 0
        counter.inc()
        assert registry.counter("kept").value == 1

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("h").observe(0.001)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"a": 1}
        assert snapshot["histograms"]["h"]["count"] == 1


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------

class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        with tracer.span("query", sql="select 1") as span:
            span.attributes["rows"] = 1   # dead store by design
        assert tracer.query_ids() == []
        assert tracer.statistics()["spans_recorded"] == 0

    def test_nested_spans_parent_by_stack(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("query") as root:
            with tracer.span("plan"):
                pass
            with tracer.span("execute") as execute:
                assert tracer.current() is execute
        spans = tracer.trace(root.query_id)
        names = {span.name: span for span in spans}
        assert names["plan"].parent_id == root.span_id
        assert names["execute"].parent_id == root.span_id
        assert {span.query_id for span in spans} == {root.query_id}

    def test_explicit_parent_crosses_threads(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("query") as root:
            def fragment():
                # The worker thread has an empty span stack; the dispatch
                # site's captured parent is the only link.
                with tracer.span("fragment", parent=root):
                    pass
            thread = threading.Thread(target=fragment)
            thread.start()
            thread.join()
        spans = tracer.trace(root.query_id)
        fragment_span = next(s for s in spans if s.name == "fragment")
        assert fragment_span.parent_id == root.span_id
        assert fragment_span.query_id == root.query_id

    def test_retroactive_record_backdates(self):
        tracer = Tracer()
        tracer.enabled = True
        base = time.perf_counter()
        span = tracer.record("pool.admission", started=base,
                             ended=base + 0.25, queue_wait_ms=250.0)
        assert span is not None
        assert span.duration_seconds == pytest.approx(0.25)

    def test_capacity_evicts_oldest_trace(self):
        tracer = Tracer(capacity=2)
        tracer.enabled = True
        ids = []
        for _ in range(3):
            with tracer.span("query") as span:
                ids.append(span.query_id)
        assert tracer.query_ids() == ids[1:]
        assert tracer.trace(ids[0]) == []
        assert tracer.statistics()["traces_evicted"] == 1

    def test_render_trace_indents_children(self):
        tracer = Tracer()
        tracer.enabled = True
        with tracer.span("query") as root:
            with tracer.span("execute"):
                pass
        text = render_trace(tracer.trace(root.query_id))
        lines = text.splitlines()
        assert lines[0].startswith("query ")
        assert lines[1].startswith("  execute ")


# ---------------------------------------------------------------------------
# Invariance: tracing must never change plans or results
# ---------------------------------------------------------------------------

INVARIANCE_QUERIES = [
    "select objid, mag, run from obj where mag < 21 and run % 3 = 0",
    "select top 7 objid, mag from obj where mag > 15 order by objid",
    "select distinct run from obj where mag < 22",
    "select run, count(*) as n, sum(mag) as s, avg(mag) as a "
    "from obj group by run",
]


def _build_obj(storage: str, rows) -> Database:
    database = Database(f"telemetry-{storage}")
    table = database.create_table("obj", [
        bigint("objid"), floating("mag"), integer("run"),
    ], primary_key=PrimaryKey(["objid"]), storage=storage)
    table.insert_many({"objid": index, "mag": mag, "run": run}
                      for index, (mag, run) in enumerate(rows))
    database.analyze()
    return database


def _plan_and_run(database: Database, sql: str, workers: int):
    planner = Planner(database, parallel_row_threshold=0,
                      parallelism=workers)
    plan = planner.plan(parse_select(sql))
    return plan_operators(plan), plan.execute()


@INVARIANCE_SETTINGS
@given(rows=st.lists(
        st.tuples(st.floats(min_value=14.0, max_value=24.0, allow_nan=False),
                  st.integers(min_value=0, max_value=9)),
        min_size=0, max_size=80),
       query_index=st.integers(min_value=0, max_value=63),
       storage=st.sampled_from(["row", "column"]),
       workers=st.sampled_from([1, 4]))
def test_tracing_is_invisible_to_single_node_queries(rows, query_index,
                                                     storage, workers):
    database = _build_obj(storage, rows)
    sql = INVARIANCE_QUERIES[query_index % len(INVARIANCE_QUERIES)]
    enabled_before = TRACER.enabled
    try:
        TRACER.enabled = False
        off_ops, off = _plan_and_run(database, sql, workers)
        TRACER.enabled = True
        on_ops, on = _plan_and_run(database, sql, workers)
    finally:
        TRACER.enabled = enabled_before
    assert on_ops == off_ops
    assert repr(on.rows) == repr(off.rows)
    assert on.columns == off.columns


@pytest.mark.parametrize("shards", [1, 4])
def test_tracing_is_invisible_to_cluster_queries(shards):
    from repro.cluster import ClusterSession, ShardCluster

    def build() -> Database:
        import random

        database = Database("telemetry-cluster")
        obj = database.create_table(
            "Obj", [bigint("objID"), floating("mag"), integer("run")],
            primary_key=PrimaryKey(["objID"]))
        rng = random.Random(20020603)
        obj.insert_many({"objID": i * 7 + 1, "mag": rng.uniform(14.0, 24.0),
                         "run": rng.randint(0, 5)} for i in range(300))
        database.analyze()
        return database

    queries = [
        "select objID, mag from Obj where mag < 18 order by objID",
        "select run, count(*) as n from Obj group by run order by run",
    ]
    cluster = ShardCluster.from_database(build(), shards=shards,
                                         partition="hash")
    session = ClusterSession(cluster)
    enabled_before = TRACER.enabled
    try:
        for sql in queries:
            TRACER.enabled = False
            off = session.query(sql)
            TRACER.enabled = True
            on = session.query(sql)
            assert repr(on.rows) == repr(off.rows), sql
            assert on.columns == off.columns, sql
    finally:
        TRACER.enabled = enabled_before


# ---------------------------------------------------------------------------
# The durable query log
# ---------------------------------------------------------------------------

def _toy_server(tracing: bool = True) -> SkyServer:
    database = Database("telemetry-server")
    table = database.create_table("Obj", [bigint("objID"), floating("mag")],
                                  primary_key=PrimaryKey(["objID"]))
    table.insert_many({"objID": i, "mag": 14.0 + i * 0.01}
                      for i in range(50))
    return SkyServer(database, limits=QueryLimits.private(),
                     telemetry=TelemetryConfig(tracing=tracing))


class TestQueryLog:
    def test_queries_are_logged_and_queryable_via_sql(self):
        server = _toy_server()
        server.query("select count(*) as n from Obj where mag < 14.2")
        result = server.query(
            "select sqlText, status, rowCount from QueryLog order by logID")
        assert len(result.rows) >= 1
        assert "count(*)" in result.column("sqlText")[0]
        assert result.column("status")[0] == "done"
        assert result.column("rowCount")[0] == 1

    def test_failed_queries_are_logged_with_error(self):
        server = _toy_server()
        with pytest.raises(Exception):
            server.query("select nope from Obj")
        rows = server.query_log_rows()
        failed = [row for row in rows if row["status"] == "failed"]
        assert failed and "nope" in failed[-1]["error"].lower()

    def test_log_survives_close_and_open(self, tmp_path):
        server = _toy_server()
        server.query("select count(*) as n from Obj")
        durable = server.make_durable(tmp_path / "db")
        durable.query("select top 3 objID from Obj order by objID")
        logged = len(durable.query_log_rows())
        durable.close()

        reopened = SkyServer.open(tmp_path / "db")
        try:
            rows = reopened.query_log_rows()
            # Everything logged before close() is back (close checkpoints;
            # the read itself appends to the reopened log afterwards).
            assert len(rows) >= logged
            reopened.query("select count(*) as n from Obj")
            ids = [row["logid"] for row in reopened.query_log_rows()]
            assert ids == sorted(ids)
            assert len(ids) == len(set(ids))
        finally:
            reopened.close()

    def test_slow_query_flagging(self):
        database = Database("slow")
        database.create_table("T", [bigint("a")])
        server = SkyServer(database, limits=QueryLimits.private(),
                           telemetry=TelemetryConfig(slow_query_seconds=0.0))
        server.query("select count(*) as n from T")
        rows = server.query_log_rows()
        assert rows and rows[0]["slow"] is True
        assert server.telemetry.logger.slow_queries()

    def test_disabled_query_log(self):
        database = Database("nolog")
        database.create_table("T", [bigint("a")])
        server = SkyServer(database, limits=QueryLimits.private(),
                           telemetry=TelemetryConfig(query_log=False))
        server.query("select count(*) as n from T")
        assert not database.has_table("QueryLog")
        assert server.query_log_rows() == []
        assert server.traffic_report() is None


# ---------------------------------------------------------------------------
# Traffic analysis over the log
# ---------------------------------------------------------------------------

class TestQueryTraffic:
    def test_analyze_query_log_aggregates(self):
        rows = [
            {"sqltext": "select a from t", "userclass": "public",
             "status": "done", "rowcount": 10, "elapsedms": 5.0,
             "cachehit": False, "plancached": False, "slow": False},
            {"sqltext": "select a from t", "userclass": "public",
             "status": "done", "rowcount": 10, "elapsedms": 1.0,
             "cachehit": True, "plancached": True, "slow": False},
            {"sqltext": "select b from u", "userclass": "power",
             "status": "failed", "rowcount": 0, "elapsedms": 100.0,
             "cachehit": False, "plancached": False, "slow": True},
        ]
        report = analyze_query_log(rows)
        assert report.total_queries == 3
        assert report.completed == 2 and report.failed == 1
        assert report.cache_hits == 1 and report.slow_queries == 1
        assert report.cache_hit_fraction == pytest.approx(1 / 3)
        assert report.p50_elapsed_ms == 5.0
        assert report.max_elapsed_ms == 100.0
        assert report.by_class == {"public": 2, "power": 1}
        assert report.top_statements[0] == ("select a from t", 2)
        summary = dict(report.summary_rows())
        assert summary["queries logged"] == "3"

    def test_analyze_empty_log_raises(self):
        with pytest.raises(ValueError):
            analyze_query_log([])

    def test_traffic_report_over_live_server(self):
        server = _toy_server()
        for _ in range(3):
            server.query("select count(*) as n from Obj")
        report = server.traffic_report()
        assert report is not None
        assert report.total_queries >= 3
        # The direct (unpooled) path has no result cache, but the plan
        # cache serves the repeats — the log records that flag.
        assert report.plan_cache_hits >= 1
        assert any(label == "result-cache hit rate"
                   for label, _ in report.summary_rows())


# ---------------------------------------------------------------------------
# Server + pool integration (the acceptance path)
# ---------------------------------------------------------------------------

class TestServerIntegration:
    def test_explain_analyze_prints_operator_times(self):
        server = _toy_server()
        text = server.session.explain(
            "select top 3 objID from Obj where mag > 14.1 order by objID",
            analyze=True)
        assert "actual rows=" in text
        assert "time=" in text
        # The next untimed execution of the same (cached) plan clears the
        # timings: plain EXPLAIN then shows actual rows but no times.
        server.query(
            "select top 3 objID from Obj where mag > 14.1 order by objID")
        plain = server.session.explain(
            "select top 3 objID from Obj where mag > 14.1 order by objID")
        assert "actual rows=" in plain
        assert "time=" not in plain

    def test_single_node_query_produces_a_trace(self):
        server = _toy_server()
        server.query("select count(*) as n from Obj where mag < 20")
        spans = TRACER.last_trace()
        names = [span.name for span in spans]
        assert "query" in names and "plan" in names and "execute" in names
        root = next(span for span in spans if span.name == "query")
        assert all(span.query_id == root.query_id for span in spans)

    def test_pooled_sharded_query_traces_end_to_end(self):
        server, _ = SkyServer.from_survey(shards=4)
        pool = SkyServerPool(server, workers=2)
        try:
            ticket = pool.submit(
                "select count(*) from PhotoObj where ra > 100")
            ticket.result()
            spans = TRACER.trace(ticket.query_id)
            names = [span.name for span in spans]
            for expected in ("query", "pool.admission", "plan",
                             "execute", "fragment", "merge"):
                assert expected in names, (expected, names)
            assert len([n for n in names if n == "fragment"]) == 4
            root = next(span for span in spans if span.name == "query")
            assert all(span.query_id == root.query_id for span in spans)
            # Fragments parent into the execute span that dispatched them.
            execute = next(span for span in spans if span.name == "execute")
            for span in spans:
                if span.name == "fragment":
                    assert span.parent_id == execute.span_id

            statistics = pool.statistics()
            assert statistics["latency"]["queue_wait"]["count"] >= 1
            assert statistics["latency"]["execution"]["p95_ms"] > 0.0

            report = server.telemetry_report()
            latency = report["telemetry"]["latency"]
            assert latency["count"] >= 1
            assert latency["p50_ms"] > 0.0
            assert latency["p95_ms"] >= latency["p50_ms"]
            assert latency["p99_ms"] >= latency["p95_ms"]
            assert report["pool"] is not None
        finally:
            pool.shutdown()

    def test_telemetry_report_shape(self):
        server = _toy_server()
        server.query("select count(*) as n from Obj")
        report = server.telemetry_report()
        telemetry = report["telemetry"]
        assert telemetry["queries"] >= 1
        assert telemetry["latency"]["count"] >= 1
        assert "metrics" in telemetry
        assert report["traffic"] is not None

    def test_telemetry_disabled_still_serves(self):
        database = Database("dark")
        database.create_table("T", [bigint("a")])
        server = SkyServer(database, limits=QueryLimits.private(),
                           telemetry=TelemetryConfig(tracing=False,
                                                     query_log=False))
        TRACER.reset()
        result = server.query("select count(*) as n from T")
        assert result.rows[0]["n"] == 0
        assert TRACER.query_ids() == []


def test_server_config_carries_telemetry():
    config = ServerConfig()
    assert config.telemetry.tracing is True
    assert config.telemetry.query_log is True


def test_telemetry_runtime_snapshot_counts_failures():
    database = Database("failures")
    database.create_table("T", [bigint("a")])
    telemetry = Telemetry(database, query_log=False)
    with pytest.raises(ValueError):
        telemetry.run_query(lambda: (_ for _ in ()).throw(ValueError("x")),
                            "select 1")
    snapshot = telemetry.snapshot()
    assert snapshot["failures"] == 1
