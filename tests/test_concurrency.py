"""Concurrent serving layer tests.

Covers the reader–writer locks (reentrancy, exclusion, upgrade
refusal, contention counters), the database snapshot epoch, the
:class:`SkyServerPool` admission control (per-class quotas, queue
depth, queue timeouts), the shared result cache (hits, DML / DDL /
ANALYZE invalidation, session-state exclusions), torn-read safety for
mixed SELECT/INSERT/VACUUM workloads over both storage layouts, and —
via hypothesis — result-cache key correctness under arbitrary DML
interleavings.
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import (Database, ForeignKey, LockUpgradeError, PrimaryKey,
                          ReadWriteLock, SqlSession, bigint, floating,
                          read_locks)
from repro.engine.sql import PlanCache
from repro.skyserver import (AdmissionRejected, QueryLimits, QueueTimeout,
                             ServiceClass, SkyServer, SkyServerPool)
from repro.skyserver.pool import CacheEntry, ResultCache


def _make_database(storage: str, rows: int = 400) -> Database:
    """A small table whose rows satisfy the invariant ``b == 2 * a``."""
    database = Database(f"concurrency-{storage}")
    table = database.create_table("obj", [
        bigint("id"), bigint("a"), bigint("b"), floating("mag"),
    ], primary_key=PrimaryKey(["id"]), storage=storage)
    table.insert_many([{"id": index, "a": index, "b": 2 * index,
                        "mag": 14.0 + (index % 100) / 10.0}
                       for index in range(rows)])
    database.analyze()
    return database


# ---------------------------------------------------------------------------
# ReadWriteLock
# ---------------------------------------------------------------------------

class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = ReadWriteLock("t")
        order: list[str] = []

        def reader(name):
            with lock.read():
                order.append(f"{name}-in")
                time.sleep(0.05)
                order.append(f"{name}-out")

        threads = [threading.Thread(target=reader, args=(f"r{i}",)) for i in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # All three readers were inside simultaneously: every -in comes
        # before any -out would be impossible if they serialized.
        in_positions = [i for i, event in enumerate(order) if event.endswith("-in")]
        assert in_positions == [0, 1, 2]

    def test_writer_blocks_until_readers_leave(self):
        lock = ReadWriteLock("t")
        events: list[str] = []
        reader_in = threading.Event()

        def reader():
            with lock.read():
                reader_in.set()
                time.sleep(0.08)
                events.append("reader-done")

        def writer():
            reader_in.wait()
            with lock.write():
                events.append("writer-in")

        threads = [threading.Thread(target=reader), threading.Thread(target=writer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert events == ["reader-done", "writer-in"]
        assert lock.write_contentions == 1

    def test_reentrant_read_and_write(self):
        lock = ReadWriteLock("t")
        with lock.write():
            with lock.write():
                with lock.read():      # reading inside one's own write is fine
                    pass
        with lock.read():
            with lock.read():
                pass
        assert lock.read_acquisitions == 3
        assert lock.write_acquisitions == 2

    def test_upgrade_raises(self):
        lock = ReadWriteLock("t")
        with lock.read():
            with pytest.raises(LockUpgradeError):
                lock.acquire_write()

    def test_read_locks_helper_orders_and_dedupes(self):
        database = _make_database("row")
        table = database.table("obj")
        before = table.lock.read_acquisitions
        with read_locks([table, table]):
            assert table.lock.read_acquisitions == before + 1
        # released: a writer can get in now
        with table.lock.write():
            pass

    def test_fk_load_query_vacuum_mix_does_not_deadlock(self):
        """Regression: FK-checked bulk inserts acquire the child write
        lock and the parent read locks upfront in global name order.
        Acquiring the parent read *inside* the held write used to form a
        cycle with a reader pair and a waiting vacuum (writer preference
        blocks new readers), deadlocking loader + query + vacuum."""
        database = Database("fkmix")
        parent = database.create_table("aparent", [bigint("pid")],
                                       primary_key=PrimaryKey(["pid"]))
        parent.insert_many([{"pid": i} for i in range(50)])
        child = database.create_table("zchild", [
            bigint("cid"), bigint("pid"),
        ], primary_key=PrimaryKey(["cid"]),
            foreign_keys=[ForeignKey(["pid"], "aparent", ["pid"])])

        def loader():
            for batch in range(30):
                child.insert_many(
                    [{"cid": batch * 10 + i, "pid": (batch + i) % 50}
                     for i in range(10)], database=database)

        def reader():
            for _ in range(200):
                with read_locks([parent, child]):
                    pass

        def vacuumer():
            for _ in range(100):
                parent.delete_row(parent.insert({"pid": 1000}))
                parent.vacuum()

        threads = [threading.Thread(target=fn)
                   for fn in (loader, reader, reader, vacuumer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads), "deadlocked"
        assert child.row_count == 300

    def test_exclusive_release_bumps_epoch(self):
        database = _make_database("row")
        table = database.table("obj")
        before = database.epoch
        table.insert({"id": 10_000, "a": 1, "b": 2, "mag": 15.0})
        assert database.epoch == before + 1
        table.delete_row(0)
        assert database.epoch == before + 2


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

def _sleepy_database() -> Database:
    """One-row table plus a registered fSleep() so queries take real time."""
    database = Database("sleepy")
    table = database.create_table("one", [bigint("id")],
                                  primary_key=PrimaryKey(["id"]))
    table.insert({"id": 1})
    database.register_scalar_function(
        "fSleep", lambda seconds: time.sleep(seconds) or 1,
        description="sleep, then 1")
    return database


class TestAdmissionControl:
    def test_unknown_class_rejected(self):
        with SkyServerPool(_make_database("row"), workers=1) as pool:
            with pytest.raises(AdmissionRejected) as excinfo:
                pool.submit("select count(*) as n from obj", "nobody")
            assert excinfo.value.reason == "unknown-class"

    def test_queue_full_rejected(self):
        classes = {"public": ServiceClass(
            "public", QueryLimits.private(), max_concurrent=1,
            max_queue_depth=1, queue_timeout_seconds=None)}
        with SkyServerPool(_sleepy_database(), workers=1,
                           service_classes=classes) as pool:
            running = pool.submit("select dbo.fSleep(0.3) as x from one")
            time.sleep(0.1)          # let the worker pick it up
            queued = pool.submit("select dbo.fSleep(0.01) as y from one")
            with pytest.raises(AdmissionRejected) as excinfo:
                pool.submit("select dbo.fSleep(0.02) as z from one")
            assert excinfo.value.reason == "queue-full"
            assert running.result(5.0).rows and queued.result(5.0).rows
            statistics = pool.statistics()
            assert statistics["rejected"] == 1
            assert statistics["classes"]["public"]["rejected"] == 1

    def test_per_class_concurrency_quota_serializes(self):
        classes = {"public": ServiceClass(
            "public", QueryLimits.private(), max_concurrent=1,
            max_queue_depth=10, queue_timeout_seconds=None)}
        with SkyServerPool(_sleepy_database(), workers=4,
                           service_classes=classes) as pool:
            started = time.perf_counter()
            tickets = [pool.submit(f"select dbo.fSleep(0.1) + {i} as x from one")
                       for i in range(3)]
            for ticket in tickets:
                ticket.result(5.0)
            elapsed = time.perf_counter() - started
        # Quota 1 forces the three 0.1 s queries to run one at a time
        # even though four workers are available.
        assert elapsed >= 0.3

    def test_quota_allows_true_concurrency(self):
        classes = {"public": ServiceClass(
            "public", QueryLimits.private(), max_concurrent=4,
            max_queue_depth=10, queue_timeout_seconds=None)}
        with SkyServerPool(_sleepy_database(), workers=4,
                           service_classes=classes) as pool:
            started = time.perf_counter()
            tickets = [pool.submit(f"select dbo.fSleep(0.15) + {i} as x from one")
                       for i in range(4)]
            for ticket in tickets:
                ticket.result(5.0)
            elapsed = time.perf_counter() - started
        # time.sleep releases the GIL: four workers overlap the waits.
        assert elapsed < 0.45

    def test_queue_timeout_expires_waiting_query(self):
        classes = {"public": ServiceClass(
            "public", QueryLimits.private(), max_concurrent=1,
            max_queue_depth=10, queue_timeout_seconds=0.05)}
        with SkyServerPool(_sleepy_database(), workers=1,
                           service_classes=classes) as pool:
            blocker = pool.submit("select dbo.fSleep(0.3) as x from one")
            time.sleep(0.1)
            waiter = pool.submit("select dbo.fSleep(0.01) as y from one")
            assert blocker.result(5.0).rows
            with pytest.raises(QueueTimeout):
                waiter.result(5.0)
            assert waiter.status == "timeout"
            assert pool.statistics()["queue_timeouts"] == 1

    def test_public_row_limit_enforced_through_pool(self):
        from repro.engine.errors import QueryLimitExceeded

        classes = {"public": ServiceClass(
            "public", QueryLimits(max_rows=10, max_seconds=None),
            max_concurrent=2, max_queue_depth=10, queue_timeout_seconds=None)}
        with SkyServerPool(_make_database("row"), workers=2,
                           service_classes=classes) as pool:
            with pytest.raises(QueryLimitExceeded):
                pool.execute("select id from obj")

    def test_shutdown_fails_queued_tickets(self):
        from repro.skyserver import PoolShutdown

        classes = {"public": ServiceClass(
            "public", QueryLimits.private(), max_concurrent=1,
            max_queue_depth=10, queue_timeout_seconds=None)}
        pool = SkyServerPool(_sleepy_database(), workers=1,
                             service_classes=classes)
        blocker = pool.submit("select dbo.fSleep(0.2) as x from one")
        time.sleep(0.05)
        queued = pool.submit("select dbo.fSleep(0.01) as y from one")
        pool.shutdown(wait=True)
        assert blocker.result(5.0).rows     # the running query finished
        with pytest.raises(PoolShutdown):
            queued.result(5.0)
        with pytest.raises(PoolShutdown):
            pool.submit("select 1 as x from one")


# ---------------------------------------------------------------------------
# Result cache
# ---------------------------------------------------------------------------

class TestResultCache:
    SQL = "select count(*) as n, max(b) as mx from obj where a >= 0"

    def test_repeat_query_served_from_cache(self):
        with SkyServerPool(_make_database("row"), workers=2) as pool:
            first = pool.submit(self.SQL)
            first.result(5.0)
            second = pool.submit(self.SQL)
            result = second.result(5.0)
            assert second.cache_hit and not first.cache_hit
            assert result.rows == first.result().rows
            assert pool.result_cache.hits == 1

    def test_cached_rows_are_caller_owned_copies(self):
        with SkyServerPool(_make_database("row"), workers=2) as pool:
            first = pool.execute(self.SQL)
            first.rows[0]["n"] = -999
            second = pool.execute(self.SQL)
            assert second.rows[0]["n"] != -999

    def test_dml_invalidates_cached_result(self):
        database = _make_database("row")
        with SkyServerPool(database, workers=2) as pool:
            before = pool.execute(self.SQL)
            database.table("obj").insert(
                {"id": 10_000, "a": 10_000, "b": 20_000, "mag": 15.0})
            after = pool.execute(self.SQL)
            assert after.rows[0]["n"] == before.rows[0]["n"] + 1
            assert pool.result_cache.invalidations == 1

    def test_analyze_invalidates_cached_result(self):
        database = _make_database("row")
        with SkyServerPool(database, workers=2) as pool:
            pool.execute(self.SQL)
            pool.execute(self.SQL)
            assert pool.result_cache.hits == 1
            database.analyze_table("obj")   # bumps schema_version
            pool.execute(self.SQL)
            assert pool.result_cache.invalidations == 1
            assert pool.result_cache.hits == 1

    def test_ddl_invalidates_cached_result(self):
        database = _make_database("row")
        with SkyServerPool(database, workers=2) as pool:
            pool.execute(self.SQL)
            database.table("obj").create_index("ix_mag", ["mag"])
            pool.execute(self.SQL)
            assert pool.result_cache.invalidations == 1

    def test_variable_batches_not_cached(self):
        with SkyServerPool(_make_database("row"), workers=2) as pool:
            sql = ("declare @lo bigint "
                   "set @lo = 10 "
                   "select count(*) as n from obj where a >= @lo")
            pool.execute(sql)
            pool.execute(sql)
            assert pool.result_cache.hits == 0
            assert len(pool.result_cache) == 0

    def test_select_into_not_cached(self):
        with SkyServerPool(_make_database("row"), workers=2,
                           service_classes={
                               "admin": ServiceClass("admin", QueryLimits.private(),
                                                     max_concurrent=1,
                                                     max_queue_depth=4,
                                                     queue_timeout_seconds=None)}) as pool:
            sql = "select id, a into ##tmp1 from obj where a < 10"
            pool.execute(sql, "admin")
            assert len(pool.result_cache) == 0

    def test_cache_entries_are_per_service_class(self):
        """Regression: a power user's oversized result must never be
        served to a public user whose row limit would have rejected it."""
        from repro.engine.errors import QueryLimitExceeded

        classes = {
            "public": ServiceClass("public", QueryLimits(max_rows=10, max_seconds=None),
                                   max_concurrent=2, max_queue_depth=8,
                                   queue_timeout_seconds=None),
            "power": ServiceClass("power", QueryLimits.private(),
                                  max_concurrent=2, max_queue_depth=8,
                                  queue_timeout_seconds=None),
        }
        with SkyServerPool(_make_database("row"), workers=2,
                           service_classes=classes) as pool:
            sql = "select id from obj"
            assert len(pool.execute(sql, "power").rows) == 400
            with pytest.raises(QueryLimitExceeded):
                pool.execute(sql, "public")

    def test_table_valued_function_results_not_cached(self):
        """Regression: TVF reads are opaque to the dependency tracker, so
        their results must re-execute (DML would otherwise be invisible)."""
        import time as _time

        database = Database("tvf")
        table = database.create_table("src", [bigint("id")],
                                      primary_key=PrimaryKey(["id"]))
        table.insert({"id": 1})
        database.register_table_function(
            "fNow", [bigint("tick")],
            lambda: [{"tick": _time.perf_counter_ns()}])
        with SkyServerPool(database, workers=2,
                           service_classes=ADMIN_ONLY) as pool:
            sql = "select tick from fNow()"
            first = pool.execute(sql, "admin")
            second = pool.execute(sql, "admin")
            assert first.rows != second.rows      # re-executed, not served stale
            assert len(pool.result_cache) == 0

    def test_vacuum_does_not_invalidate_but_delete_does(self):
        database = _make_database("row")
        table = database.table("obj")
        with SkyServerPool(database, workers=2) as pool:
            pool.execute(self.SQL)
            table.delete_row(0)
            after_delete = pool.execute(self.SQL)
            assert pool.result_cache.invalidations == 1
            # VACUUM compacts without changing visible contents: the
            # modification counter is untouched, the entry stays valid.
            assert table.vacuum() > 0
            cached = pool.execute(self.SQL)
            assert cached.rows == after_delete.rows
            assert pool.result_cache.hits == 1


# ---------------------------------------------------------------------------
# Mixed concurrent workloads (both storage layouts)
# ---------------------------------------------------------------------------

ADMIN_ONLY = {"admin": ServiceClass("admin", QueryLimits.private(),
                                    max_concurrent=8, max_queue_depth=64,
                                    queue_timeout_seconds=None)}


@pytest.mark.parametrize("storage", ["row", "column"])
class TestConcurrentMixedWorkload:
    READERS = 4
    QUERIES_PER_READER = 12
    WRITER_BATCHES = 10
    BATCH_ROWS = 20

    def test_no_torn_reads_and_serial_equivalence(self, storage):
        database = _make_database(storage)
        failures: list[str] = []
        stop_vacuum = threading.Event()

        def reader(pool, index):
            for i in range(self.QUERIES_PER_READER):
                sql = (f"select a, b from obj where a >= {(index + i) % 5}"
                       " order by a")
                rows = pool.execute(sql, "admin").rows
                for row in rows:
                    if row["b"] != 2 * row["a"]:
                        failures.append(f"torn row {row!r}")
                        return

        def writer(table, index):
            base = 100_000 * (index + 1)
            for batch in range(self.WRITER_BATCHES):
                start = base + batch * self.BATCH_ROWS
                table.insert_many([
                    {"id": value, "a": value, "b": 2 * value, "mag": 15.0}
                    for value in range(start, start + self.BATCH_ROWS)])
                # Delete the first row of every even batch, keeping the
                # final state deterministic regardless of interleaving.
                if batch % 2 == 0:
                    deleted = table.delete_where(lambda row: row["id"] == start)
                    if deleted != 1:
                        failures.append(f"writer {index} delete miss at {start}")

        def vacuumer(table):
            while not stop_vacuum.is_set():
                table.vacuum()
                time.sleep(0.002)

        table = database.table("obj")
        with SkyServerPool(database, workers=self.READERS,
                           service_classes=ADMIN_ONLY) as pool:
            threads = (
                [threading.Thread(target=reader, args=(pool, i))
                 for i in range(self.READERS)]
                + [threading.Thread(target=writer, args=(table, i))
                   for i in range(2)])
            vacuum_thread = threading.Thread(target=vacuumer, args=(table,))
            vacuum_thread.start()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stop_vacuum.set()
            vacuum_thread.join()
            assert failures == []

            # Serial equivalence: apply the same deterministic write set
            # to a fresh database and compare full contents.
            expected_db = _make_database(storage)
            expected_table = expected_db.table("obj")
            for index in range(2):
                writer(expected_table, index)
            final_sql = "select id, a, b from obj order by id"
            concurrent_rows = pool.execute(final_sql, "admin").rows
            serial_rows = SqlSession(expected_db).query(final_sql).rows
            assert concurrent_rows == serial_rows
            statistics = pool.statistics()
            assert statistics["failed"] == 0
            assert statistics["completed"] == statistics["submitted"]

    def test_lock_counters_surface_in_serving_statistics(self, storage):
        database = _make_database(storage)
        server = SkyServer(database, limits=QueryLimits.private())
        pool = server.start_pool(workers=2)
        try:
            pool.execute("select count(*) as n from obj")
            serving = server.site_statistics()["serving"]
            assert serving["pool"]["completed"] == 1
            assert serving["locks"]["read_acquisitions"] >= 1
            assert serving["locks"]["epoch"] == database.epoch
        finally:
            pool.shutdown()


# ---------------------------------------------------------------------------
# Hypothesis: result-cache key correctness under DML
# ---------------------------------------------------------------------------

QUERIES = (
    "select count(*) as n from t1",
    "select count(*) as n, min(v) as mn from t1 where v >= 5",
    "select count(*) as n from t2",
    "select sum(v) as s from t2 where v < 100",
)

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("query"), st.integers(0, len(QUERIES) - 1)),
        st.tuples(st.just("insert"), st.integers(0, 1)),
        st.tuples(st.just("delete"), st.integers(0, 1)),
        st.tuples(st.just("analyze"), st.integers(0, 1)),
    ),
    min_size=1, max_size=30)


class TestResultCacheKeyProperty:
    @settings(max_examples=40, deadline=None)
    @given(ops=OPS)
    def test_cached_result_always_matches_fresh_execution(self, ops):
        """The pool's caching discipline, replayed deterministically:
        whatever DML interleaves, a valid cache entry must equal a fresh
        execution of the same SQL."""
        database = Database("prop")
        tables = []
        for name in ("t1", "t2"):
            table = database.create_table(name, [bigint("id"), bigint("v")],
                                          primary_key=PrimaryKey(["id"]))
            table.insert_many([{"id": i, "v": i} for i in range(10)])
            tables.append(table)
        next_id = [1000, 1000]
        session = SqlSession(database)
        cache = ResultCache(capacity=8)

        for kind, which in ops:
            if kind == "query":
                sql = QUERIES[which]
                table = tables[0 if "t1" in sql else 1]
                key = PlanCache.normalize(sql)
                cached = cache.lookup(key, database)
                fresh = session.query(sql)
                if cached is not None:
                    assert cached.rows == fresh.rows, sql
                else:
                    cache.put(key, CacheEntry(
                        database.schema_version,
                        {table.name.lower(): table.modification_counter},
                        fresh))
            elif kind == "insert":
                tables[which].insert({"id": next_id[which], "v": next_id[which]})
                next_id[which] += 1
            elif kind == "delete":
                tables[which].delete_where(lambda row: row["id"] % 7 == 3)
            elif kind == "analyze":
                database.analyze_table(tables[which].name)
