"""Unit tests for the SQL lexer, parser and session."""

import pytest

from repro.engine import Database, PrimaryKey, SQLSyntaxError, bigint, floating, text
from repro.engine.logical import FunctionRef, TableRef
from repro.engine.sql import SqlSession, parse_batch, parse_expression, parse_select
from repro.engine.sql.ast import DeclareStatement, SelectStatement, SetStatement
from repro.engine.sql.lexer import TokenType, tokenize


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("select objID from PhotoObj where ra > 185.5")
        kinds = [token.type for token in tokens]
        assert TokenType.NAME in kinds and TokenType.NUMBER in kinds
        assert tokens[-1].type is TokenType.END

    def test_string_with_escaped_quote(self):
        tokens = tokenize("select 'it''s'")
        strings = [token for token in tokens if token.type is TokenType.STRING]
        assert strings[0].value == "it's"

    def test_line_comment_skipped(self):
        tokens = tokenize("select 1 -- this is a comment\n + 2")
        text = [token.value for token in tokens if token.type is not TokenType.END]
        assert "comment" not in " ".join(text)

    def test_block_comment_skipped(self):
        tokens = tokenize("select /* noise */ 1")
        assert len([t for t in tokens if t.type is TokenType.NUMBER]) == 1

    def test_variable_token(self):
        tokens = tokenize("set @saturated = 4")
        assert any(token.type is TokenType.VARIABLE and token.value == "saturated"
                   for token in tokens)

    def test_temp_table_name(self):
        tokens = tokenize("select 1 into ##results")
        assert any(token.type is TokenType.NAME and token.value == "##results"
                   for token in tokens)

    def test_scientific_notation(self):
        tokens = tokenize("select 1.5e-3")
        numbers = [token for token in tokens if token.type is TokenType.NUMBER]
        assert numbers[0].value == "1.5e-3"

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("select 'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("select ?")


class TestParser:
    def test_simple_select(self):
        query = parse_select("select objID, ra from PhotoObj where ra > 180 order by ra desc")
        assert len(query.select) == 2
        assert isinstance(query.relations[0], TableRef)
        assert query.order_by[0].descending is True

    def test_select_star(self):
        query = parse_select("select * from PhotoObj")
        assert len(query.select) == 1

    def test_top_and_distinct(self):
        query = parse_select("select top 10 distinct type from PhotoObj")
        assert query.top == 10 and query.distinct is True

    def test_into_clause(self):
        query = parse_select("select objID into ##results from PhotoObj")
        assert query.into == "##results"

    def test_alias_forms(self):
        query = parse_select("select p.ra as alpha, p.dec delta from PhotoObj as p")
        assert query.select[0].alias == "alpha"
        assert query.select[1].alias == "delta"
        assert query.relations[0].alias == "p"

    def test_explicit_join_with_on(self):
        query = parse_select(
            "select p.objID from PhotoObj p join SpecObj s on s.objID = p.objID")
        assert len(query.joins) == 1
        assert query.joins[0].condition is not None

    def test_comma_join(self):
        query = parse_select("select r.objID from PhotoObj r, PhotoObj g where r.run = g.run")
        assert len(query.relations) == 2

    def test_table_valued_function_in_from(self):
        query = parse_select(
            "select GN.objID from fGetNearbyObjEq(185, -0.5, 1) as GN")
        assert isinstance(query.relations[0], FunctionRef)
        assert len(query.relations[0].args) == 3

    def test_dbo_prefix_stripped_from_from_clause(self):
        query = parse_select("select * from dbo.fGetNearbyObjEq(1, 1, 1) as n")
        assert query.relations[0].name == "fGetNearbyObjEq"

    def test_group_by_and_having(self):
        query = parse_select(
            "select type, count(*) as n from PhotoObj group by type having count(*) > 5")
        assert len(query.group_by) == 1
        assert query.having is not None

    def test_batch_with_declare_and_set(self):
        statements = parse_batch("""
            declare @saturated bigint;
            set @saturated = dbo.fPhotoFlags('saturated');
            select 1
        """)
        assert isinstance(statements[0], DeclareStatement)
        assert isinstance(statements[1], SetStatement)
        assert isinstance(statements[2], SelectStatement)

    def test_multiple_declares_in_one_statement(self):
        statements = parse_batch("declare @a int, @b float")
        assert statements[0].names == ["a", "b"]

    def test_missing_from_keyword_is_fine(self):
        query = parse_select("select 1 + 1 as two")
        assert not query.relations

    def test_trailing_garbage_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("select 1 from PhotoObj nonsense nonsense nonsense(")

    def test_unknown_statement_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse_batch("update PhotoObj set ra = 0")

    def test_expression_entry_point(self):
        expression = parse_expression("power(q_r, 2) + power(u_r, 2) > 0.111111")
        assert ("power" in expression.sql().lower())


class TestSession:
    @pytest.fixture()
    def database(self):
        database = Database("sql-session")
        table = database.create_table("Obj", [
            bigint("objID"), text("kind"), floating("mag"),
        ], primary_key=PrimaryKey(["objID"]))
        table.insert_many([
            {"objID": index, "kind": "galaxy" if index % 2 == 0 else "star",
             "mag": 15.0 + index * 0.5}
            for index in range(20)
        ], database=database)
        database.register_scalar_function("fDouble", lambda value: value * 2)
        return database

    def test_simple_query(self, database):
        session = SqlSession(database)
        result = session.query("select objID from Obj where mag < 17 order by objID")
        assert [row["objID"] for row in result.rows] == [0, 1, 2, 3]

    def test_declare_set_and_use_variable(self, database):
        session = SqlSession(database)
        result = session.query("""
            declare @limit float;
            set @limit = 16.0;
            select count(*) as n from Obj where mag < @limit
        """)
        assert result.scalar() == 2

    def test_variable_uses_registered_function(self, database):
        session = SqlSession(database)
        result = session.query("""
            declare @x bigint;
            set @x = dbo.fDouble(8);
            select @x as doubled
        """)
        assert result.rows[0]["doubled"] == 16

    def test_select_into_creates_table(self, database):
        session = SqlSession(database)
        session.query("select objID, mag into ##bright from Obj where mag < 16")
        assert database.has_table("##bright")
        assert database.table("##bright").row_count == 2

    def test_row_limit_enforced(self, database):
        from repro.engine import QueryLimitExceeded

        session = SqlSession(database, row_limit=5)
        with pytest.raises(QueryLimitExceeded):
            session.query("select objID from Obj")

    def test_explain_produces_plan_text(self, database):
        session = SqlSession(database)
        plan_text = session.explain("select objID from Obj where objID = 3")
        assert "Index Seek" in plan_text or "Table Scan" in plan_text

    def test_query_without_select_raises(self, database):
        session = SqlSession(database)
        with pytest.raises(SQLSyntaxError):
            session.query("declare @x int")

    def test_statement_results_reported(self, database):
        session = SqlSession(database)
        outcomes = session.execute("declare @x int; set @x = 3; select @x as v")
        kinds = [outcome.kind for outcome in outcomes]
        assert kinds == ["declare", "set", "select"]
        assert outcomes[1].value == 3
