"""Property-based tests for the HTM spatial index."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import htm

settings.register_profile("repro-htm", deadline=None, max_examples=80)
settings.load_profile("repro-htm")

ras = st.floats(min_value=0.0, max_value=359.999, allow_nan=False)
decs = st.floats(min_value=-89.5, max_value=89.5, allow_nan=False)


@given(ras, decs, st.integers(min_value=0, max_value=14))
def test_lookup_returns_containing_trixel(ra, dec, depth):
    """The trixel returned by lookup always geometrically contains the point."""
    htm_id = htm.lookup_id(ra, dec, depth)
    assert htm.htm_level(htm_id) == depth
    assert htm.trixel(htm_id).contains(htm.radec_to_unit(ra, dec))


@given(ras, decs)
def test_deep_id_falls_in_shallow_ancestor_range(ra, dec):
    """B-tree property: descendants occupy a contiguous id range of the ancestor."""
    shallow = htm.lookup_id(ra, dec, 6)
    deep = htm.lookup_id(ra, dec, 20)
    low, high = htm.id_range_at_depth(shallow, 20)
    assert low <= deep <= high


@given(ras, decs, st.floats(min_value=0.1, max_value=30.0, allow_nan=False))
def test_cover_never_misses_the_center(ra, dec, radius_arcmin):
    ranges = htm.cover_circle(ra, dec, radius_arcmin)
    assert htm.ranges_contain(ranges, htm.lookup_id(ra, dec))


@given(ras, decs,
       st.floats(min_value=0.2, max_value=10.0, allow_nan=False),
       st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
       st.floats(min_value=0.0, max_value=2 * math.pi, allow_nan=False))
def test_cover_contains_every_point_inside_the_circle(ra, dec, radius_arcmin,
                                                      radial_fraction, angle):
    """Superset property: any point inside the circle falls inside the cover."""
    ranges = htm.cover_circle(ra, dec, radius_arcmin)
    offset_deg = radius_arcmin / 60.0 * radial_fraction * 0.98
    point_dec = max(-89.9, min(89.9, dec + offset_deg * math.sin(angle)))
    cos_dec = max(0.05, math.cos(math.radians(dec)))
    point_ra = (ra + offset_deg * math.cos(angle) / cos_dec) % 360.0
    if htm.arcmin_between(ra, dec, point_ra, point_dec) <= radius_arcmin:
        assert htm.ranges_contain(ranges, htm.lookup_id(point_ra, point_dec))


@given(ras, decs, ras, decs)
def test_angular_distance_is_a_metric(ra1, dec1, ra2, dec2):
    forward = htm.angular_distance_radec(ra1, dec1, ra2, dec2)
    backward = htm.angular_distance_radec(ra2, dec2, ra1, dec1)
    assert forward == backward
    assert 0.0 <= forward <= 180.0 + 1e-9
    assert htm.angular_distance_radec(ra1, dec1, ra1, dec1) < 1e-9


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=10 ** 12),
                          st.integers(min_value=0, max_value=10 ** 6)),
                max_size=30))
def test_merge_ranges_preserves_membership(raw):
    ranges = [htm.HtmRange(low, low + span) for low, span in raw]
    merged = htm.merge_ranges(ranges)
    # Sorted and non-overlapping.
    for first, second in zip(merged, merged[1:]):
        assert first.high + 1 < second.low
    # Every original endpoint is still covered.
    for original in ranges:
        assert htm.ranges_contain(merged, original.low)
        assert htm.ranges_contain(merged, original.high)
