"""Unit tests for tables, constraints and B-tree indices."""

import datetime as dt

import pytest

from repro.engine import (CheckConstraint, ForeignKey, ForeignKeyViolation,
                          NotNullViolation, PrimaryKey, PrimaryKeyViolation,
                          SchemaError, bigint, floating, text, timestamp)
from repro.engine.sql import parse_expression
from repro.engine.types import CURRENT_TIMESTAMP


def make_table(database, name="t", with_pk=True):
    return database.create_table(name, [
        bigint("id"),
        text("name", nullable=True),
        floating("mag", nullable=True),
    ], primary_key=PrimaryKey(["id"]) if with_pk else None)


class TestTableBasics:
    def test_insert_and_count(self, empty_database):
        table = make_table(empty_database)
        table.insert({"id": 1, "name": "a", "mag": 20.0})
        table.insert({"id": 2, "name": "b", "mag": 21.0})
        assert table.row_count == 2
        assert len(list(table)) == 2

    def test_column_names_case_insensitive(self, empty_database):
        table = make_table(empty_database)
        table.insert({"ID": 3, "NAME": "x", "MAG": 1.0})
        row = next(iter(table))
        assert row["name"] == "x"

    def test_unknown_column_rejected(self, empty_database):
        table = make_table(empty_database)
        with pytest.raises(SchemaError):
            table.insert({"id": 1, "nonsense": 5})

    def test_not_null_enforced(self, empty_database):
        table = make_table(empty_database)
        with pytest.raises(NotNullViolation):
            table.insert({"id": None, "name": "x"})

    def test_primary_key_enforced(self, empty_database):
        table = make_table(empty_database)
        table.insert({"id": 1})
        with pytest.raises(PrimaryKeyViolation):
            table.insert({"id": 1})

    def test_duplicate_detected_on_bulk_rebuild(self, empty_database):
        table = make_table(empty_database)
        with pytest.raises(PrimaryKeyViolation):
            table.insert_many([{"id": 5}, {"id": 5}])

    def test_delete_row(self, empty_database):
        table = make_table(empty_database)
        row_id = table.insert({"id": 1, "mag": 5.0})
        assert table.delete_row(row_id)
        assert table.row_count == 0
        assert table.get_row(row_id) is None

    def test_delete_where(self, empty_database):
        table = make_table(empty_database)
        table.insert_many([{"id": i, "mag": float(i)} for i in range(10)])
        deleted = table.delete_where(lambda row: row["mag"] >= 5)
        assert deleted == 5
        assert table.row_count == 5

    def test_truncate(self, empty_database):
        table = make_table(empty_database)
        table.insert_many([{"id": i} for i in range(5)])
        table.truncate()
        assert table.row_count == 0

    def test_data_bytes_tracks_inserts_and_deletes(self, empty_database):
        table = make_table(empty_database)
        row_id = table.insert({"id": 1, "name": "hello", "mag": 1.0})
        bytes_with_row = table.data_bytes
        assert bytes_with_row > 0
        table.delete_row(row_id)
        assert table.data_bytes == 0

    def test_timestamp_default(self, empty_database):
        table = empty_database.create_table("stamped", [
            bigint("id"),
            timestamp("insertTime", default=CURRENT_TIMESTAMP),
        ], primary_key=PrimaryKey(["id"]))
        table.insert({"id": 1})
        row = next(iter(table))
        assert isinstance(row["inserttime"], dt.datetime)

    def test_clock_override(self, empty_database):
        fixed = dt.datetime(2001, 6, 5, tzinfo=dt.timezone.utc)
        empty_database.set_clock(lambda: fixed)
        table = empty_database.create_table("stamped", [
            bigint("id"),
            timestamp("insertTime", default=CURRENT_TIMESTAMP),
        ])
        table.insert({"id": 1})
        assert next(iter(table))["inserttime"] == fixed

    def test_describe_contains_columns_and_indexes(self, empty_database):
        table = make_table(empty_database)
        description = table.describe()
        assert description["name"] == "t"
        assert any(column["name"] == "mag" for column in description["columns"])
        assert description["primary_key"] == ["id"]


class TestConstraints:
    def test_foreign_key_enforced(self, empty_database):
        parent = empty_database.create_table("parent", [bigint("pid")],
                                             primary_key=PrimaryKey(["pid"]))
        child = empty_database.create_table("child", [
            bigint("cid"), bigint("pid"),
        ], primary_key=PrimaryKey(["cid"]),
            foreign_keys=[ForeignKey(["pid"], "parent", ["pid"], allow_null=False)])
        parent.insert({"pid": 1})
        child.insert({"cid": 10, "pid": 1}, database=empty_database)
        with pytest.raises(ForeignKeyViolation):
            child.insert({"cid": 11, "pid": 99}, database=empty_database)

    def test_foreign_key_zero_treated_as_null(self, empty_database):
        empty_database.create_table("parent", [bigint("pid")],
                                    primary_key=PrimaryKey(["pid"]))
        child = empty_database.create_table("child", [
            bigint("cid"), bigint("pid"),
        ], primary_key=PrimaryKey(["cid"]),
            foreign_keys=[ForeignKey(["pid"], "parent", ["pid"], treat_zero_as_null=True)])
        child.insert({"cid": 1, "pid": 0}, database=empty_database)
        assert child.row_count == 1

    def test_check_constraint(self, empty_database):
        from repro.engine import CheckViolation

        table = empty_database.create_table("checked", [
            bigint("id"), floating("ra"),
        ], checks=[CheckConstraint(parse_expression("ra >= 0 and ra < 360"), name="ra_range")])
        table.insert({"id": 1, "ra": 185.0})
        with pytest.raises(CheckViolation):
            table.insert({"id": 2, "ra": 500.0})

    def test_validate_reports_dangling_keys(self, empty_database):
        parent = empty_database.create_table("parent", [bigint("pid")],
                                             primary_key=PrimaryKey(["pid"]))
        child = empty_database.create_table("child", [
            bigint("cid"), bigint("pid"),
        ], primary_key=PrimaryKey(["cid"]),
            foreign_keys=[ForeignKey(["pid"], "parent", ["pid"], allow_null=False)])
        parent.insert({"pid": 1})
        child.insert({"cid": 1, "pid": 1}, database=empty_database)
        # Bypass FK checking to create a dangling reference, then validate.
        child.insert({"cid": 2, "pid": 42}, database=empty_database, skip_fk=True)
        report = empty_database.validate_table("child")
        assert not report.ok
        assert any("dangling" in violation for violation in report.violations)


class TestIndexes:
    def test_seek_returns_matching_rows(self, empty_database):
        table = make_table(empty_database)
        table.insert_many([{"id": i, "name": "even" if i % 2 == 0 else "odd"}
                           for i in range(20)])
        index = table.create_index("ix_name", ["name"])
        even_rows = [table.get_row(rid)["id"] for rid in index.seek(("even",))]
        assert sorted(even_rows) == list(range(0, 20, 2))

    def test_range_scan_inclusive(self, empty_database):
        table = make_table(empty_database)
        table.insert_many([{"id": i, "mag": float(i)} for i in range(10)])
        index = table.create_index("ix_mag", ["mag"])
        ids = [table.get_row(rid)["id"] for rid in index.range((3.0,), (6.0,))]
        assert sorted(ids) == [3, 4, 5, 6]

    def test_open_ended_range(self, empty_database):
        table = make_table(empty_database)
        table.insert_many([{"id": i, "mag": float(i)} for i in range(10)])
        index = table.create_index("ix_mag", ["mag"])
        ids = [table.get_row(rid)["id"] for rid in index.range((7.0,), None)]
        assert sorted(ids) == [7, 8, 9]

    def test_composite_prefix_seek(self, toy_photo_database):
        table = toy_photo_database.table("PhotoObj")
        index = table.find_index_on(["run", "camcol"])
        assert index is not None
        rows = [table.get_row(rid) for rid in index.seek((756, 1))]
        assert rows
        assert all(row["run"] == 756 and row["camcol"] == 1 for row in rows)

    def test_scan_is_ordered(self, empty_database):
        table = make_table(empty_database)
        table.insert_many([{"id": i, "mag": float(10 - i)} for i in range(10)])
        index = table.create_index("ix_mag", ["mag"])
        mags = [table.get_row(rid)["mag"] for rid in index.scan()]
        assert mags == sorted(mags)

    def test_nulls_sort_first(self, empty_database):
        table = make_table(empty_database)
        table.insert_many([{"id": 1, "mag": None}, {"id": 2, "mag": 1.0}])
        index = table.create_index("ix_mag", ["mag"])
        first_row = table.get_row(next(iter(index.scan())))
        assert first_row["mag"] is None

    def test_covering_detection(self, toy_photo_database):
        table = toy_photo_database.table("PhotoObj")
        index = table.indexes["ix_type"]
        assert index.covers(["type", "modelMag_r", "objID"])
        assert not index.covers(["type", "rowv"])

    def test_index_maintained_on_delete(self, empty_database):
        table = make_table(empty_database)
        row_id = table.insert({"id": 1, "name": "x"})
        index = table.create_index("ix_name", ["name"])
        assert list(index.seek(("x",))) == [row_id]
        table.delete_row(row_id)
        assert list(index.seek(("x",))) == []

    def test_index_on_missing_column_rejected(self, empty_database):
        table = make_table(empty_database)
        with pytest.raises(SchemaError):
            table.create_index("ix_bad", ["nope"])

    def test_duplicate_index_name_rejected(self, empty_database):
        table = make_table(empty_database)
        table.create_index("ix_name", ["name"])
        with pytest.raises(SchemaError):
            table.create_index("IX_NAME", ["name"])

    def test_index_byte_size_positive(self, toy_photo_database):
        table = toy_photo_database.table("PhotoObj")
        assert table.index_bytes() > 0
        assert table.indexes["ix_type"].byte_size() > 0
