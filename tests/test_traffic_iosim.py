"""Tests for the traffic model (Figure 5) and the I/O throughput model (Figure 15)."""

import datetime as dt

import pytest

from repro.bench import same_order_of_magnitude
from repro.iosim import (CpuModel, DiskConfiguration, ServerHardware,
                         SQL_COUNT_MAX_MBPS, controllers_for,
                         figure15_configurations, figure15_table,
                         measure_engine_scan, predict_bandwidth, saturation_points,
                         sweep_figure15)
from repro.traffic import TrafficModelConfig, analyze, ascii_chart, generate_weblog


@pytest.fixture(scope="module")
def weblog():
    return generate_weblog(TrafficModelConfig(seed=7))


@pytest.fixture(scope="module")
def report(weblog):
    return analyze(weblog)


class TestTrafficModel:
    def test_totals_match_paper_aggregates(self, report):
        # "In 7 months the SkyServer processed about 2 million page hits, about
        # a million pages, and about 70 thousand sessions."
        assert same_order_of_magnitude(2.5e6, report.total_hits, tolerance=2.0)
        assert same_order_of_magnitude(1.0e6, report.total_page_views, tolerance=2.0)
        assert abs(report.total_sessions - 70000) / 70000 < 0.15

    def test_subweb_and_education_shares(self, report):
        assert report.japanese_page_fraction == pytest.approx(0.04, abs=0.015)
        assert report.german_page_fraction == pytest.approx(0.03, abs=0.015)
        assert report.education_page_fraction == pytest.approx(0.08, abs=0.02)

    def test_crawler_share(self, report):
        assert report.crawler_hit_fraction == pytest.approx(0.30, abs=0.05)

    def test_uptime_high_but_not_perfect(self, report):
        assert 99.0 <= report.uptime_percent < 100.0

    def test_outage_days_show_traffic_dips(self, weblog, report):
        by_date = {point.date: point for point in report.daily}
        outage = by_date[dt.date(2001, 6, 22)]
        neighbours = [by_date[dt.date(2001, 6, 21)], by_date[dt.date(2001, 6, 23)]]
        assert outage.page_views < 0.5 * min(n.page_views for n in neighbours)

    def test_tv_show_spike_is_the_peak(self, report):
        assert report.peak_day == dt.date(2001, 10, 2)
        assert report.peak_to_mean_page_ratio > 5.0

    def test_sustained_usage_near_paper_figures(self, report):
        # "The sustained usage is about 500 people accessing about 4,000 pages per day."
        assert same_order_of_magnitude(4000, report.mean_page_views_per_day, tolerance=3.0)
        assert same_order_of_magnitude(500, report.mean_sessions_per_day, tolerance=3.0)

    def test_hacker_attempts_about_five_per_day(self, report):
        assert 2.0 <= report.hacker_attempts_per_day <= 8.0

    def test_monthly_aggregates_cover_period(self, report):
        assert "2001-06" in report.monthly and "2002-02" in report.monthly
        assert sum(month["sessions"] for month in report.monthly.values()) == report.total_sessions

    def test_ascii_chart_renders(self, report):
        chart = ascii_chart(report)
        assert "2001-10" in chart
        assert "#" in chart

    def test_analyze_empty_log_raises(self):
        with pytest.raises(ValueError):
            analyze([])

    def test_generation_is_deterministic_per_seed(self):
        first = analyze(generate_weblog(TrafficModelConfig(seed=3)))
        second = analyze(generate_weblog(TrafficModelConfig(seed=3)))
        assert first.total_hits == second.total_hits


class TestIoModel:
    def test_single_disk_is_disk_bound(self):
        prediction = predict_bandwidth(ServerHardware(), DiskConfiguration("1disk", 1, 1))
        assert prediction.achieved_mbps == pytest.approx(40.0)
        assert prediction.bottleneck == "disks"

    def test_three_disks_saturate_one_controller(self):
        prediction = predict_bandwidth(ServerHardware(), DiskConfiguration("3disk", 3, 1))
        assert prediction.achieved_mbps == pytest.approx(119.0)
        assert prediction.bottleneck == "controller"

    def test_nine_disks_hit_the_sql_cpu_ceiling(self):
        prediction = predict_bandwidth(ServerHardware(), DiskConfiguration("9disk", 9, 3))
        assert prediction.achieved_mbps == pytest.approx(SQL_COUNT_MAX_MBPS)
        assert prediction.bottleneck == "cpu"
        assert prediction.cpu_utilisation == pytest.approx(0.75, abs=0.01)

    def test_bandwidth_is_monotone_in_disks(self):
        sweep = sweep_figure15()
        achieved = [prediction.achieved_mbps for prediction in sweep]
        assert all(later >= earlier for earlier, later in zip(achieved, achieved[1:]))

    def test_predicate_scan_caps_lower(self):
        count_scan = predict_bandwidth(ServerHardware(), DiskConfiguration("9disk", 9, 3))
        predicate_scan = predict_bandwidth(ServerHardware(), DiskConfiguration("9disk", 9, 3),
                                           predicate_scan=True)
        assert predicate_scan.achieved_mbps < count_scan.achieved_mbps
        assert predicate_scan.achieved_mbps == pytest.approx(140.0)

    def test_configurations_and_controllers(self):
        configurations = figure15_configurations()
        assert len(configurations) == 13
        assert controllers_for(3) == 1 and controllers_for(4) == 2 and controllers_for(12) == 4

    def test_saturation_annotations(self):
        annotations = saturation_points(ServerHardware(), figure15_configurations())
        assert annotations.one_controller_saturates_at_disks == 3
        assert annotations.sql_cpu_saturates_at_disks == 9

    def test_cpu_model_record_rate(self):
        cpu = CpuModel()
        # "SQL is evaluating 2.6 million 128-byte tag records per second."
        assert same_order_of_magnitude(2.6e6, cpu.records_per_second(), tolerance=1.5)

    def test_figure15_table_renders(self):
        table = figure15_table(sweep_figure15())
        assert "12disk 2vol" in table and "bottleneck" in table

    def test_engine_scan_measurement(self, loaded_database):
        measurement = measure_engine_scan(loaded_database, "PhotoObj")
        assert measurement.rows == loaded_database.table("PhotoObj").row_count
        assert measurement.rows_per_second > 0
        assert measurement.mbps > 0
