"""Statistics subsystem + cost-based optimizer tests.

Covers the ANALYZE statement (lexer→parser→session), the statistics
collected per column (distinct counts, min/max, null fraction,
equi-depth histogram, MCVs), staleness tracking, the planner's
statistics-driven cardinality estimates and cost-based access-path /
join-order / build-side choices, the selectivity-compounding fix, the
EXPLAIN cost output (including EXPLAIN ANALYZE), and the vectorized
batch hash join.
"""

import random

import pytest

from repro.engine import (Database, Planner, PrimaryKey, SqlSession, bigint,
                          floating)
from repro.engine.explain import plan_operators
from repro.engine.operators import HashJoin, IndexRangeScan, TableScan
from repro.engine.sql import parse_select
from repro.engine.stats import collect_table_statistics


@pytest.fixture()
def session(toy_photo_database):
    return SqlSession(toy_photo_database)


def _find_operators(plan, kind):
    found = []

    def walk(operator):
        if isinstance(operator, kind):
            found.append(operator)
        for child in operator.children():
            walk(child)

    walk(plan.root)
    return found


class TestStatisticsCollection:
    def test_analyze_statement_collects_statistics(self, session, toy_photo_database):
        assert toy_photo_database.table_statistics("PhotoObj") is None
        results = session.execute("analyze PhotoObj")
        assert results[0].kind == "analyze"
        assert results[0].value == ["PhotoObj"]
        statistics = toy_photo_database.table_statistics("PhotoObj")
        assert statistics is not None
        assert statistics.row_count == 500

    def test_analyze_without_table_analyzes_everything(self, session, toy_photo_database):
        results = session.execute("analyze")
        assert set(results[0].value) == set(toy_photo_database.table_names())

    def test_bare_analyze_in_unseparated_batch(self, session, toy_photo_database):
        """Regression: bare ANALYZE must not swallow the next statement."""
        results = session.execute("analyze\nselect count(*) as n from PhotoObj")
        assert results[0].kind == "analyze"
        assert set(results[0].value) == set(toy_photo_database.table_names())
        assert results[1].kind == "select"
        assert results[1].result.scalar() == 500

    def test_column_statistics_contents(self, toy_photo_database):
        statistics = collect_table_statistics(toy_photo_database.table("PhotoObj"))
        run = statistics.column("run")
        assert run.distinct_count == 2
        assert run.minimum == 745 and run.maximum == 756
        assert run.null_fraction == 0.0
        assert 745 in run.mcvs and 756 in run.mcvs
        assert run.mcvs[756] == 250
        mag = statistics.column("modelMag_r")
        assert len(mag.histogram_bounds) >= 2
        assert 14.0 <= mag.minimum <= mag.maximum <= 22.0

    def test_mcv_equality_selectivity_is_exact(self, toy_photo_database):
        statistics = collect_table_statistics(toy_photo_database.table("PhotoObj"))
        kind = statistics.column("type")
        galaxies = sum(1 for row in toy_photo_database.table("PhotoObj")
                       if row["type"] == "galaxy")
        assert kind.equality_selectivity("galaxy") == pytest.approx(galaxies / 500)

    def test_histogram_range_selectivity_tracks_reality(self, toy_photo_database):
        statistics = collect_table_statistics(toy_photo_database.table("PhotoObj"))
        mag = statistics.column("modelMag_r")
        actual = sum(1 for row in toy_photo_database.table("PhotoObj")
                     if row["modelmag_r"] < 16.0) / 500
        estimated = mag.range_selectivity(None, 16.0)
        assert abs(estimated - actual) < 0.1

    def test_point_range_over_heavy_value_keeps_its_mass(self, empty_database):
        """Regression: BETWEEN x AND x over a frequent value must not collapse."""
        table = empty_database.create_table("t", [bigint("a")])
        table.insert_many([{"a": 5} for _ in range(500)]
                          + [{"a": i % 100 + 10} for i in range(500)])
        statistics = collect_table_statistics(table)
        column = statistics.column("a")
        equality = column.equality_selectivity(5)
        point_range = column.range_selectivity(5, 5)
        assert point_range >= equality * 0.9

    def test_point_range_over_non_mcv_duplicates(self, empty_database):
        """Regression: duplicate-heavy values outside the MCV list too."""
        table = empty_database.create_table("t", [bigint("a")])
        # 20 values, 5% each: none dominant enough to matter, all equal.
        table.insert_many([{"a": i % 20} for i in range(10_000)])
        statistics = collect_table_statistics(table)
        column = statistics.column("a")
        estimated = column.range_selectivity(19, 19)
        assert estimated == pytest.approx(0.05, rel=0.5)

    def test_null_fraction(self, empty_database):
        table = empty_database.create_table(
            "t", [bigint("a"), floating("b", nullable=True)])
        table.insert_many([{"a": i, "b": None if i % 4 == 0 else float(i)}
                           for i in range(100)])
        statistics = collect_table_statistics(table)
        assert statistics.column("b").null_fraction == pytest.approx(0.25)
        assert statistics.column("a").null_fraction == 0.0

    def test_statistics_work_on_column_store(self, empty_database):
        table = empty_database.create_table(
            "t", [bigint("a"), floating("b")], storage="column")
        table.insert_many([{"a": i % 10, "b": float(i)} for i in range(200)])
        statistics = collect_table_statistics(table)
        assert statistics.column("a").distinct_count == 10
        assert statistics.column("b").minimum == 0.0
        assert statistics.column("b").maximum == 199.0


class TestStaleness:
    def test_modification_counter_tracks_dml(self, empty_database):
        table = empty_database.create_table("t", [bigint("a")])
        assert table.modification_counter == 0
        row_id = table.insert({"a": 1})
        table.insert({"a": 2})
        assert table.modification_counter == 2
        table.delete_row(row_id)
        assert table.modification_counter == 3

    def test_freshness_report(self, empty_database):
        table = empty_database.create_table("t", [bigint("a")])
        table.insert({"a": 1})
        empty_database.analyze_table("t")
        fresh = empty_database.statistics_freshness()[0]
        assert fresh["analyzed"] and not fresh["stale"]
        table.insert({"a": 2})
        stale = empty_database.statistics_freshness()[0]
        assert stale["stale"] and stale["modifications_since_analyze"] == 1

    def test_analyze_invalidates_cached_plans(self, session, toy_photo_database):
        sql = "select objID from PhotoObj where modelMag_r < 15"
        session.query(sql)
        assert session.plan_cache.hits == 0
        session.query(sql)
        assert session.plan_cache.hits == 1
        session.execute("analyze PhotoObj")
        session.query(sql)   # schema version bumped: replanned, not reused
        assert session.plan_cache.hits == 1

    def test_stale_access_path_not_reused_after_analyze(self, session,
                                                        toy_photo_database):
        """Regression: a cached pre-ANALYZE plan whose access path the new
        statistics would change must be replanned, not replayed.

        ``run = 756`` covers half the table.  Without statistics the
        heuristic planner seeks the ``(run, camcol, field)`` index; once
        ANALYZE reveals how unselective the predicate is, the CBO costs
        the 250 random bookmark lookups above a sequential scan."""
        wide_sql = "select objID, ra, rowv, colv, flags from PhotoObj where run = 756"
        before = session.query(wide_sql)
        assert "Index Seek" in plan_operators(before.plan)
        session.query(wide_sql)
        assert session.plan_cache.hits == 1        # the seek plan is cached

        session.execute("analyze PhotoObj")
        after = session.query(wide_sql)
        assert session.plan_cache.hits == 1        # stale entry dropped, not reused
        assert session.plan_cache.invalidations == 1
        assert "Index Seek" not in plan_operators(after.plan)
        assert sorted(after.column("objID")) == sorted(before.column("objID"))


class TestSelectivityCompounding:
    def test_many_conjuncts_do_not_collapse_to_one_row(self, session):
        """Regression: per-conjunct constants used to multiply unchecked."""
        sql = ("select objID from PhotoObj "
               "where rowv > 1 and colv > 1 and rowv < 29 and colv < 29 "
               "and modelMag_r > 14 and modelMag_r < 22 and ra > 180 and dec > -1")
        plan = session.plan(sql)
        scans = _find_operators(plan, TableScan)
        assert scans, plan_operators(plan)
        estimate = scans[0].planner_rows
        # Naive compounding would give 500 * 0.25^8 < 1 row; the
        # exponential backoff keeps a usable estimate.
        assert estimate is not None and estimate >= 10

    def test_estimate_clamped_to_at_least_one(self, session):
        plan = session.plan(
            "select objID from PhotoObj where run = 1 and camcol = 2 and field = 3 "
            "and type = 'x' and flags = 99")
        for operator in _find_operators(plan, (TableScan, IndexRangeScan)):
            assert (operator.planner_rows is None or operator.planner_rows >= 1)
            assert operator.estimated_rows() >= 0

    def test_fallback_estimator_also_backed_off(self, toy_photo_database):
        planner = Planner(toy_photo_database, enable_cbo=False)
        plan = planner.plan(parse_select(
            "select objID from PhotoObj "
            "where rowv > 1 and colv > 1 and rowv < 29 and colv < 29 "
            "and modelMag_r > 14 and modelMag_r < 22 and ra > 180 and dec > -1"))
        scans = _find_operators(plan, TableScan)
        assert scans and scans[0].estimated_rows() >= 1


class TestCostBasedChoices:
    def test_selective_equality_seeks_wide_range_scans(self, session):
        session.execute("analyze PhotoObj")
        seek_plan = session.plan("select objID from PhotoObj where objID = 42")
        assert "Index Seek" in plan_operators(seek_plan)
        # run covers half the table: fetching 250 rows through random
        # bookmark lookups is costed above one sequential scan.
        wide_sql = "select objID, ra, rowv, colv, flags from PhotoObj where run = 756"
        wide_plan = session.plan(wide_sql)
        assert "Index Seek" not in plan_operators(wide_plan)
        rows = wide_plan.execute().rows
        assert len(rows) == 250

    def test_cbo_disabled_still_seeks_wide_ranges(self, toy_photo_database):
        """The pre-CBO planner takes any sargable prefix, selective or not."""
        planner = Planner(toy_photo_database, enable_cbo=False)
        plan = planner.plan(parse_select(
            "select objID, ra, rowv, colv, flags from PhotoObj where run = 756"))
        assert "Index Seek" in plan_operators(plan)

    def test_hash_join_builds_on_smaller_side(self, toy_photo_database):
        table = toy_photo_database.create_table("SpecObj", [
            bigint("specObjID"), bigint("objID"), floating("z"),
        ], primary_key=PrimaryKey(["specObjID"]))
        table.insert_many([{"specObjID": 1000 + i, "objID": i * 5 + 1, "z": 0.02 * i}
                           for i in range(40)], database=toy_photo_database)
        toy_photo_database.analyze()
        planner = Planner(toy_photo_database, enable_index_join=False)
        plan = planner.plan(parse_select(
            "select p.objID, s.z from PhotoObj p join SpecObj s on p.objID = s.objID"))
        joins = _find_operators(plan, HashJoin)
        assert len(joins) == 1
        join = joins[0]
        build_rows = (join.build.planner_rows if join.build.planner_rows is not None
                      else join.build.estimated_rows())
        probe_rows = (join.probe.planner_rows if join.probe.planner_rows is not None
                      else join.probe.estimated_rows())
        assert build_rows <= probe_rows
        assert build_rows == 40

    def test_enable_cbo_false_reproduces_heuristic_plans(self, toy_photo_database):
        queries = [
            "select ra from PhotoObj where objID = 42",
            "select objID from PhotoObj where rowv > 20",
            "select objID from PhotoObj where run = 756 and camcol = 3",
            "select type, modelMag_r from PhotoObj where modelMag_r < 15 and type = type",
        ]
        for sql in queries:
            old = Planner(toy_photo_database, enable_cbo=False).plan(parse_select(sql))
            new = Planner(toy_photo_database, enable_cbo=False).plan(parse_select(sql))
            assert plan_operators(old) == plan_operators(new)
            # The heuristic planner never assigns costs.
            assert all(op.planner_cost == 0.0
                       for op in _find_operators(old, object))

    def test_optimizer_plan_counters(self, toy_photo_database):
        session = SqlSession(toy_photo_database)
        session.query("select objID from PhotoObj where rowv > 20")
        counters = session.optimizer_statistics()
        assert counters == {"cbo_plans": 0, "fallback_plans": 1}
        session.execute("analyze PhotoObj")
        session.query("select objID from PhotoObj where rowv > 21")
        counters = session.optimizer_statistics()
        assert counters["cbo_plans"] == 1


class TestExplainOutput:
    def test_explain_shows_cost_and_rows(self, session):
        session.execute("analyze")
        text_plan = session.explain("select objID from PhotoObj where objID = 42")
        assert "estimated rows=" in text_plan
        assert "cost=" in text_plan

    def test_explain_analyze_shows_actual_rows(self, session):
        text_plan = session.explain(
            "select count(*) as n from PhotoObj where type = 'galaxy'", analyze=True)
        assert "actual rows=" in text_plan

    def test_explain_without_analyze_has_no_actuals(self, session):
        text_plan = session.explain("select objID from PhotoObj where rowv > 20")
        assert "actual rows=" not in text_plan

    def test_explain_analyze_runs_declare_set_batches(self, session):
        """Regression: EXPLAIN ANALYZE must execute the batch's DECLARE/SET."""
        text_plan = session.explain(
            "declare @r integer set @r = 756 "
            "select count(*) as n from PhotoObj where run = @r", analyze=True)
        assert "actual rows=" in text_plan


class TestBatchHashJoin:
    SQL_AGGREGATE = ("select count(*) as n, avg(p.mag) as m, min(s.z) as lo "
                     "from photoobj p join specobj s on p.specid = s.specid "
                     "where p.mag between 15 and 22 and s.z > 0.05")
    SQL_PROJECT = ("select p.id, p.mag + s.z as mz "
                   "from photoobj p join specobj s on p.specid = s.specid "
                   "where p.mag < 18")
    SQL_GROUP = ("select s.cls, count(*) as n, avg(p.mag) as m "
                 "from photoobj p join specobj s on p.specid = s.specid "
                 "group by s.cls order by s.cls")

    @staticmethod
    def _build(storage: str) -> Database:
        database = Database(f"join_{storage}")
        photo = database.create_table("photoobj", [
            bigint("id"), bigint("specid"), floating("mag"),
        ], primary_key=PrimaryKey(["id"]), storage=storage)
        spec = database.create_table("specobj", [
            bigint("specid"), floating("z"), bigint("cls"),
        ], primary_key=PrimaryKey(["specid"]), storage=storage)
        rng = random.Random(2002)
        photo.insert_many([{"id": i, "specid": rng.randrange(400),
                            "mag": rng.uniform(14.0, 24.0)} for i in range(4000)])
        spec.insert_many([{"specid": i, "z": rng.uniform(0.0, 0.4),
                           "cls": rng.randrange(4)} for i in range(300)])
        database.analyze()
        return database

    @pytest.mark.parametrize("sql", [SQL_AGGREGATE, SQL_PROJECT, SQL_GROUP])
    def test_batch_join_matches_row_path(self, sql):
        results = {}
        for storage in ("row", "column"):
            planner = Planner(self._build(storage), enable_index_join=False)
            result = planner.plan(parse_select(sql)).execute()
            results[storage] = result
        assert results["row"].rows == results["column"].rows
        assert results["column"].statistics.batches_processed > 0
        assert results["row"].statistics.batches_processed == 0

    def test_batch_join_labels(self):
        planner = Planner(self._build("column"), enable_index_join=False)
        labels = plan_operators(planner.plan(parse_select(self.SQL_AGGREGATE)))
        assert "Batch Hash Join" in labels
        assert labels.count("Batch Table Scan") == 2
        assert "Batch Aggregate" in labels

    def test_row_backed_join_stays_row_mode(self):
        planner = Planner(self._build("row"), enable_index_join=False)
        labels = plan_operators(planner.plan(parse_select(self.SQL_AGGREGATE)))
        assert "Hash Join" in labels
        assert not any(label.startswith("Batch") for label in labels)

    def test_uncompiled_execution_falls_back(self):
        planner = Planner(self._build("column"), enable_index_join=False)
        plan = planner.plan(parse_select(self.SQL_AGGREGATE))
        compiled = plan.execute()
        interpreted = plan.execute(compiled=False)
        assert compiled.rows == interpreted.rows
        assert interpreted.statistics.batches_processed == 0


class TestSampleQueryPlans:
    """Acceptance: EXPLAIN cost/rows on sample queries from the 20-query suite."""

    QUERY_IDS = ["Q1", "Q3", "Q8", "Q9", "Q11"]

    def test_sample_queries_show_cost_estimates(self, skyserver):
        from repro.skyserver.queries import query_by_id
        costed = 0
        for query_id in self.QUERY_IDS:
            sql = query_by_id(query_id).sql
            if "{" in sql:
                continue
            text_plan = skyserver.session.explain(sql)
            assert "estimated rows=" in text_plan
            if "cost=" in text_plan:
                costed += 1
        assert costed >= 3

    def test_loader_auto_analyzed_every_table(self, skyserver):
        freshness = skyserver.database.statistics_freshness()
        loaded = [entry for entry in freshness if entry["analyzed"]]
        assert len(loaded) >= 10

    def test_site_statistics_reports_optimizer(self, skyserver):
        skyserver.query("select top 5 objID from PhotoObj")
        statistics = skyserver.site_statistics()
        optimizer = statistics["optimizer"]
        assert optimizer["plans"]["cbo_plans"] >= 1
        assert any(entry.get("analyzed") for entry
                   in optimizer["statistics_freshness"])

    def test_spectro_join_uses_index_or_hash_with_costs(self, skyserver):
        from repro.skyserver.queries import query_by_id
        text_plan = skyserver.session.explain(query_by_id("Q8").sql)
        assert "Join" in text_plan
        assert "cost=" in text_plan
