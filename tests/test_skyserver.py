"""Integration tests for the SkyServer service layer on the loaded survey."""

import pytest

from repro.engine import QueryLimitExceeded
from repro.htm import arcmin_between
from repro.schema.flags import PhotoFlags, PhotoType
from repro.skyserver import (DATA_MINING_QUERIES, QueryAnalyzer, QueryLimits,
                             SkyServer, extract_personal_skyserver, hubble_diagram,
                             old_time_astronomy_targets, project_catalog,
                             query_by_id, render_csv, render_fits_table,
                             render_grid, render_xml, url_for_object)


class TestSpatialFunctions:
    def test_cone_search_respects_radius(self, skyserver):
        rows = skyserver.cone_search(185.0, -0.5, 1.0)
        assert rows
        for row in rows:
            assert row["distance"] <= 1.0
            assert arcmin_between(185.0, -0.5, row["ra"], row["dec"]) <= 1.0 + 1e-9

    def test_cone_search_matches_brute_force(self, skyserver, loaded_database):
        rows = skyserver.cone_search(185.0, -0.5, 1.5)
        expected = 0
        for _rid, row in loaded_database.table("PhotoObj").iter_rows():
            if arcmin_between(185.0, -0.5, row["ra"], row["dec"]) <= 1.5:
                expected += 1
        assert len(rows) == expected

    def test_cone_search_sorted_by_distance(self, skyserver):
        rows = skyserver.cone_search(185.0, -0.5, 2.0)
        distances = [row["distance"] for row in rows]
        assert distances == sorted(distances)

    def test_nearest_object(self, skyserver):
        rows = skyserver.cone_search(185.0, -0.5, 1.0)
        nearest = skyserver.query(
            "select objID from fGetNearestObjEq(185, -0.5, 1)").rows
        assert nearest[0]["objID"] == rows[0]["objID"]

    def test_rectangle_search(self, skyserver):
        rows = skyserver.rectangle_search(184.95, -0.55, 185.05, -0.45)
        assert rows
        for row in rows:
            assert 184.95 <= row["ra"] <= 185.05
            assert -0.55 <= row["dec"] <= -0.45

    def test_htm_cover_function_through_sql(self, skyserver):
        result = skyserver.query("select * from spHTM_Cover(185, -0.5, 1)")
        assert result.rows
        assert all(row["htmIDstart"] <= row["htmIDend"] for row in result.rows)


class TestDataMiningQueries:
    def test_query1_returns_unsaturated_galaxies_near_the_spot(self, skyserver):
        execution = skyserver.run_data_mining_query("Q1")
        assert 5 <= execution.row_count <= 60
        saturated = int(PhotoFlags.SATURATED)
        for row in execution.result.rows:
            detail = skyserver.explore_object(row["objID"])
            assert detail["photo"]["flags"] & saturated == 0
            assert detail["photo"]["type"] == int(PhotoType.GALAXY)

    def test_query1_plan_shape_matches_figure10(self, skyserver):
        execution = skyserver.run_data_mining_query("Q1")
        plan = execution.plan_text()
        assert "Table-valued Function" in plan
        assert "Nested Loop" in plan
        assert "Sort" in plan
        assert "Table Insert" in plan

    def test_query15a_finds_planted_asteroids(self, skyserver):
        execution = skyserver.run_data_mining_query("Q15A")
        assert execution.row_count > 0
        for row in execution.result.rows:
            assert 50.0 <= row["velocity"] ** 2 <= 1000.0 + 1e-6
            assert row["Url"].startswith("http")

    def test_query15a_plan_is_a_table_scan(self, skyserver):
        plan = skyserver.run_data_mining_query("Q15A").plan_text()
        assert "Table Scan" in plan

    def test_query15b_finds_planted_neo_pairs(self, skyserver):
        execution = skyserver.run_data_mining_query("Q15B")
        assert 1 <= execution.row_count <= 12
        for row in execution.result.rows:
            assert row["rId"] != row["gId"]

    def test_query15b_uses_indexes(self, skyserver):
        plan = skyserver.run_data_mining_query("Q15B").plan_text()
        assert "Index" in plan

    def test_all_twenty_queries_run(self, skyserver):
        executions = skyserver.run_all_data_mining_queries()
        assert len(executions) == len(DATA_MINING_QUERIES)
        by_id = {execution.query_id: execution for execution in executions}
        # Every query returns a result object; most return rows on the synthetic sky.
        non_empty = [qid for qid, execution in by_id.items() if execution.row_count > 0]
        assert len(non_empty) >= 16
        assert by_id["Q16"].row_count == 12       # one row per field

    def test_additional_simple_queries_run(self, skyserver):
        executions = skyserver.run_all_data_mining_queries(
            ["SX1", "SX2", "SX3", "SX4", "SX5"])
        assert all(execution.row_count >= 1 for execution in executions)

    def test_query_lookup_by_id(self):
        assert query_by_id("q15b").verbatim
        with pytest.raises(KeyError):
            query_by_id("Q99")


class TestLimitsAndFormats:
    def test_public_row_limit_enforced(self, loaded_database):
        public = SkyServer(loaded_database, limits=QueryLimits.public())
        with pytest.raises(QueryLimitExceeded):
            public.query("select objID from PhotoObj")

    def test_public_limit_allows_small_queries(self, loaded_database):
        public = SkyServer(loaded_database, limits=QueryLimits.public())
        result = public.query("select top 10 objID from PhotoObj")
        assert len(result.rows) == 10

    def test_grid_format(self, skyserver):
        result = skyserver.query("select top 3 objID, ra, dec from PhotoObj")
        grid = render_grid(result)
        assert "objID" in grid and "(3 row(s) affected)" in grid

    def test_csv_format_roundtrip(self, skyserver):
        import csv
        import io

        result = skyserver.query("select top 5 objID, ra from PhotoObj")
        text = render_csv(result)
        parsed = list(csv.reader(io.StringIO(text)))
        assert parsed[0] == ["objID", "ra"]
        assert len(parsed) == 6

    def test_xml_format_well_formed(self, skyserver):
        import xml.etree.ElementTree as ET

        result = skyserver.query("select top 4 objID, type from PhotoObj")
        root = ET.fromstring(render_xml(result))
        assert len(root.findall("Row")) == 4

    def test_fits_format_block_structure(self, skyserver):
        result = skyserver.query("select top 3 objID, ra from PhotoObj")
        payload = render_fits_table(result)
        assert len(payload) % 2880 == 0
        assert payload[:6] == b"SIMPLE"

    def test_submit_renders_choice(self, skyserver):
        csv_text = skyserver.submit("select top 2 objID from PhotoObj", "csv")
        assert isinstance(csv_text, str) and csv_text.startswith("objID")


class TestExplorerAndTool:
    def test_explore_object_links_everything(self, skyserver, loaded_database):
        spec = next(iter(loaded_database.table("SpecObj")))
        detail = skyserver.explore_object(spec["objid"])
        assert detail["photo"]["objid"] == spec["objid"]
        assert detail["spectrum"] is not None
        assert detail["spectral_lines"]
        assert detail["explorer_url"] == url_for_object(spec["objid"])

    def test_explore_unknown_object_raises(self, skyserver):
        with pytest.raises(KeyError):
            skyserver.explore_object(999999999999)

    def test_famous_places_are_bright_and_extended(self, skyserver):
        places = skyserver.famous_places(5)
        assert len(places) == 5
        assert all(place["petroRad_r"] > 2 for place in places)

    def test_query_analyzer_statistics_and_browser(self, skyserver):
        analyzer = QueryAnalyzer(skyserver, user="student")
        output = analyzer.execute("select top 5 objID from PhotoObj", "grid")
        assert output.statistics.row_count == 5
        assert "student" in output.statistics.describe()
        assert "PhotoObj" in analyzer.tables()
        assert "Galaxy" in analyzer.views()
        tooltip = analyzer.tooltip("PhotoObj", "htmID")
        assert "HTM" in tooltip or "Mesh" in tooltip
        constraints = analyzer.constraints("SpecObj")
        assert constraints["primary_key"] == ["specobjid"]
        assert any(fk["references"] == "Plate" for fk in constraints["foreign_keys"])
        assert analyzer.dependencies("Galaxy")[-1] == "PhotoObj"

    def test_site_statistics(self, skyserver):
        stats = skyserver.site_statistics()
        assert stats["total_bytes"] > 0
        assert any(entry["table"] == "PhotoObj" for entry in stats["tables"])


class TestPersonalAndEducation:
    def test_personal_extract_is_consistent_subset(self, loaded_database):
        personal, summary = extract_personal_skyserver(
            loaded_database, center_ra=185.0, center_dec=-0.5, size_degrees=0.2)
        assert 0 < summary.row_counts["PhotoObj"] < summary.source_row_counts["PhotoObj"]
        # Referential integrity holds inside the subset.
        reports = personal.validate(["PhotoObj", "SpecObj", "Neighbors", "Profile"])
        assert all(report.ok for report in reports)
        # The extract answers the same cone search as the full server.
        subset_server = SkyServer(personal)
        rows = subset_server.cone_search(185.0, -0.5, 1.0)
        assert rows

    def test_personal_subset_fraction(self, loaded_database):
        _personal, summary = extract_personal_skyserver(
            loaded_database, center_ra=185.0, center_dec=-0.5, size_degrees=0.1)
        assert summary.subset_fraction("PhotoObj") < 0.35

    def test_hubble_diagram_shows_expansion(self, skyserver):
        diagram = hubble_diagram(skyserver, count=9)
        assert len(diagram.points) >= 5
        assert diagram.is_expanding()
        assert all(point.velocity_km_s >= 0 for point in diagram.points)

    def test_old_time_astronomy_targets(self, skyserver):
        targets = old_time_astronomy_targets(skyserver, count=4)
        assert len(targets) == 4
        assert all(target.explorer_url.startswith("http") for target in targets)

    def test_project_catalog_levels(self):
        catalog = project_catalog()
        levels = {entry.level for entry in catalog}
        assert "For Kids" in levels and "Challenges" in levels
