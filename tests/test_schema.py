"""Tests for the SkyServer schema: tables, flags, views, indices."""

import pytest

from repro.engine.errors import SchemaError
from repro.schema import (IndexDefinition, MAX_KEY_COLUMNS, PhotoFlags, PhotoType,
                          SpecClass, create_indices, create_skyserver_database,
                          drop_indices, fphoto_flags, fphoto_type, fphoto_type_name,
                          fspec_class, standard_indices, standard_views,
                          table_load_order)
from repro.schema.photo import (PROFILE_BINS, pack_profile, profile_value,
                                unpack_profile)


class TestSchemaBuild:
    @pytest.fixture(scope="class")
    def schema(self):
        return create_skyserver_database()

    def test_all_fourteen_tables_exist(self, schema):
        assert len(schema.table_names()) == 14
        for name in table_load_order():
            assert schema.has_table(name)

    def test_photoobj_has_all_magnitude_kinds(self, schema):
        photo = schema.table("PhotoObj")
        for kind in ("psfMag", "fiberMag", "petroMag", "modelMag", "expMag", "deVMag"):
            for band in "ugriz":
                assert photo.has_column(f"{kind}_{band}")
                assert photo.has_column(f"{kind}Err_{band}")

    def test_photoobj_spatial_columns(self, schema):
        photo = schema.table("PhotoObj")
        for column in ("ra", "dec", "cx", "cy", "cz", "htmID"):
            assert photo.has_column(column)

    def test_every_table_has_insert_timestamp(self, schema):
        for name in table_load_order():
            assert schema.table(name).has_column("insertTime"), name

    def test_foreign_keys_form_the_snowflakes(self, schema):
        photo_fk = schema.table("PhotoObj").foreign_keys
        assert any(fk.referenced_table == "Field" for fk in photo_fk)
        spec_fk = schema.table("SpecObj").foreign_keys
        assert {fk.referenced_table for fk in spec_fk} == {"Plate", "PhotoObj"}
        line_fk = schema.table("SpecLine").foreign_keys
        assert line_fk[0].referenced_table == "SpecObj"

    def test_views_created(self, schema):
        for view_name in ("PhotoPrimary", "Star", "Galaxy", "SpecQSO"):
            assert schema.has_view(view_name)

    def test_view_chain_resolves_to_photoobj(self, schema):
        resolved = schema.resolve_relation("Galaxy")
        assert resolved.table_name == "PhotoObj"
        assert resolved.predicate is not None
        assert resolved.view_chain == ["Galaxy", "PhotoPrimary"]

    def test_standard_indices_created(self, schema):
        photo_indexes = {name.lower() for name in schema.table("PhotoObj").indexes}
        assert "ix_photoobj_htm" in photo_indexes
        assert "ix_photoobj_field" in photo_indexes

    def test_flag_functions_registered(self, schema):
        context = schema.evaluation_context()
        assert context.call("fPhotoFlags", ["saturated"]) == int(PhotoFlags.SATURATED)
        assert context.call("fPhotoType", ["galaxy"]) == int(PhotoType.GALAXY)

    def test_table_load_order_respects_foreign_keys(self, schema):
        order = table_load_order()
        for name in order:
            table = schema.table(name)
            for foreign_key in table.foreign_keys:
                assert order.index(foreign_key.referenced_table) < order.index(name)

    def test_size_report_covers_all_tables(self, schema):
        report = schema.size_report()
        assert {entry["table"] for entry in report} >= set(table_load_order())


class TestFlags:
    def test_flag_lookup_aliases(self):
        assert fphoto_flags("OK run") == int(PhotoFlags.OK_RUN)
        assert fphoto_flags("saturated") == int(PhotoFlags.SATURATED)

    def test_type_lookup_and_reverse(self):
        assert fphoto_type("STAR") == 6
        assert fphoto_type_name(3) == "galaxy"

    def test_spec_class_aliases(self):
        assert fspec_class("quasar") == int(SpecClass.QSO)

    def test_unknown_flag_raises(self):
        with pytest.raises(KeyError):
            fphoto_flags("nonsense")

    def test_flags_are_distinct_bits(self):
        values = [int(flag) for flag in PhotoFlags]
        assert len(set(values)) == len(values)
        for value in values:
            assert value & (value - 1) == 0      # powers of two


class TestViews:
    def test_standard_views_reference_known_bases(self):
        names = {view.name for view in standard_views()}
        assert {"PhotoPrimary", "Star", "Galaxy", "SpecQSO"} <= names
        for view in standard_views():
            assert view.base in names | {"PhotoObj", "SpecObj"}

    def test_star_galaxy_disjoint(self, skyserver):
        stars = skyserver.query("select count(*) as n from Star").scalar()
        galaxies = skyserver.query("select count(*) as n from Galaxy").scalar()
        primaries = skyserver.query("select count(*) as n from PhotoPrimary").scalar()
        assert stars + galaxies <= primaries

    def test_primary_view_excludes_secondaries(self, skyserver):
        secondary_bit = int(PhotoFlags.SECONDARY)
        leaked = skyserver.query(
            f"select count(*) as n from PhotoPrimary where (flags & {secondary_bit}) > 0").scalar()
        assert leaked == 0


class TestIndices:
    def test_index_definitions_respect_key_limit(self):
        for definition in standard_indices():
            assert len(definition.key_columns) <= MAX_KEY_COLUMNS

    def test_over_wide_key_rejected(self):
        with pytest.raises(SchemaError):
            IndexDefinition("PhotoObj", "ix_too_wide", [f"c{i}" for i in range(17)])

    def test_create_indices_idempotent(self):
        database = create_skyserver_database(with_indices=False)
        first = create_indices(database)
        second = create_indices(database)
        assert first > 0 and second == 0

    def test_drop_indices_keeps_primary_key(self):
        database = create_skyserver_database()
        dropped = drop_indices(database, "PhotoObj")
        assert dropped > 0
        remaining = list(database.table("PhotoObj").indexes)
        assert remaining == ["pk_PhotoObj"]

    def test_neo_covering_index_covers_query_columns(self):
        database = create_skyserver_database()
        index = database.table("PhotoObj").indexes["ix_photoobj_field"]
        needed = ["run", "camcol", "field", "objID", "parentID", "q_r", "u_r",
                  "fiberMag_r", "fiberMag_g", "isoA_r", "isoB_r", "cx", "cy", "cz"]
        assert index.covers(needed)


class TestProfileBlobs:
    def test_pack_unpack_roundtrip(self):
        values = [float(i) * 0.5 for i in range(PROFILE_BINS * 5)]
        blob = pack_profile(values)
        assert unpack_profile(blob) == pytest.approx(values)

    def test_profile_value_extraction(self):
        values = [float(i) for i in range(PROFILE_BINS * 5)]
        blob = pack_profile(values)
        assert profile_value(blob, 0, 0) == 0.0
        assert profile_value(blob, 2, 3) == float(2 * PROFILE_BINS + 3)

    def test_profile_value_out_of_range(self):
        blob = pack_profile([1.0] * PROFILE_BINS)
        with pytest.raises(IndexError):
            profile_value(blob, 4, PROFILE_BINS - 1)
