"""Unit tests for the expression AST, NULL semantics and predicate analysis."""

import math

import pytest

from repro.engine import EvaluationContext, RowScope, UnknownColumnError
from repro.engine.expressions import (combine_conjuncts, conjuncts,
                                      extract_sargable, is_constant)
from repro.engine.sql import parse_expression


def evaluate(expression, row=None, variables=None):
    scope = RowScope()
    if row is not None:
        scope.bind("t", row)
    context = EvaluationContext(variables={k.lower(): v for k, v in (variables or {}).items()})
    return expression.evaluate(scope, context)


class TestArithmeticAndComparison:
    def test_addition(self):
        assert evaluate(parse_expression("1 + 2 * 3")) == 7

    def test_parenthesised_precedence(self):
        assert evaluate(parse_expression("(1 + 2) * 3")) == 9

    def test_integer_division_truncates_toward_zero(self):
        assert evaluate(parse_expression("7 / 2")) == 3
        assert evaluate(parse_expression("-7 / 2")) == -3

    def test_float_division(self):
        assert evaluate(parse_expression("7.0 / 2")) == pytest.approx(3.5)

    def test_division_by_zero_is_null(self):
        assert evaluate(parse_expression("1 / 0")) is None

    def test_modulo(self):
        assert evaluate(parse_expression("10 % 3")) == 1

    def test_comparisons(self):
        assert evaluate(parse_expression("2 < 3")) is True
        assert evaluate(parse_expression("3 <= 3")) is True
        assert evaluate(parse_expression("2 > 3")) is False
        assert evaluate(parse_expression("2 <> 3")) is True
        assert evaluate(parse_expression("'abc' = 'ABC'")) is True

    def test_column_reference(self):
        expression = parse_expression("mag + 1")
        assert evaluate(expression, {"mag": 20.0}) == 21.0

    def test_qualified_column_reference(self):
        expression = parse_expression("t.mag * 2")
        assert evaluate(expression, {"mag": 4.0}) == 8.0

    def test_unknown_column_raises(self):
        with pytest.raises(UnknownColumnError):
            evaluate(parse_expression("nosuchcolumn"), {"mag": 1.0})


class TestNullSemantics:
    def test_comparison_with_null_is_null(self):
        assert evaluate(parse_expression("mag > 5"), {"mag": None}) is None

    def test_arithmetic_with_null_is_null(self):
        assert evaluate(parse_expression("mag + 1"), {"mag": None}) is None

    def test_and_short_circuit_false(self):
        assert evaluate(parse_expression("1 = 2 and mag > 5"), {"mag": None}) is False

    def test_and_with_null_is_null(self):
        assert evaluate(parse_expression("1 = 1 and mag > 5"), {"mag": None}) is None

    def test_or_short_circuit_true(self):
        assert evaluate(parse_expression("1 = 1 or mag > 5"), {"mag": None}) is True

    def test_is_null(self):
        assert evaluate(parse_expression("mag is null"), {"mag": None}) is True
        assert evaluate(parse_expression("mag is not null"), {"mag": None}) is False

    def test_in_list_with_null_value(self):
        assert evaluate(parse_expression("mag in (1, 2)"), {"mag": None}) is None


class TestPredicates:
    def test_between_inclusive(self):
        assert evaluate(parse_expression("5 between 5 and 10")) is True
        assert evaluate(parse_expression("11 between 5 and 10")) is False

    def test_not_between(self):
        assert evaluate(parse_expression("11 not between 5 and 10")) is True

    def test_in_list(self):
        assert evaluate(parse_expression("3 in (1, 2, 3)")) is True
        assert evaluate(parse_expression("'star' in ('galaxy', 'STAR')")) is True

    def test_not_in_list(self):
        assert evaluate(parse_expression("4 not in (1, 2, 3)")) is True

    def test_like_wildcards(self):
        assert evaluate(parse_expression("'SkyServer' like 'sky%'")) is True
        assert evaluate(parse_expression("'SkyServer' like '%server'")) is True
        assert evaluate(parse_expression("'SkyServer' like 'Sky_erver'")) is True
        assert evaluate(parse_expression("'SkyServer' like 'Moon%'")) is False

    def test_not_negates(self):
        assert evaluate(parse_expression("not 1 = 2")) is True

    def test_bitwise_and_flags(self):
        assert evaluate(parse_expression("flags & 4"), {"flags": 7}) == 4
        assert evaluate(parse_expression("(flags & 8) = 0"), {"flags": 7}) is True

    def test_bitwise_or_xor(self):
        assert evaluate(parse_expression("1 | 2")) == 3
        assert evaluate(parse_expression("3 ^ 1")) == 2


class TestFunctionsAndCase:
    def test_builtin_math_functions(self):
        assert evaluate(parse_expression("sqrt(16)")) == 4.0
        assert evaluate(parse_expression("power(2, 10)")) == 1024.0
        assert evaluate(parse_expression("abs(-3)")) == 3
        assert evaluate(parse_expression("pi()")) == pytest.approx(math.pi)
        assert evaluate(parse_expression("log10(100)")) == pytest.approx(2.0)
        assert evaluate(parse_expression("round(3.14159, 2)")) == pytest.approx(3.14)

    def test_string_functions(self):
        assert evaluate(parse_expression("upper('abc')")) == "ABC"
        assert evaluate(parse_expression("len('abcd')")) == 4
        assert evaluate(parse_expression("substring('galaxy', 1, 3)")) == "gal"

    def test_null_handling_functions(self):
        assert evaluate(parse_expression("isnull(mag, -1)"), {"mag": None}) == -1
        assert evaluate(parse_expression("coalesce(mag, other, 9)"),
                        {"mag": None, "other": None}) == 9

    def test_registered_scalar_function(self):
        context = EvaluationContext(functions={"fphotoflags": lambda name: 4})
        expression = parse_expression("dbo.fPhotoFlags('saturated')")
        assert expression.evaluate(RowScope(), context) == 4

    def test_variable_reference(self):
        expression = parse_expression("(flags & @saturated) = 0")
        assert evaluate(expression, {"flags": 3}, {"saturated": 4}) is True

    def test_case_when(self):
        expression = parse_expression(
            "case when mag < 18 then 'bright' when mag < 21 then 'medium' else 'faint' end")
        assert evaluate(expression, {"mag": 17.0}) == "bright"
        assert evaluate(expression, {"mag": 20.0}) == "medium"
        assert evaluate(expression, {"mag": 25.0}) == "faint"


class TestPredicateAnalysis:
    def test_conjunct_splitting(self):
        expression = parse_expression("a = 1 and b > 2 and (c < 3 or d = 4)")
        parts = conjuncts(expression)
        assert len(parts) == 3

    def test_combine_conjuncts_roundtrip(self):
        expression = parse_expression("a = 1 and b = 2")
        combined = combine_conjuncts(conjuncts(expression))
        assert evaluate(combined, {"a": 1, "b": 2}) is True

    def test_is_constant(self):
        assert is_constant(parse_expression("1 + 2"))
        assert is_constant(parse_expression("@x * 2"))
        assert not is_constant(parse_expression("mag + 1"))

    def test_sargable_equality(self):
        sargable = extract_sargable(parse_expression("type = 3"))
        assert sargable is not None
        assert sargable.column == "type"
        assert sargable.is_equality

    def test_sargable_flipped_comparison(self):
        sargable = extract_sargable(parse_expression("21 > modelMag_r"))
        assert sargable is not None
        assert sargable.column == "modelmag_r"
        assert sargable.high is not None and sargable.low is None

    def test_sargable_between(self):
        sargable = extract_sargable(parse_expression("z between 0.1 and 0.2"))
        assert sargable is not None
        assert sargable.low is not None and sargable.high is not None

    def test_non_sargable_expression(self):
        assert extract_sargable(parse_expression("rowv*rowv + colv*colv > 50")) is None

    def test_referenced_columns(self):
        expression = parse_expression("r.run = g.run and abs(g.field - r.field) <= 1")
        refs = expression.referenced_columns()
        assert ("r", "run") in refs and ("g", "field") in refs
