"""Unit tests for column types and value coercion."""

import datetime as dt

import pytest

from repro.engine import Column, DataType, TypeMismatchError
from repro.engine.types import (CURRENT_TIMESTAMP, bigint, blob, boolean,
                                coerce_value, floating, integer, text,
                                timestamp, value_byte_size)


class TestCoercion:
    def test_integer_from_string(self):
        assert coerce_value(" 42 ", DataType.INTEGER) == 42

    def test_integer_from_integral_float(self):
        assert coerce_value(42.0, DataType.BIGINT) == 42

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(TypeMismatchError):
            coerce_value(1.5, DataType.INTEGER)

    def test_float_from_string(self):
        assert coerce_value("3.25", DataType.FLOAT) == pytest.approx(3.25)

    def test_float_from_int(self):
        assert coerce_value(7, DataType.FLOAT) == 7.0

    def test_text_from_number(self):
        assert coerce_value(12, DataType.TEXT) == "12"

    def test_boolean_from_strings(self):
        assert coerce_value("true", DataType.BOOLEAN) is True
        assert coerce_value("0", DataType.BOOLEAN) is False

    def test_boolean_rejects_garbage(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("maybe", DataType.BOOLEAN)

    def test_timestamp_from_iso_string(self):
        value = coerce_value("2001-06-05T12:00:00", DataType.TIMESTAMP)
        assert value == dt.datetime(2001, 6, 5, 12, 0, 0)

    def test_timestamp_from_datetime_passthrough(self):
        now = dt.datetime.now(tz=dt.timezone.utc)
        assert coerce_value(now, DataType.TIMESTAMP) is now

    def test_blob_from_string(self):
        assert coerce_value("abc", DataType.BLOB) == b"abc"

    def test_blob_from_bytes(self):
        assert coerce_value(bytearray(b"xyz"), DataType.BLOB) == b"xyz"

    def test_null_passes_through(self):
        assert coerce_value(None, DataType.FLOAT) is None

    def test_bad_int_string_raises(self):
        with pytest.raises(TypeMismatchError):
            coerce_value("abc", DataType.INTEGER)


class TestColumn:
    def test_invalid_name_rejected(self):
        with pytest.raises(Exception):
            Column("bad name!", DataType.INTEGER)

    def test_helpers_set_types(self):
        assert integer("a").dtype is DataType.INTEGER
        assert bigint("a").dtype is DataType.BIGINT
        assert floating("a").dtype is DataType.FLOAT
        assert text("a").dtype is DataType.TEXT
        assert boolean("a").dtype is DataType.BOOLEAN
        assert timestamp("a").dtype is DataType.TIMESTAMP
        assert blob("a").dtype is DataType.BLOB

    def test_blob_nullable_by_default(self):
        assert blob("img").nullable is True

    def test_non_blob_not_nullable_by_default(self):
        assert floating("ra").nullable is False

    def test_current_timestamp_default_marker(self):
        column = timestamp("insertTime", default=CURRENT_TIMESTAMP)
        assert column.default == CURRENT_TIMESTAMP

    def test_coerce_via_column(self):
        assert floating("mag").coerce("21.5") == pytest.approx(21.5)


class TestByteAccounting:
    def test_fixed_width_types(self):
        assert value_byte_size(1, DataType.INTEGER) == 4
        assert value_byte_size(1, DataType.BIGINT) == 8
        assert value_byte_size(1.0, DataType.FLOAT) == 8

    def test_text_uses_length(self):
        assert value_byte_size("hello", DataType.TEXT) == 5

    def test_blob_uses_length(self):
        assert value_byte_size(b"12345678", DataType.BLOB) == 8

    def test_null_is_one_byte(self):
        assert value_byte_size(None, DataType.FLOAT) == 1

    def test_byte_width_property(self):
        assert DataType.BIGINT.byte_width == 8
        assert DataType.BOOLEAN.byte_width == 1
