"""Durability: segment format round-trips, WAL crash recovery, lifecycle.

Three promises under attack.  The storage codec is lossless — every
engine value (−0.0, NULLs, 2^60 ints, unicode, blobs) decodes back
bit-identical, and a column store's checkpoint state round-trips
through it byte-for-byte.  Recovery is a *pure prefix*: truncate the
WAL anywhere — between frames or mid-frame — and the reopened database
is repr-identical to a twin that simply stopped after the surviving
operations, for row and columnar layouts, single-node and 4-shard.
And the server lifecycle (``create`` → ``close`` → ``open``) plus the
online data-release flip never change query answers.
"""

from __future__ import annotations

import datetime
import math
import os
import random
from array import array

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.engine import (Database, PrimaryKey, Session, bigint, floating,
                          make_session, text)
from repro.engine.durable import DurabilityManager, RecoveryError
from repro.storage import (FormatError, decode_value, encode_value,
                           storage_from_state, storage_state)
from repro.storage.wal import WriteAheadLog, replay_file

settings.register_profile("repro-durability", deadline=None, max_examples=15)
settings.load_profile("repro-durability")


# ---------------------------------------------------------------------------
# The binary codec
# ---------------------------------------------------------------------------

AWKWARD_VALUES = [
    None, True, False,
    0, -1, 2 ** 60, -(2 ** 60), 2 ** 63 - 1, -(2 ** 63), 2 ** 100, 10 ** 30,
    0.0, -0.0, 1.5, -1e308, 5e-324, math.inf, -math.inf,
    "", "plain", "ünïcödé ∂éç 🌌", "line\nbreak\ttab", "\x00null byte",
    b"", b"\x00\xff\x7f", bytearray(b"mutable"),
    datetime.datetime(2002, 6, 3, 12, 30, 45),
    array("q", [1, -(2 ** 63), 2 ** 63 - 1]),
    array("d", [0.0, -0.0, math.inf]),
    [1, "two", None, [3.0]], (1, 2, "three"), {"k": [1, 2], "n": None},
]


class TestFormatRoundTrip:
    def test_awkward_values_round_trip_exactly(self):
        for value in AWKWARD_VALUES:
            decoded = decode_value(encode_value(value))
            assert repr(decoded) == repr(value) or (
                isinstance(value, bytearray) and decoded == bytes(value))

    def test_negative_zero_keeps_its_sign_bit(self):
        decoded = decode_value(encode_value(-0.0))
        assert math.copysign(1.0, decoded) == -1.0

    def test_nan_survives(self):
        decoded = decode_value(encode_value(float("nan")))
        assert math.isnan(decoded)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(FormatError):
            decode_value(encode_value(42) + b"x")

    def test_unknown_tag_rejected(self):
        with pytest.raises(FormatError):
            decode_value(b"\xfe")

    @pytest.mark.parametrize("layout", ["row", "column"])
    def test_storage_state_round_trips(self, layout):
        database = Database("fmt")
        table = database.create_table(
            "obj",
            [bigint("objid"), floating("val", nullable=True),
             text("tag", nullable=True)],
            primary_key=PrimaryKey(["objid"]), storage=layout)
        rng = random.Random(99)
        for i in range(5000):
            table.insert({"objid": i,
                          "val": rng.choice([None, -0.0, rng.random()]),
                          "tag": rng.choice([None, "αβγ", "t" * 40])})
        for row_id in range(0, 5000, 7):
            table.delete_row(row_id)
        state = storage_state(table.storage)
        clone = storage_from_state(decode_value(encode_value(state)),
                                   table.columns)
        assert repr(list(clone.iter_rows())) == repr(list(table.storage.iter_rows()))


# ---------------------------------------------------------------------------
# WAL framing
# ---------------------------------------------------------------------------

class TestWalFraming:
    def test_replay_stops_at_torn_frame(self, tmp_path):
        path = tmp_path / "t.log"
        with WriteAheadLog(path) as wal:
            for i in range(10):
                wal.append(f"record-{i}".encode())
        records = list(replay_file(path))
        assert len(records) == 10
        # Tear inside frame 6: keep frame 5's end plus a few bytes.
        os.truncate(path, records[5].end_offset + 3)
        survived = [r.payload.decode() for r in replay_file(path)]
        assert survived == [f"record-{i}" for i in range(6)]

    def test_missing_file_replays_empty(self, tmp_path):
        assert list(replay_file(tmp_path / "absent.log")) == []

    def test_corrupt_payload_stops_replay(self, tmp_path):
        path = tmp_path / "c.log"
        with WriteAheadLog(path) as wal:
            wal.append(b"good")
            end = wal.append(b"to-corrupt")
        with open(path, "r+b") as handle:
            handle.seek(end - 1)
            handle.write(b"\x00")
        assert [r.payload for r in replay_file(path)] == [b"good"]


# ---------------------------------------------------------------------------
# Crash recovery: the prefix property
# ---------------------------------------------------------------------------

UNICODE_TAGS = [None, "αβγδ", "🌌🔭", "plain", "mixed ✓ text"]
BIG_INTS = [None, 2 ** 60, -(2 ** 60), 7, 0]


def _generate_ops(seed: int, count: int):
    """A deterministic DML script: every op is exactly one WAL record.

    Deletes target live *row ids* (dense append positions that restart
    after TRUNCATE), so every delete hits and logs exactly one frame.
    """
    rng = random.Random(seed)
    ops, live, next_id, next_row_id = [], [], 0, 0
    for _ in range(count):
        roll = rng.random()
        if live and roll < 0.25:
            ops.append(("delete", live.pop(rng.randrange(len(live)))))
        elif live and roll < 0.28:
            ops.append(("truncate", None))
            live.clear()
            next_row_id = 0
        else:
            row = {"objid": next_id,
                   "val": rng.choice([None, -0.0, 0.0, rng.uniform(-50, 50)]),
                   "tag": rng.choice(UNICODE_TAGS),
                   "big": rng.choice(BIG_INTS)}
            ops.append(("insert", row))
            live.append(next_row_id)
            next_id += 1
            next_row_id += 1
    return ops


def _build_db(layout: str, name: str = "crash") -> Database:
    database = Database(name)
    table = database.create_table(
        "obj",
        [bigint("objid"), floating("val", nullable=True),
         text("tag", nullable=True), bigint("big", nullable=True)],
        primary_key=PrimaryKey(["objid"]), storage=layout)
    table.create_index("ix_obj_big", ["big"])
    return database


def _apply(database: Database, ops) -> None:
    table = database.table("obj")
    for op, arg in ops:
        if op == "insert":
            table.insert(dict(arg))
        elif op == "delete":
            table.delete_row(arg)
        else:
            table.truncate()


def _state(database: Database) -> str:
    table = database.table("obj")
    rows = repr(list(table.storage.iter_rows()))
    index = repr([(key, sorted(table.indexes["ix_obj_big"].seek(key)))
                  for key in [(None,), (2 ** 60,), (-(2 ** 60),), (7,), (0,)]])
    return rows + "|" + index + f"|bytes={table.data_bytes}"


class TestCrashRecovery:
    @given(seed=st.integers(0, 10 ** 6),
           layout=st.sampled_from(["row", "column"]),
           checkpoint_after=st.integers(0, 40),
           tear=st.floats(0.0, 1.0))
    def test_truncated_wal_recovers_exact_prefix(self, tmp_path_factory, seed,
                                                 layout, checkpoint_after, tear):
        """Random DML, kill at a random WAL offset, reopen: the result
        is repr-identical to a twin that ran only the surviving ops."""
        root = tmp_path_factory.mktemp("wal")
        ops = _generate_ops(seed, 80)
        checkpoint_after = min(checkpoint_after, len(ops))

        database = _build_db(layout)
        manager = DurabilityManager.attach(database, root)
        _apply(database, ops[:checkpoint_after])
        manager.checkpoint()
        _apply(database, ops[checkpoint_after:])
        wal_path = manager.wal.path
        manager.close()

        records = list(replay_file(wal_path))
        assert len(records) == len(ops) - checkpoint_after
        if records:
            survive = int(tear * len(records))
            if survive < len(records):
                # Truncate *inside* the next frame: a torn final record
                # must be discarded, keeping exactly ``survive`` frames.
                end = records[survive - 1].end_offset if survive else 0
                os.truncate(wal_path, end + 5)
            applied = checkpoint_after + survive
        else:
            applied = checkpoint_after

        recovered = DurabilityManager.open(root)
        twin = _build_db(layout, "twin")
        _apply(twin, ops[:applied])
        assert _state(recovered.database) == _state(twin)
        recovered.close()

    @pytest.mark.parametrize("layout", ["row", "column"])
    def test_clean_close_reopens_replay_free(self, tmp_path, layout):
        database = _build_db(layout)
        manager = DurabilityManager.attach(database, tmp_path)
        _apply(database, _generate_ops(5, 120))
        manager.checkpoint()
        manager.close()
        recovered = DurabilityManager.open(tmp_path)
        assert recovered.records_since_checkpoint == 0
        assert _state(recovered.database) == _state(database)
        recovered.close()

    def test_open_missing_directory_raises(self, tmp_path):
        with pytest.raises(RecoveryError):
            DurabilityManager.open(tmp_path / "nowhere")


class TestClusterCrashRecovery:
    def _build_cluster(self, columnar: bool):
        from repro.cluster import ShardCluster

        database = Database("cl")
        obj = database.create_table(
            "Obj", [bigint("objID"), floating("dec"),
                    floating("mag", nullable=True), text("tag", nullable=True)],
            primary_key=PrimaryKey(["objID"]))
        rng = random.Random(20020603)
        obj.insert_many({"objID": i * 7 + 1, "dec": rng.uniform(-30, 30),
                         "mag": rng.choice([None, -0.0, rng.random()]),
                         "tag": rng.choice(UNICODE_TAGS)}
                        for i in range(400))
        database.analyze()
        return ShardCluster.from_database(database, shards=4, partition="zone",
                                          affinity={"obj": "objid"},
                                          columnar=columnar)

    def _online_dml(self, cluster, seed: int, inserts: int):
        rng = random.Random(seed)
        for i in range(inserts):
            cluster.insert("Obj", {"objID": 10 ** 6 + i,
                                   "dec": rng.uniform(-30, 30),
                                   "mag": rng.choice([None, -0.0, 1.5]),
                                   "tag": rng.choice(UNICODE_TAGS)})
        cluster.delete_where("Obj", lambda row: row["objid"] % 13 == 0)

    def _gathered(self, cluster) -> str:
        rows = sorted((row for _rid, row in cluster.gathered_rows("Obj")),
                      key=lambda row: row["objid"])
        return repr(rows) + repr(cluster._next_sequence)

    @pytest.mark.parametrize("columnar", [False, True])
    def test_crashed_cluster_matches_never_crashed_twin(self, tmp_path,
                                                        columnar):
        cluster = self._build_cluster(columnar)
        cluster.make_durable(tmp_path)
        self._online_dml(cluster, seed=31, inserts=60)
        expected = self._gathered(cluster)
        # Crash: release the handles without the closing checkpoint —
        # recovery must replay the post-checkpoint DML from the WALs.
        for manager in [cluster.durability["coordinator"],
                        *cluster.durability["shards"]]:
            manager.close()

        from repro.cluster import ShardCluster

        recovered = ShardCluster.open_durable(tmp_path)
        assert self._gathered(recovered) == expected
        recovered.close_durable()

    def test_torn_shard_wal_drops_only_that_shards_tail(self, tmp_path):
        cluster = self._build_cluster(columnar=False)
        cluster.make_durable(tmp_path)
        before = {row["objid"] for _rid, row in cluster.gathered_rows("Obj")}
        rng = random.Random(77)
        for i in range(40):
            cluster.insert("Obj", {"objID": 10 ** 6 + i,
                                   "dec": rng.uniform(-30, 30),
                                   "mag": 1.0, "tag": None})
        shard_managers = cluster.durability["shards"]
        wal_paths = [manager.wal.path for manager in shard_managers]
        cluster.durability["coordinator"].close()
        for manager in shard_managers:
            manager.close()
        # Tear shard 2's WAL in half (frame boundary): its tail is lost,
        # every other shard keeps all its post-checkpoint inserts.
        records = list(replay_file(wal_paths[2]))
        if records:
            os.truncate(wal_paths[2], records[len(records) // 2].end_offset)

        from repro.cluster import ShardCluster

        recovered = ShardCluster.open_durable(tmp_path)
        ids = {row["objid"] for _rid, row in recovered.gathered_rows("Obj")}
        assert before <= ids
        assert len(ids) <= len(before) + 40
        # The recovered sequence counter stays monotonic past every
        # surviving row, so post-recovery inserts cannot collide.
        shard = recovered.insert("Obj", {"objID": 5 * 10 ** 6, "dec": 0.0,
                                         "mag": 1.0, "tag": None})
        assert 0 <= shard < 4
        recovered.close_durable()


# ---------------------------------------------------------------------------
# The server lifecycle and online data releases
# ---------------------------------------------------------------------------

class TestServerLifecycle:
    def test_create_open_flip_round_trip(self, tmp_path):
        """One end-to-end pass: create a durable columnar server, close
        it, reopen it replay-free with identical answers, then flip to
        a second data release online and reopen again serving DR2."""
        from repro.pipeline import SurveyConfig, SyntheticSurvey
        from repro.skyserver import (ServerConfig, SkyServer, StorageConfig)

        root = tmp_path / "db"
        survey = SurveyConfig(scale=0.0003, seed=4, density_per_sq_deg=900.0)
        config = ServerConfig(survey=survey,
                              storage=StorageConfig(columnar=True,
                                                    path=str(root)))
        with SkyServer.create(config) as server:
            assert server.durable
            count_sql = "select count(*) as n from PhotoObj"
            dr1_count = server.query(count_sql).rows[0]["n"]
            dr1_galaxies = repr(server.query(
                "select top 5 objID, modelMag_r from Galaxy "
                "order by objID").rows)
            stats = server.durability_statistics()
            assert stats["on_disk_bytes"] > 0
            assert stats["checkpoints_written"] >= 1
            assert server.site_statistics()["storage"]["durability"] is not None

        reopened = SkyServer.open(root)
        assert reopened.query(count_sql).rows[0]["n"] == dr1_count
        assert repr(reopened.query(
            "select top 5 objID, modelMag_r from Galaxy "
            "order by objID").rows) == dr1_galaxies
        # WAL replay was unnecessary after a clean close.
        assert reopened.durability_statistics()[
            "wal_records_since_checkpoint"] == 0

        dr2 = SyntheticSurvey(SurveyConfig(scale=0.0003, seed=99,
                                           density_per_sq_deg=900.0)).run()
        info = reopened.load_release(dr2)
        assert info["release"] == 2
        assert info["checkpointed"]
        dr2_count = reopened.query(count_sql).rows[0]["n"]
        assert dr2_count == len(dr2.tables["PhotoObj"])
        dr2_galaxies = repr(reopened.query(
            "select top 5 objID, modelMag_r from Galaxy "
            "order by objID").rows)
        assert dr2_galaxies != dr1_galaxies
        reopened.close()

        final = SkyServer.open(root)
        assert final.query(count_sql).rows[0]["n"] == dr2_count
        assert repr(final.query(
            "select top 5 objID, modelMag_r from Galaxy "
            "order by objID").rows) == dr2_galaxies
        final.close()


# ---------------------------------------------------------------------------
# The session protocol
# ---------------------------------------------------------------------------

class TestSessionProtocol:
    def test_make_session_single_node(self):
        database = _build_db("row")
        session = make_session(database, row_limit=10)
        assert isinstance(session, Session)
        assert session.database is database
        for probe in ("execute", "query", "explain", "optimizer_statistics",
                      "execution_mode_statistics", "feedback_statistics"):
            assert callable(getattr(session, probe))

    def test_make_session_parallel_planner(self):
        database = _build_db("column")
        session = make_session(database, parallelism=4)
        assert session.planner.parallelism == 4

    def test_make_session_cluster(self):
        from repro.cluster import ClusterSession, ShardCluster

        database = Database("p")
        database.create_table("Obj", [bigint("objID"), floating("dec")],
                              primary_key=PrimaryKey(["objID"]))
        cluster = ShardCluster.from_database(database, shards=2)
        session = make_session(cluster.coordinator, cluster=cluster)
        assert isinstance(session, ClusterSession)
        assert isinstance(session, Session)
        assert session.feedback_statistics() is not None
