"""Tests for the compiled expression pipeline, plan cache and vacuum."""

import pytest

from repro.engine import (CURRENT_TIMESTAMP, Database, PrimaryKey, Planner,
                          SqlSession, bigint, floating, text, timestamp)
from repro.engine.compile import (RowCompileError, compile_expression,
                                  compile_row_expression, supports_row_mode)
from repro.engine.errors import ExpressionError
from repro.engine.expressions import (BinaryOp, ColumnRef, EvaluationContext,
                                      FunctionCall, Literal, RowScope, Variable)
from repro.engine.sql import parse_expression, parse_select
from repro.engine.types import NULL
from repro.loader.undo import undo_time_window
import datetime as _dt


def make_database(rows=200):
    database = Database("compiletest")
    table = database.create_table("t", [
        bigint("id"), floating("value", nullable=True), text("label", nullable=True),
        bigint("flags"),
    ], primary_key=PrimaryKey(["id"]))
    table.insert_many([
        {"id": index,
         "value": (index * 0.5) - 10 if index % 7 else NULL,
         "label": f"L{index % 5}" if index % 11 else NULL,
         "flags": index % 16}
        for index in range(rows)
    ], database=database)
    return database, table


# ---------------------------------------------------------------------------
# Compiled scalar evaluation
# ---------------------------------------------------------------------------

class TestCompiledExpressions:
    CASES = [
        "value * 2 + 1 > 0",
        "value between -3 and 12.5",
        "label in ('l1', 'L2', 'nope')",
        "label like 'l%'",
        "label is null",
        "value is not null and value < 50",
        "flags & 3 = 1 or flags | 8 = 15",
        "case when value > 0 then 'pos' when value < 0 then 'neg' else 'zero' end",
        "abs(value) + sqrt(16)",
        "- value",
        "not (value > 0)",
        "value / 0",
        "id % 3",
        "1 + 2 * 3",
        "'A' = 'a'",
    ]

    @pytest.mark.parametrize("sql", CASES)
    def test_compiled_matches_interpreted(self, sql):
        _database, table = make_database()
        expression = parse_expression(sql)
        context = EvaluationContext()
        compiled = compile_expression(expression, context)
        for _row_id, row in table.iter_rows():
            scope = RowScope().bind("t", row)
            assert compiled(scope) == expression.evaluate(scope, context)

    @pytest.mark.parametrize("sql", CASES)
    def test_row_mode_matches_interpreted(self, sql):
        _database, table = make_database()
        expression = parse_expression(sql)
        context = EvaluationContext()
        assert supports_row_mode(expression, table, "t")
        compiled = compile_row_expression(expression, context, table, "t")
        for _row_id, row in table.iter_rows():
            scope = RowScope().bind("t", row)
            assert compiled(row) == expression.evaluate(scope, context)

    def test_constant_folding(self):
        expression = parse_expression("1 + 2 * 3")
        compiled = compile_expression(expression, EvaluationContext())
        assert compiled(None) == 7  # no scope access needed

    def test_folding_defers_errors(self):
        # 'a' + 1 is a constant subtree whose evaluation raises; it must
        # raise at call time, not compile time (short-circuits may skip it).
        expression = BinaryOp("+", Literal("a"), Literal(1))
        compiled = compile_expression(expression, EvaluationContext())
        with pytest.raises(ExpressionError):
            compiled(None)
        guarded = BinaryOp("and", Literal(False), expression)
        assert compile_expression(guarded, EvaluationContext())(None) is False

    def test_variables_fold_to_constants(self):
        context = EvaluationContext(variables={"cut": 4})
        expression = parse_expression("@cut * 2")
        assert compile_expression(expression, context)(None) == 8

    def test_undeclared_variable_raises_at_call(self):
        compiled = compile_expression(Variable("missing"), EvaluationContext())
        with pytest.raises(ExpressionError):
            compiled(None)

    def test_unknown_function_raises_at_call(self):
        compiled = compile_expression(
            FunctionCall("no_such_fn", [Literal(1)]), EvaluationContext())
        with pytest.raises(Exception):
            compiled(None)

    def test_row_mode_rejects_foreign_columns(self):
        _database, table = make_database()
        with pytest.raises(RowCompileError):
            compile_row_expression(ColumnRef("value", "other"),
                                   EvaluationContext(), table, "t")
        assert not supports_row_mode(ColumnRef("nope"), table, "t")


# ---------------------------------------------------------------------------
# Fused fast path vs the interpreted pipeline
# ---------------------------------------------------------------------------

class TestFusedPath:
    QUERIES = [
        "select id, value * 2 as v from t where value > 0 and flags & 3 = 1",
        "select * from t where label like 'L%'",
        "select top 5 id from t where value is not null",
        "select distinct label from t where value > -100",
        "select id from t where value between 0 and 20",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_fused_matches_interpreted(self, sql):
        database, _table = make_database()
        query = parse_select(sql)
        fused = Planner(database).plan(query).execute()
        interpreted = Planner(database, enable_fusion=False).plan(query).execute(
            compiled=False)
        assert fused.rows == interpreted.rows
        assert fused.columns == interpreted.columns
        assert fused.statistics.rows_scanned == interpreted.statistics.rows_scanned
        assert fused.statistics.bytes_scanned == interpreted.statistics.bytes_scanned

    def test_fused_keeps_explain_shape_and_actuals(self):
        database, _table = make_database()
        result = SqlSession(database).query(
            "select id from t where value > 0 and 1 = 1")
        plan_text = result.plan.explain()
        assert "Table Scan" in plan_text
        assert "compiled exprs=" in plan_text
        assert result.plan.root.actual_rows == len(result.rows)

    def test_compile_counter_populated(self):
        database, _table = make_database()
        result = SqlSession(database).query("select id, value from t where value > 0")
        assert result.statistics.exprs_compiled > 0
        interpreted = Planner(database, enable_fusion=False).plan(
            parse_select("select id from t where value > 0")).execute(compiled=False)
        assert interpreted.statistics.exprs_compiled == 0


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------

class TestPlanCache:
    def test_second_execution_skips_parse_and_plan(self):
        database, _table = make_database()
        session = SqlSession(database)
        sql = "select id from t where value > 3"
        first = session.query(sql)
        assert session.plan_cache.misses == 1 and session.plan_cache.hits == 0
        assert first.statistics.plan_cache_misses == 1
        built = session.planner.plans_built
        second = session.query("select  id\n from t  where value > 3")
        assert session.plan_cache.hits == 1
        assert session.planner.plans_built == built  # no re-plan
        assert second.statistics.plan_cache_hits == 1
        assert second.rows == first.rows

    def test_variables_reevaluate_against_cached_plan(self):
        database, _table = make_database()
        session = SqlSession(database)
        batch = ("declare @cut float\n"
                 "set @cut = 3\n"
                 "select id from t where value > @cut")
        first = session.query(batch)
        batch2 = batch.replace("= 3", "= 90")
        # Different SQL text → different cache entry; but re-running the
        # identical batch must re-run SET and honour the variable.
        second = session.query(batch)
        assert second.rows == first.rows
        assert session.plan_cache.hits == 1
        third = session.query(batch2)
        assert len(third.rows) < len(first.rows)

    def test_ddl_invalidates_cached_plans(self):
        database, table = make_database()
        session = SqlSession(database)
        sql = "select id from t where value > 3"
        session.query(sql)
        session.query(sql)
        assert session.plan_cache.hits == 1
        table.create_index("ix_value", ["value"])  # DDL bumps schema version
        result = session.query(sql)
        assert session.plan_cache.invalidations == 1
        # The re-planned query now uses the new index.
        assert "Index Seek" in result.plan.explain()

    def test_create_and_drop_table_bump_schema_version(self):
        database, _table = make_database()
        before = database.schema_version
        database.create_table("extra", [bigint("id")])
        assert database.schema_version > before
        mid = database.schema_version
        database.drop_table("extra")
        assert database.schema_version > mid

    def test_select_into_is_not_cached(self):
        database, _table = make_database()
        session = SqlSession(database)
        sql = "select id, value into ##hot from t where value > 0"
        session.query(sql)
        session.query(sql)
        assert session.plan_cache.hits == 0  # INTO performs DDL: never cached
        # And the materialised table reflects the latest run.
        assert database.has_table("##hot")

    def test_lru_eviction(self):
        database, _table = make_database()
        session = SqlSession(database, plan_cache_size=2)
        session.query("select id from t where value > 1")
        session.query("select id from t where value > 2")
        session.query("select id from t where value > 3")
        assert len(session.plan_cache) == 2
        assert session.plan_cache.evictions == 1
        session.query("select id from t where value > 1")  # evicted → miss
        assert session.plan_cache.hits == 0

    def test_string_literal_whitespace_is_not_collapsed(self):
        database, table = make_database(0)
        table.insert_many([{"id": 1, "value": 0.0, "label": "a b", "flags": 0},
                           {"id": 2, "value": 0.0, "label": "a  b", "flags": 0}],
                          database=database)
        session = SqlSession(database)
        one = session.query("select id from t where label = 'a  b'")
        two = session.query("select id from t where label = 'a b'")
        assert [row["id"] for row in one.rows] == [2]
        assert [row["id"] for row in two.rows] == [1]
        assert session.plan_cache.hits == 0  # different literals, different keys

    def test_in_list_stays_lazy_after_match(self):
        # 1 IN (1, 'a'+1): the interpreter matches the first item and never
        # evaluates the raising second item; compiled must do the same.
        from repro.engine.expressions import InList
        expression = InList(Literal(1), [Literal(1),
                                         BinaryOp("+", Literal("a"), Literal(1))])
        context = EvaluationContext()
        scope = RowScope()
        assert expression.evaluate(scope, context) is True
        assert compile_expression(expression, context)(scope) is True

    def test_explain_does_not_cache_select_into(self):
        database, _table = make_database()
        session = SqlSession(database)
        sql = "select id, value into ##hot2 from t where value > 0"
        session.explain(sql)          # plans without executing
        session.query(sql)
        assert session.plan_cache.hits == 0  # the INTO batch was never cached
        session.query(sql)
        assert session.plan_cache.hits == 0

    def test_explain_uses_cache(self):
        database, _table = make_database()
        session = SqlSession(database)
        sql = "select id from t where value > 3"
        session.explain(sql)
        built = session.planner.plans_built
        session.explain(sql)
        assert session.planner.plans_built == built
        assert session.plan_cache.hits == 1


# ---------------------------------------------------------------------------
# Tombstone compaction
# ---------------------------------------------------------------------------

class TestVacuum:
    def test_vacuum_compacts_and_preserves_queries(self):
        database, table = make_database(100)
        deleted = table.delete_where(lambda row: row["id"] % 2 == 0)
        assert deleted == 50
        assert table.tombstone_count == 50
        before = {row["id"] for row in table}
        reclaimed = table.vacuum()
        assert reclaimed == 50
        assert table.tombstone_count == 0
        assert len(table.rows) == 50
        assert {row["id"] for row in table} == before
        # Indexes were rebuilt over the new row ids.
        result = SqlSession(database).query("select id from t where id = 37")
        assert [row["id"] for row in result.rows] == [37]

    def test_maybe_vacuum_threshold(self):
        _database, table = make_database(100)
        table.delete_where(lambda row: row["id"] < 10)  # 10% dead: below threshold
        assert table.maybe_vacuum() == 0
        table.delete_where(lambda row: row["id"] < 40)  # 40% dead: compact
        assert table.maybe_vacuum() == 40
        assert table.tombstone_count == 0

    def test_undo_path_vacuums(self):
        database = Database("undotest")
        table = database.create_table(
            "obs", [bigint("id"),
                    timestamp("insertTime", default=CURRENT_TIMESTAMP)],
            primary_key=PrimaryKey(["id"]))
        t0 = _dt.datetime(2002, 1, 1, tzinfo=_dt.timezone.utc)
        table.set_clock(lambda: t0)
        table.insert_many([{"id": index} for index in range(30)])
        bad_start = _dt.datetime(2002, 6, 1, tzinfo=_dt.timezone.utc)
        table.set_clock(lambda: bad_start)
        table.insert_many([{"id": 100 + index} for index in range(70)])
        deleted = undo_time_window(database, "obs", bad_start, None)
        assert deleted == 70
        # 70% of slots were tombstones → the undo path compacted them.
        assert table.tombstone_count == 0
        assert len(table.rows) == 30
