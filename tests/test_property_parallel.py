"""Property tests: morsel-parallel execution is byte-identical to serial.

The whole parallel layer rests on one claim — the ordered gather makes
a parallel plan's output indistinguishable from the serial plan's, for
any worker count and any lease grant.  These tests attack the claim
from every side: random single-table queries (filters, projections,
order-sensitive float SUM/AVG, DISTINCT, TOP-N) and joins (hash and
sort-merge) run under workers ∈ {1, 2, 4} over both storage layouts and
must return *identical* row lists (order included); deterministic unit
tests then aim at the seams — morsel boundaries around deleted rows,
live-mask snapshots under concurrent DML, vacuum — and at the serving
pool's parallelism-blind cache keys and admission quotas.
"""

from __future__ import annotations

import threading

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.engine import (Database, Planner, PrimaryKey, SqlSession,
                          WorkerPool, bigint, floating, get_worker_pool,
                          integer)
from repro.engine.batch import BATCH_ROWS, morsel_ranges
from repro.engine.explain import plan_operators
from repro.engine.sql import parse_select
from repro.skyserver.pool import SkyServerPool

settings.register_profile("repro-parallel", deadline=None, max_examples=25)
settings.load_profile("repro-parallel")

WORKER_COUNTS = (1, 2, 4)


def _exact(rows) -> str:
    """A bit-faithful rendering (repr distinguishes 0.0 from -0.0)."""
    return repr(rows)


def _run(database: Database, sql: str, **planner_kwargs):
    planner = Planner(database, parallel_row_threshold=0, **planner_kwargs)
    plan = planner.plan(parse_select(sql))
    return plan.execute()


# ---------------------------------------------------------------------------
# Hypothesis: random single-table queries
# ---------------------------------------------------------------------------

SINGLE_TABLE_QUERIES = [
    "select objid, mag, run from obj where mag < 21 and run % 3 = 0",
    "select top 7 objid, mag from obj where mag > 15",
    "select distinct run from obj where mag < 22",
    "select count(*) as n, sum(mag) as s, avg(mag) as a from obj",
    "select run, count(*) as n, sum(mag) as s, avg(mag) as a "
    "from obj group by run",
    "select run, min(objid) as lo, max(mag) as hi from obj "
    "where mag < 23 group by run",
    "select count(distinct run) as d from obj where mag >= 16",
    "select sum(run) as s, avg(run) as a, count(*) as n from obj "
    "where mag < 22",
]


def _build_obj(storage: str, rows, analyze: bool) -> Database:
    database = Database(f"par-{storage}")
    table = database.create_table("obj", [
        bigint("objid"), floating("mag"), integer("run"),
    ], primary_key=PrimaryKey(["objid"]), storage=storage)
    table.insert_many({"objid": index, "mag": mag, "run": run}
                      for index, (mag, run) in enumerate(rows))
    if analyze:
        database.analyze()
    return database


@given(rows=st.lists(
        st.tuples(st.floats(min_value=14.0, max_value=24.0, allow_nan=False),
                  st.integers(min_value=0, max_value=9)),
        min_size=0, max_size=120),
       query_index=st.integers(min_value=0, max_value=63),
       storage=st.sampled_from(["row", "column"]),
       analyze=st.booleans())
def test_parallel_single_table_byte_identical(rows, query_index, storage,
                                              analyze):
    database = _build_obj(storage, rows, analyze)
    sql = SINGLE_TABLE_QUERIES[query_index % len(SINGLE_TABLE_QUERIES)]
    baseline = _run(database, sql, parallelism=1)
    for workers in WORKER_COUNTS[1:]:
        result = _run(database, sql, parallelism=workers)
        assert _exact(result.rows) == _exact(baseline.rows), (sql, workers)
        assert result.columns == baseline.columns


# ---------------------------------------------------------------------------
# Hypothesis: joins — hash and sort-merge
# ---------------------------------------------------------------------------

JOIN_SQL = ("select o.objid, o.mag, n.z from obj o, nbr n "
            "where o.objid = n.objid and o.mag < 23")
JOIN_AGG_SQL = ("select n.grp, count(*) as c, sum(o.run) as s "
                "from obj o, nbr n where o.objid = n.objid group by n.grp")


def _build_join_pair(storage: str, obj_rows, nbr_ids, analyze: bool) -> Database:
    database = Database(f"parjoin-{storage}")
    obj = database.create_table("obj", [
        bigint("objid"), floating("mag"), integer("run"),
    ], primary_key=PrimaryKey(["objid"]), storage=storage)
    nbr = database.create_table("nbr", [
        bigint("objid"), floating("z"), integer("grp"),
    ], primary_key=PrimaryKey(["objid"]), storage=storage)
    obj.insert_many({"objid": index, "mag": mag, "run": run}
                    for index, (mag, run) in enumerate(obj_rows))
    # nbr keys ascend (a subset of obj ids): sorted, NULL-free — the
    # co-partitioned shape sort-merge accepts.
    nbr.insert_many({"objid": objid, "z": objid * 0.125, "grp": objid % 5}
                    for objid in sorted(nbr_ids))
    if analyze:
        database.analyze()
    return database


@given(obj_rows=st.lists(
        st.tuples(st.floats(min_value=14.0, max_value=24.0, allow_nan=False),
                  st.integers(min_value=0, max_value=9)),
        min_size=1, max_size=100),
       nbr_ids=st.sets(st.integers(min_value=0, max_value=140),
                       min_size=1, max_size=60),
       storage=st.sampled_from(["row", "column"]),
       analyze=st.booleans(),
       sql=st.sampled_from([JOIN_SQL, JOIN_AGG_SQL]))
def test_parallel_joins_byte_identical(obj_rows, nbr_ids, storage, analyze,
                                       sql):
    database = _build_join_pair(storage, obj_rows, nbr_ids, analyze)
    baseline = _run(database, sql, parallelism=1, enable_index_join=False)
    for workers in WORKER_COUNTS[1:]:
        parallel = _run(database, sql, parallelism=workers,
                        enable_index_join=False)
        assert _exact(parallel.rows) == _exact(baseline.rows), (sql, workers)
    # Sort-merge (both key columns ascend, no NULLs) must agree with the
    # hash join row-for-row, serial and parallel alike.
    for workers in WORKER_COUNTS:
        merged = _run(database, sql, parallelism=workers,
                      enable_index_join=False, enable_sort_merge=True)
        assert _exact(merged.rows) == _exact(baseline.rows), (sql, workers)


def test_sort_merge_join_is_planned_and_labelled():
    database = _build_join_pair("column",
                                [(15.0 + i * 0.01, i % 7) for i in range(200)],
                                range(0, 200, 3), analyze=True)
    planner = Planner(database, enable_sort_merge=True,
                      enable_index_join=False, enable_hash_join=False)
    plan = planner.plan(parse_select(JOIN_SQL))
    assert "Sort-Merge Join" in plan_operators(plan)
    # Default-off: the same query without the flag never plans a merge.
    default_plan = Planner(database, enable_index_join=False,
                           enable_hash_join=False).plan(parse_select(JOIN_SQL))
    assert "Sort-Merge Join" not in plan_operators(default_plan)


def test_sort_merge_requires_sorted_null_free_keys():
    database = Database("unsorted")
    left = database.create_table("obj", [bigint("objid"), floating("mag")],
                                 storage="column")
    right = database.create_table("nbr", [bigint("objid"), floating("z")],
                                  storage="column")
    left.insert_many({"objid": objid, "mag": 15.0}
                     for objid in (5, 3, 9, 1))        # not ascending
    right.insert_many({"objid": objid, "z": 0.1} for objid in (1, 3, 5))
    planner = Planner(database, enable_sort_merge=True,
                      enable_index_join=False)
    sql = "select o.objid from obj o, nbr n where o.objid = n.objid"
    labels = plan_operators(planner.plan(parse_select(sql)))
    assert "Sort-Merge Join" not in labels
    # The result is still a join — just never a merge over unsorted keys.
    assert any("Join" in label for label in labels)


# ---------------------------------------------------------------------------
# Morsel boundaries, live-mask snapshots, DML and vacuum
# ---------------------------------------------------------------------------

def _big_column_table(rows: int = 10_000) -> Database:
    database = Database("morsel-unit")
    table = database.create_table("obj", [
        bigint("objid"), floating("mag"), integer("run"),
    ], primary_key=PrimaryKey(["objid"]), storage="column")
    table.insert_many({"objid": index, "mag": 14.0 + (index % 997) * 0.01,
                       "run": index % 11} for index in range(rows))
    return database


def test_morsel_ranges_tile_exactly():
    assert morsel_ranges(0) == []
    assert morsel_ranges(1) == [(0, 1)]
    assert morsel_ranges(BATCH_ROWS) == [(0, BATCH_ROWS)]
    ranges = morsel_ranges(BATCH_ROWS * 2 + 5)
    assert ranges == [(0, BATCH_ROWS), (BATCH_ROWS, 2 * BATCH_ROWS),
                      (2 * BATCH_ROWS, 2 * BATCH_ROWS + 5)]


def test_parallel_spans_multiple_morsels_and_matches_serial():
    database = _big_column_table()
    sql = "select run, count(*) as n, sum(mag) as s from obj group by run"
    baseline = _run(database, sql, parallelism=1)
    parallel = _run(database, sql, parallelism=4)
    assert _exact(parallel.rows) == _exact(baseline.rows)
    assert parallel.statistics.morsels_dispatched == 3   # 10k rows / 4096
    assert parallel.statistics.parallel_workers >= 1
    assert baseline.statistics.morsels_dispatched == 0


def test_deletes_at_morsel_boundaries_stay_identical():
    database = _big_column_table()
    table = database.table("obj")
    # Tombstones hugging every morsel boundary, plus a fully-dead morsel.
    victims = [BATCH_ROWS - 1, BATCH_ROWS, BATCH_ROWS + 1,
               2 * BATCH_ROWS - 1, 2 * BATCH_ROWS]
    victims += list(range(2 * BATCH_ROWS, min(3 * BATCH_ROWS, 10_000)))
    dead = set(victims)
    table.delete_where(lambda row: row["objid"] in dead)
    sql = "select count(*) as n, sum(mag) as s, avg(mag) as a from obj"
    baseline = _run(database, sql, parallelism=1)
    parallel = _run(database, sql, parallelism=4)
    assert _exact(parallel.rows) == _exact(baseline.rows)
    # Vacuum compacts the buffers (under the exclusive lock); results of
    # a fresh parallel scan are unchanged.
    table.vacuum()
    after = _run(database, sql, parallelism=4)
    assert _exact(after.rows) == _exact(baseline.rows)


def test_live_mask_snapshot_freezes_the_row_set():
    database = _big_column_table(100)
    storage = database.table("obj").storage
    mask = storage.live_mask_snapshot()
    database.table("obj").insert({"objid": 100, "mag": 15.0, "run": 0})
    assert len(storage.live_mask_snapshot()) == 101
    # The frozen mask never sees the new row, whatever range is asked.
    assert storage.live_positions(0, 101, mask) == list(range(100))
    assert storage.live_positions(96, 200, mask) == [96, 97, 98, 99]


def test_parallel_counts_are_snapshots_under_concurrent_appends():
    database = _big_column_table(8000)
    table = database.table("obj")
    stop = threading.Event()
    errors: list[BaseException] = []

    def appender():
        objid = 10_000
        while not stop.is_set():
            table.insert({"objid": objid, "mag": 20.0, "run": objid % 11},
                         database=database)
            objid += 1

    writer = threading.Thread(target=appender)
    writer.start()
    try:
        planner = Planner(database, parallelism=4, parallel_row_threshold=0)
        previous = 0
        for _ in range(20):
            result = planner.plan(
                parse_select("select count(*) as n from obj")).execute()
            count = result.rows[0]["n"]
            # One scan = one snapshot: a single consistent count that
            # can only grow between scans.
            assert count >= previous >= 0
            previous = count
    except BaseException as error:      # pragma: no cover - diagnostic aid
        errors.append(error)
    finally:
        stop.set()
        writer.join()
    assert not errors
    final = planner.plan(parse_select("select count(*) as n from obj"))
    assert final.execute().rows[0]["n"] == table.row_count


# ---------------------------------------------------------------------------
# The worker pool: leases, ordering, degradation
# ---------------------------------------------------------------------------

class TestWorkerPool:
    def test_ordered_map_preserves_submission_order(self):
        pool = WorkerPool(capacity=4)
        try:
            with pool.lease(4) as lease:
                assert lease.workers == 4
                out = list(lease.ordered_map(lambda n: n * n, range(50)))
            assert out == [n * n for n in range(50)]
        finally:
            pool.shutdown()

    def test_lease_grants_degrade_then_release(self):
        pool = WorkerPool(capacity=4)
        first = pool.lease(3)
        assert first.workers == 3
        second = pool.lease(3)
        assert second.workers == 1          # only one slot left
        third = pool.lease(2)
        assert third.workers == 0           # fully leased: run inline
        assert list(third.ordered_map(str, [1, 2])) == ["1", "2"]
        first.release()
        second.release()
        third.release()
        assert pool.leased == 0
        assert pool.statistics()["leases_degraded"] == 2

    def test_global_pool_is_shared(self):
        assert get_worker_pool() is get_worker_pool()


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE actuals and session statistics
# ---------------------------------------------------------------------------

def test_explain_analyze_reports_actuals_and_morsels():
    database = _big_column_table()
    session = SqlSession(database, planner=Planner(database, parallelism=4))
    sql = "select count(*) as n from obj where mag > 9999"
    text = session.explain(sql, analyze=True)
    # Every operator reports actuals after execution — including zero:
    # the aggregate produced one row, the scan matched none.
    for line in text.splitlines():
        if line.lstrip().startswith("->"):
            assert "actual rows=" in line, line
    assert "workers=4" in text
    assert "morsels=" in text
    modes = session.execution_mode_statistics()
    assert modes["parallel_executions"] == 1
    # The two sealed segments' zone maps prove mag > 9999 can never
    # match (mag tops out around 24), so only the append tail becomes a
    # morsel — segment skipping composes with the pool.
    assert modes["morsels_dispatched"] == 1
    assert "skipped=2" in text

    # Without an analyzable predicate nothing is skippable: every scan
    # unit (two sealed segments + the tail) is dispatched as a morsel.
    session.execute("select count(*) as n from obj")
    modes = session.execution_mode_statistics()
    assert modes["morsels_dispatched"] == 1 + 3


def test_parallelism_one_plans_and_renders_identically():
    database = _big_column_table()
    sql = "select run, count(*) as n from obj where mag < 20 group by run"
    stock = Planner(database).plan(parse_select(sql))
    pinned = Planner(database, parallelism=1).plan(parse_select(sql))
    assert stock.explain() == pinned.explain()
    assert _exact(stock.execute().rows) == _exact(pinned.execute().rows)


# ---------------------------------------------------------------------------
# Serving pool: parallelism never leaks into cache keys or admission
# ---------------------------------------------------------------------------

class TestServingPoolParallelism:
    def test_cache_key_ignores_parallelism(self):
        sql = "select count(*) as n from obj"
        assert (SkyServerPool._cache_key(sql, "public")
                == SkyServerPool._cache_key("select  count(*)  as n \n from obj",
                                            "public"))

    def test_parallel_and_serial_share_a_cache_entry(self):
        database = _big_column_table()
        with SkyServerPool(database, workers=2, parallelism=4) as pool:
            assert pool.parallelism >= 1
            sql = "select run, count(*) as n from obj group by run"
            first = pool.execute(sql)
            second = pool.execute(sql)
            assert _exact(second.rows) == _exact(first.rows)
            assert pool.result_cache.hits >= 1
            # The entry a parallel worker filled serves a serial run of
            # the same SQL (and vice versa): one key, either mode.
            serial = SqlSession(database).query(sql)
            assert _exact(serial.rows) == _exact(first.rows)

    def test_parallelism_clamped_to_shared_pool_capacity(self):
        database = Database("clamp")
        database.create_table("t", [bigint("x")], storage="column")
        with SkyServerPool(database, workers=8, parallelism=1024) as pool:
            assert pool.parallelism * 8 <= get_worker_pool().capacity

    def test_admission_counts_queries_not_workers(self):
        database = _big_column_table()
        with SkyServerPool(database, workers=2, parallelism=4) as pool:
            tickets = [pool.submit(
                f"select count(*) as n from obj where run <> {index}")
                for index in range(6)]
            for ticket in tickets:
                ticket.result(timeout=30)
            stats = pool.statistics()
            # 6 admissions, whatever the intra-query fan-out was.
            assert stats["submitted"] == 6
            assert stats["completed"] == 6
            assert stats["rejected"] == 0


# ---------------------------------------------------------------------------
# Acceptance: the fig13 suite under parallelism=4, single-node and sharded
# ---------------------------------------------------------------------------

def _assert_suites_identical(expected, actual):
    assert len(expected) == len(actual) >= 20
    for want, got in zip(expected, actual):
        assert got.query_id == want.query_id
        assert got.result.columns == want.result.columns, want.query_id
        assert _exact(got.result.rows) == _exact(want.result.rows), want.query_id


@pytest.fixture(scope="module")
def columnar_skyserver(survey_output):
    from repro.loader import SkyServerLoader
    from repro.schema import create_skyserver_database
    from repro.skyserver import QueryLimits, SkyServer

    database = create_skyserver_database(with_indices=False)
    loader = SkyServerLoader(database, columnar=True)
    report = loader.load_pipeline_output(survey_output)
    assert report.succeeded, report.summary()
    return SkyServer(database, limits=QueryLimits.private())


@pytest.fixture(scope="module")
def sharded_columnar_skyserver(survey_output):
    from repro.loader import SkyServerLoader
    from repro.schema import create_skyserver_database
    from repro.skyserver import QueryLimits, SkyServer

    database = create_skyserver_database(with_indices=False)
    loader = SkyServerLoader(database, columnar=True, shards=4)
    report = loader.load_pipeline_output(survey_output)
    assert report.succeeded, report.summary()
    assert report.cluster is not None
    return SkyServer(database, limits=QueryLimits.private(),
                     cluster=report.cluster)


def test_fig13_parallel_single_node_byte_identical(columnar_skyserver):
    server = columnar_skyserver
    serial = server.run_all_data_mining_queries()
    original = server.session.planner
    server.session.planner = Planner(server.database, parallelism=4,
                                     parallel_row_threshold=0)
    server.session.plan_cache.clear()
    try:
        parallel = server.run_all_data_mining_queries()
    finally:
        server.session.planner = original
        server.session.plan_cache.clear()
    _assert_suites_identical(serial, parallel)
    assert server.session.morsels_dispatched > 0


def test_fig13_parallel_sharded_byte_identical(sharded_columnar_skyserver):
    from repro.cluster import ClusterSession

    server = sharded_columnar_skyserver
    serial = server.run_all_data_mining_queries()
    original = server.session
    parallel_session = ClusterSession(server.cluster,
                                      row_limit=original.row_limit,
                                      time_limit_seconds=original.time_limit_seconds,
                                      parallelism=4)
    parallel_session.session.planner.parallel_row_threshold = 0
    server.session = parallel_session
    try:
        parallel = server.run_all_data_mining_queries()
    finally:
        server.session = original
    _assert_suites_identical(serial, parallel)
