"""Property-based tests (hypothesis) for the engine's core data structures."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Database, Planner, PrimaryKey, bigint, floating, text
from repro.engine.compile import compile_expression
from repro.engine.sql import SqlSession, parse_expression, parse_select
from repro.engine.expressions import (Between, BinaryOp, CaseWhen, ColumnRef,
                                      EvaluationContext, FunctionCall, InList,
                                      Like, Literal, RowScope, UnaryOp)
from repro.engine.types import NULL

settings.register_profile("repro", deadline=None, max_examples=60)
settings.load_profile("repro")


def build_table(values):
    database = Database("prop")
    table = database.create_table("t", [
        bigint("id"), floating("value", nullable=True), text("label", nullable=True),
    ], primary_key=PrimaryKey(["id"]))
    rows = [{"id": index, "value": value, "label": f"L{index % 7}"}
            for index, value in enumerate(values)]
    table.insert_many(rows, database=database)
    return database, table


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), max_size=120))
def test_index_range_matches_brute_force(values):
    """An index range scan returns exactly the rows a full scan would."""
    _database, table = build_table(values)
    index = table.create_index("ix_value", ["value"])
    if not values:
        assert list(index.range((0.0,), (1.0,))) == []
        return
    low = min(values)
    high = max(values)
    midpoint_low = low + (high - low) * 0.25
    midpoint_high = low + (high - low) * 0.75
    via_index = sorted(table.get_row(rid)["id"]
                       for rid in index.range((midpoint_low,), (midpoint_high,)))
    via_scan = sorted(row["id"] for row in table
                      if row["value"] is not None and midpoint_low <= row["value"] <= midpoint_high)
    assert via_index == via_scan


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=1, max_size=120))
def test_index_scan_is_sorted_and_complete(values):
    _database, table = build_table(values)
    index = table.create_index("ix_value", ["value"])
    scanned = [table.get_row(rid)["value"] for rid in index.scan()]
    assert len(scanned) == len(values)
    assert scanned == sorted(scanned)


@given(st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=100))
def test_index_seek_equality_matches_filter(labels):
    database = Database("prop2")
    table = database.create_table("t", [bigint("id"), bigint("bucket")],
                                  primary_key=PrimaryKey(["id"]))
    table.insert_many([{"id": index, "bucket": bucket} for index, bucket in enumerate(labels)],
                      database=database)
    index = table.create_index("ix_bucket", ["bucket"])
    target = labels[0]
    via_index = sorted(table.get_row(rid)["id"] for rid in index.seek((target,)))
    via_scan = sorted(row["id"] for row in table if row["bucket"] == target)
    assert via_index == via_scan


@given(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
       st.floats(min_value=-1e4, max_value=1e4, allow_nan=False))
def test_parsed_arithmetic_matches_python(a, b):
    expression = parse_expression("a * 2 + b - 3")
    scope = RowScope().bind("t", {"a": a, "b": b})
    value = expression.evaluate(scope, EvaluationContext())
    assert value == (a * 2 + b - 3)


@given(st.floats(min_value=-100, max_value=100, allow_nan=False),
       st.floats(min_value=-100, max_value=100, allow_nan=False),
       st.floats(min_value=-100, max_value=100, allow_nan=False))
def test_between_equivalent_to_comparisons(value, low, high):
    low, high = min(low, high), max(low, high)
    scope = RowScope().bind("t", {"x": value})
    context = EvaluationContext()
    between = parse_expression(f"x between {low} and {high}").evaluate(scope, context)
    comparisons = parse_expression(f"x >= {low} and x <= {high}").evaluate(scope, context)
    assert between == comparisons


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                          st.floats(min_value=10, max_value=25, allow_nan=False)),
                min_size=1, max_size=80))
def test_sql_group_count_matches_python(rows):
    """GROUP BY counts agree with a plain Python dictionary count."""
    database = Database("prop3")
    table = database.create_table("t", [bigint("id"), bigint("bucket"), floating("mag")],
                                  primary_key=PrimaryKey(["id"]))
    table.insert_many([{"id": index, "bucket": bucket, "mag": mag}
                       for index, (bucket, mag) in enumerate(rows)], database=database)
    session = SqlSession(database)
    result = session.query("select bucket, count(*) as n from t group by bucket")
    expected: dict[int, int] = {}
    for bucket, _mag in rows:
        expected[bucket] = expected.get(bucket, 0) + 1
    assert {row["bucket"]: row["n"] for row in result.rows} == expected


@given(st.lists(st.floats(min_value=10, max_value=25, allow_nan=False),
                min_size=1, max_size=80),
       st.floats(min_value=10, max_value=25, allow_nan=False))
def test_sql_filter_matches_python(values, threshold):
    """WHERE mag < t returns exactly the Python-filtered set."""
    database, table = build_table(values)
    session = SqlSession(database)
    result = session.query(f"select id from t where value < {threshold!r}")
    expected = {index for index, value in enumerate(values) if value < threshold}
    assert {row["id"] for row in result.rows} == expected


# ---------------------------------------------------------------------------
# Compiled evaluation equivalence
# ---------------------------------------------------------------------------

_literals = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.floats(min_value=-50, max_value=50, allow_nan=False),
    st.sampled_from(["abc", "L1", "%b_", ""]),
    st.just(NULL),
).map(Literal)

_columns = st.sampled_from(["x", "y", "s"]).map(ColumnRef)


def _make_binary(children):
    ops = st.sampled_from(["+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">",
                           ">=", "and", "or", "&", "|", "^"])
    return st.tuples(ops, children, children).map(
        lambda triple: BinaryOp(triple[0], triple[1], triple[2]))


def _make_unary(children):
    ops = st.sampled_from(["-", "+", "not", "is null", "is not null"])
    return st.tuples(ops, children).map(lambda pair: UnaryOp(pair[0], pair[1]))


def _expression_strategy():
    def extend(children):
        return st.one_of(
            _make_binary(children),
            _make_unary(children),
            st.tuples(children, children, children, st.booleans()).map(
                lambda t: Between(t[0], t[1], t[2], t[3])),
            st.tuples(children, st.lists(children, max_size=3), st.booleans()).map(
                lambda t: InList(t[0], t[1], t[2])),
            st.tuples(children, _literals, st.booleans()).map(
                lambda t: Like(t[0], t[1], t[2])),
            st.tuples(st.lists(st.tuples(children, children), min_size=1, max_size=2),
                      children).map(lambda t: CaseWhen(t[0], t[1])),
            st.tuples(st.sampled_from(["abs", "coalesce", "isnull", "len"]),
                      st.lists(children, min_size=1, max_size=2)).map(
                lambda t: FunctionCall(t[0], t[1][:1] if t[0] in ("abs", "len")
                                       else (t[1] * 2)[:2])),
        )

    return st.recursive(st.one_of(_literals, _columns), extend, max_leaves=16)


_row_values = st.fixed_dictionaries({
    "x": st.one_of(st.integers(min_value=-20, max_value=20), st.just(NULL)),
    "y": st.one_of(st.floats(min_value=-20, max_value=20, allow_nan=False),
                   st.just(NULL)),
    "s": st.one_of(st.sampled_from(["abc", "L1", "zz"]), st.just(NULL)),
})


def _outcome(thunk):
    """A comparable outcome: the value, or the exception type raised."""
    try:
        return ("value", thunk())
    except Exception as exc:  # interpreter and compiler must raise alike
        return ("error", type(exc).__name__)


@given(_expression_strategy(), _row_values)
def test_compiled_evaluation_matches_interpreted(expression, row):
    """compile_expression(e)(scope) ≡ e.evaluate(scope, ctx) on random trees."""
    context = EvaluationContext()
    scope = RowScope().bind("t", row)
    expected = _outcome(lambda: expression.evaluate(scope, context))
    compiled = compile_expression(expression, context)
    actual = _outcome(lambda: compiled(scope))
    assert actual == expected


@given(st.lists(st.tuples(st.floats(min_value=-100, max_value=100, allow_nan=False),
                          st.integers(min_value=0, max_value=15)),
                min_size=1, max_size=60),
       st.floats(min_value=-50, max_value=50, allow_nan=False))
def test_fused_plan_matches_interpreted_plan(rows, threshold):
    """The fused scan→filter→project path returns the interpreted rows."""
    database = Database("prop_fused")
    table = database.create_table("t", [bigint("id"), floating("value"), bigint("flags")],
                                  primary_key=PrimaryKey(["id"]))
    table.insert_many([{"id": index, "value": value, "flags": flags}
                       for index, (value, flags) in enumerate(rows)], database=database)
    query = parse_select(
        f"select id, value * 2 + 1 as v from t where value > {threshold!r} and flags & 3 <> 2")
    fused = Planner(database).plan(query).execute()
    interpreted = Planner(database, enable_fusion=False).plan(query).execute(compiled=False)
    assert fused.rows == interpreted.rows


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                min_size=1, max_size=60))
def test_order_by_is_total_and_stable_under_reversal(values):
    database, _table = build_table(values)
    session = SqlSession(database)
    ascending = [row["value"] for row in session.query(
        "select value from t order by value").rows]
    descending = [row["value"] for row in session.query(
        "select value from t order by value desc").rows]
    assert ascending == sorted(values)
    assert descending == sorted(values, reverse=True)
