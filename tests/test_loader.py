"""Tests for the loader: steps, events, undo, validation, image pyramid."""

import datetime as dt

import numpy as np
import pytest

from repro.engine import Database, PrimaryKey, bigint, floating, timestamp
from repro.engine.types import CURRENT_TIMESTAMP
from repro.loader import (LoadStep, LoadEventLog, SkyServerLoader, STATUS_FAILED,
                          STATUS_SUCCESS, STATUS_UNDONE, build_pyramid, decode_tile,
                          nonlinear_rgb, render_field_image, undo_load_event,
                          undo_time_window, validate_database)
from repro.schema import create_skyserver_database


def tiny_database():
    database = Database("loader-test")
    database.create_table("Target", [
        bigint("id"),
        floating("value"),
        timestamp("insertTime", default=CURRENT_TIMESTAMP),
    ], primary_key=PrimaryKey(["id"]))
    return database


class TestLoadSteps:
    def test_successful_step_inserts_all_rows(self):
        database = tiny_database()
        step = LoadStep("Target", rows=[{"id": i, "value": float(i)} for i in range(10)])
        result = step.execute(database)
        assert result.succeeded and result.inserted_rows == 10
        assert database.table("Target").row_count == 10

    def test_duplicate_key_fails_the_step(self):
        database = tiny_database()
        rows = [{"id": 1, "value": 1.0}, {"id": 1, "value": 2.0}]   # duplicate PK
        result = LoadStep("Target", rows=rows).execute(database)
        # Uniqueness of bulk loads is checked at index rebuild time, so the step
        # fails as a whole and the operator UNDOes it (the paper's workflow).
        assert not result.succeeded
        assert "duplicate key" in result.error

    def test_not_null_violation_reports_row_number(self):
        database = tiny_database()
        rows = [{"id": 1, "value": 1.0}, {"id": 2, "value": None}, {"id": 3, "value": 3.0}]
        result = LoadStep("Target", rows=rows).execute(database)
        assert not result.succeeded
        assert result.failed_row_number == 2
        assert result.inserted_rows == 1

    def test_csv_step_with_type_conversion(self, tmp_path):
        from repro.pipeline import write_csv

        database = tiny_database()
        path = tmp_path / "Target.csv"
        write_csv(path, [{"id": "5", "value": "2.5"}], ["id", "value"])
        result = LoadStep.from_csv("Target", path).execute(database)
        assert result.succeeded
        row = next(iter(database.table("Target")))
        assert row["id"] == 5 and row["value"] == 2.5

    def test_file_reference_blob_placement(self, tmp_path):
        from repro.engine import blob

        database = Database("blob-test")
        database.create_table("Img", [bigint("id"), blob("img", nullable=False)],
                              primary_key=PrimaryKey(["id"]))
        image_path = tmp_path / "tile.jpg"
        image_path.write_bytes(b"JFIFxxxx")
        step = LoadStep("Img", rows=[{"id": 1, "img": "file:tile.jpg"}],
                        base_directory=tmp_path)
        result = step.execute(database)
        assert result.succeeded
        assert next(iter(database.table("Img")))["img"] == b"JFIFxxxx"

    def test_missing_csv_raises(self, tmp_path):
        from repro.engine.errors import LoadError

        with pytest.raises(LoadError):
            LoadStep.from_csv("Target", tmp_path / "nope.csv")


class TestEventsAndUndo:
    def test_event_lifecycle(self):
        database = tiny_database()
        log = LoadEventLog(database)
        event_id = log.start("Target", "batch-1", 3)
        assert log.get(event_id).status == "running"
        log.finish(event_id, inserted_rows=3, status=STATUS_SUCCESS)
        event = log.get(event_id)
        assert event.succeeded and event.inserted_rows == 3
        assert event.end_time is not None

    def test_undo_removes_only_the_bad_window(self):
        database = tiny_database()
        table = database.table("Target")
        log = LoadEventLog(database)

        # First (good) load step.
        first_event = log.start("Target", "good", 5)
        for index in range(5):
            table.insert({"id": index, "value": 1.0})
        log.finish(first_event, inserted_rows=5, status=STATUS_SUCCESS)

        # Make sure the second step's window starts strictly later.
        base = dt.datetime.now(tz=dt.timezone.utc) + dt.timedelta(seconds=1)
        database.set_clock(lambda: base)
        second_event = log.start("Target", "bad", 5)
        for index in range(5, 10):
            table.insert({"id": index, "value": 2.0})
        log.finish(second_event, inserted_rows=5, status=STATUS_FAILED, message="boom")

        removed = undo_load_event(database, log, second_event)
        assert removed == 5
        assert table.row_count == 5
        assert all(row["value"] == 1.0 for row in table)
        assert log.get(second_event).status == STATUS_UNDONE

    def test_undo_is_idempotent(self):
        database = tiny_database()
        log = LoadEventLog(database)
        event = log.start("Target", "x", 1)
        database.table("Target").insert({"id": 1, "value": 1.0})
        log.finish(event, inserted_rows=1, status=STATUS_FAILED)
        assert undo_load_event(database, log, event) == 1
        assert undo_load_event(database, log, event) == 0

    def test_undo_time_window_requires_timestamp_column(self):
        from repro.engine.errors import LoadError

        database = Database("no-ts")
        database.create_table("Bare", [bigint("id")], primary_key=PrimaryKey(["id"]))
        with pytest.raises(LoadError):
            undo_time_window(database, "Bare",
                             dt.datetime.now(tz=dt.timezone.utc), None)


class TestValidation:
    def test_validation_passes_on_loaded_database(self, loaded_database):
        report = validate_database(loaded_database)
        assert report.ok, [str(issue) for issue in report.issues[:5]]
        assert report.rows_checked > 0

    def test_validation_catches_bad_coordinates(self):
        database = create_skyserver_database(with_indices=False)
        field = database.table("Field")
        field.insert({
            "fieldID": 1, "run": 1, "rerun": 1, "camcol": 1, "field": 1, "stripe": 10,
            "strip": "N", "mjd": 51000.0, "ra": 185.0, "dec": 0.0, "raMin": 184.9,
            "raMax": 185.1, "decMin": -0.1, "decMax": 0.1, "nObjects": 1, "nStars": 0,
            "nGalaxy": 1, "quality": 3, "seeing": 1.2, "skyBrightness": 21.0,
        }, database=database)
        photo = database.table("PhotoObj")
        row = {column.name: 0 for column in photo.columns if column.name != "insertTime"}
        row.update({"objID": 1, "fieldID": 1, "ra": 400.0, "dec": 0.0,
                    "cx": 1.0, "cy": 0.0, "cz": 0.0, "htmID": 8 << 40,
                    "type": 3, "probPSF": 0.1})
        for band in "ugriz":
            for kind in ("psfMag", "fiberMag", "petroMag", "modelMag", "expMag", "deVMag"):
                row[f"{kind}_{band}"] = 20.0
                row[f"{kind}Err_{band}"] = 0.02
        photo.insert(row, database=database, skip_fk=True)
        report = validate_database(database, expect_primary_fraction=None)
        assert not report.ok
        assert any("ra out of range" in issue.detail for issue in report.issues)


class TestLoaderIntegration:
    def test_full_load_report(self, survey_output):
        database = create_skyserver_database(with_indices=False)
        loader = SkyServerLoader(database)
        report = loader.load_pipeline_output(survey_output, build_neighbors=False)
        assert report.succeeded
        assert report.rows_loaded == sum(survey_output.counts().values())
        assert report.indices_created > 0
        assert report.throughput_mb_per_s() > 0
        events = loader.load_events()
        assert all(event.status == STATUS_SUCCESS for event in events)
        assert {event.table_name for event in events} == set(survey_output.tables)

    def test_failed_step_can_be_undone_and_reloaded(self, survey_output):
        database = create_skyserver_database(with_indices=False)
        loader = SkyServerLoader(database)
        field_rows = [dict(row) for row in survey_output.tables["Field"]]
        # Corrupt one row so the step fails part-way through (duplicate key).
        corrupted = field_rows + [dict(field_rows[0])]
        result, event_id = loader.run_step(LoadStep("Field", rows=corrupted, source="corrupt"))
        assert not result.succeeded
        assert database.table("Field").row_count == result.inserted_rows

        removed = loader.undo(event_id)
        assert removed == result.inserted_rows
        assert database.table("Field").row_count == 0

        # Fix the data (drop the duplicate) and re-execute, as the operator would.
        result2, _event2 = loader.run_step(LoadStep("Field", rows=field_rows, source="fixed"))
        assert result2.succeeded
        assert database.table("Field").row_count == len(field_rows)

    def test_foreign_key_violation_fails_the_step(self, survey_output):
        database = create_skyserver_database(with_indices=False)
        loader = SkyServerLoader(database)
        # Loading PhotoObj before Field violates the fieldID foreign key.
        result, _event = loader.run_step(
            LoadStep("PhotoObj", rows=survey_output.tables["PhotoObj"][:5]))
        assert not result.succeeded
        assert "no match" in result.error


class TestImagePyramid:
    def test_pyramid_levels_and_decode_roundtrip(self):
        objects = [{"ra": 185.0, "dec": -0.5, "modelmag_r": 17.0, "modelmag_g": 17.5,
                    "modelmag_i": 16.8, "modelmag_u": 18.5, "modelmag_z": 16.5,
                    "petrorad_r": 3.0}]
        image = render_field_image(objects, ra_min=184.9, ra_max=185.1,
                                   dec_min=-0.6, dec_max=-0.4, width=64, height=48)
        assert image.shape == (5, 48, 64)
        tiles = build_pyramid(image)
        assert len(tiles) == 5                      # zoom 0 + 4 pyramid levels
        assert tiles[1].width == tiles[0].width // 2
        decoded = decode_tile(tiles[0])
        assert decoded.shape == (48, 64, 3)

    def test_nonlinear_mapping_compresses_dynamic_range(self):
        image = np.zeros((5, 8, 8))
        image[:, 0, 0] = 1000.0      # a very bright star
        image[:, 4, 4] = 1.0         # a faint galaxy
        rgb = nonlinear_rgb(image)
        assert rgb.dtype == np.uint8
        assert rgb[0, 0].max() <= 255
        assert rgb[4, 4].max() > 0   # faint object still visible

    def test_pyramid_tiles_shrink(self):
        image = np.random.default_rng(0).random((5, 64, 64))
        tiles = build_pyramid(image)
        sizes = [tile.encoded_bytes for tile in tiles]
        assert sizes[-1] < sizes[0]
