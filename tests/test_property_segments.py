"""Property tests: compressed segments never change query results.

The segment layer makes three promises.  Encodings are lossless —
``decode(encode(x))`` gives back the exact objects, bit patterns
included.  Zone maps are conservative — a segment is skipped (or a
scalar aggregate answered from its zone) only when the stored min/max
prove the result cannot differ, and DML tombstones immediately bar
zone answers until ``vacuum`` re-seals.  And encoding choice is
invisible — plain, dict, RLE and delta layouts return byte-identical
rows under any worker count, with zone maps on or off.  These tests
attack all three: random queries across forced layouts × parallelism ×
zone maps, deterministic seams (segment-boundary DELETE, vacuum
re-seal, dictionary-code filters with zero decodes), and the paper's
fig13 data-mining suite on segmented storage, single-node and sharded.
"""

from __future__ import annotations

import random
from contextlib import contextmanager

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.engine import (Database, Planner, PrimaryKey, bigint, floating,
                          integer, text)
from repro.engine import segments
from repro.engine.segments import (DeltaColumn, DictColumn, PlainColumn,
                                   RleColumn, SEGMENT_ROWS, encode_column)
from repro.engine.sql import parse_select
from repro.engine.types import DataType

settings.register_profile("repro-segments", deadline=None, max_examples=25)
settings.load_profile("repro-segments")

#: None lets every sealed column pick its own encoding.
LAYOUTS = ("plain", "dict", "rle", "delta", None)

#: Two sealed segments plus an append tail.
ROWS = SEGMENT_ROWS * 2 + 600

BANDS = ("u", "g", "r", "i", "z")


def _exact(rows) -> str:
    """A bit-faithful rendering (repr distinguishes 0.0 from -0.0)."""
    return repr(rows)


def _run(database: Database, sql: str, *, workers: int = 1,
         zone_maps: bool = True):
    planner = Planner(database, parallelism=workers, parallel_row_threshold=0,
                      enable_zone_maps=zone_maps)
    return planner.plan(parse_select(sql)).execute()


@contextmanager
def _forced(layout):
    previous = segments.FORCED_ENCODING
    segments.FORCED_ENCODING = layout
    try:
        yield
    finally:
        segments.FORCED_ENCODING = previous


def _build(layout, seed: int, rows: int = ROWS, *,
           with_pk: bool = True) -> Database:
    """A columnar obj table sealed under ``layout``.

    ``objid`` ascends (delta-friendly), ``run`` cycles every row
    (dict-friendly), ``band`` changes every 64 rows (RLE-friendly) and
    ``mag`` is seeded noise (stays plain) — the same seed always builds
    the same logical table whatever the physical layout.
    """
    rng = random.Random(seed)
    with _forced(layout):
        database = Database(f"seg-{layout}-{seed}")
        table = database.create_table("obj", [
            bigint("objid"), floating("mag"), integer("run"), text("band"),
        ], primary_key=PrimaryKey(["objid"]) if with_pk else None,
            storage="column")
        table.insert_many({"objid": index,
                           "mag": 14.0 + rng.random() * 10.0,
                           "run": index % 7,
                           "band": BANDS[(index // 64) % len(BANDS)]}
                          for index in range(rows))
    database.analyze()
    return database


def _boundary_delete(database: Database) -> int:
    """Tombstones hugging the first seal boundary plus segment 0's zone
    minimum; returns the number of rows deleted."""
    dead = {0, SEGMENT_ROWS - 1, SEGMENT_ROWS, SEGMENT_ROWS + 1,
            2 * SEGMENT_ROWS - 1}
    database.table("obj").delete_where(lambda row: row["objid"] in dead)
    return len(dead)


# ---------------------------------------------------------------------------
# Hypothesis: layouts × workers × zone maps are result-identical
# ---------------------------------------------------------------------------

QUERIES = [
    "select count(*) as n, min(objid) as lo, max(objid) as hi from obj",
    "select count(*) as n, sum(objid) as s, avg(objid) as a from obj",
    "select count(*) as n from obj where band = 'r'",
    "select count(*) as n, sum(mag) as s from obj "
    "where objid between 100 and 300",
    "select band, count(*) as n, max(mag) as m from obj group by band",
    "select top 9 objid, mag, band from obj where mag > 23.5",
    "select count(*) as n, min(band) as lo, max(band) as hi from obj "
    "where run < 5",
]


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(min_value=0, max_value=7),
       query_index=st.integers(min_value=0, max_value=63),
       layout=st.sampled_from(("dict", "rle", "delta", None)),
       with_dml=st.booleans())
def test_layouts_byte_identical(seed, query_index, layout, with_dml):
    sql = QUERIES[query_index % len(QUERIES)]
    plain = _build("plain", seed)
    other = _build(layout, seed)
    if with_dml:
        _boundary_delete(plain)
        _boundary_delete(other)
    want = _run(plain, sql, workers=1, zone_maps=False)
    for database in (plain, other):
        for workers in (1, 4):
            for zone_maps in (False, True):
                got = _run(database, sql, workers=workers,
                           zone_maps=zone_maps)
                context = (sql, database.name, workers, zone_maps)
                assert got.columns == want.columns, context
                assert _exact(got.rows) == _exact(want.rows), context


# ---------------------------------------------------------------------------
# Encodings: decode(encode(x)) == x, bit patterns included
# ---------------------------------------------------------------------------

ROUNDTRIP_BUFFERS = [
    (DataType.TEXT, ["star" if i % 3 else "galaxy" for i in range(1000)]),
    (DataType.INTEGER, [i // 100 for i in range(1200)]),          # long runs
    (DataType.BIGINT, list(range(5_000_000, 5_002_048))),         # monotone
    (DataType.FLOAT, [(-0.0 if i % 5 == 0 else i * 0.25)
                      for i in range(800)]),                       # -0.0 kept
    (DataType.INTEGER, [None if i % 7 == 0 else i % 4
                        for i in range(900)]),                     # NULLs
    (DataType.BIGINT, [2**60 + i * 3 for i in range(600)]),       # wide ints
]


@pytest.mark.parametrize("layout", LAYOUTS)
def test_encoding_roundtrip_identity(layout):
    with _forced(layout):
        for dtype, values in ROUNDTRIP_BUFFERS:
            encoded = encode_column(values, dtype)
            assert _exact(list(encoded.decode())) == _exact(list(values))
            for position in (0, 1, len(values) // 2, len(values) - 1):
                assert _exact(encoded.value_at(position)) == \
                    _exact(values[position])


def test_forced_encodings_produce_expected_classes():
    low_cardinality = ["a" if i % 2 else "b" for i in range(512)]
    runs = [i // 64 for i in range(512)]
    monotone = list(range(512))
    with _forced("dict"):
        assert isinstance(encode_column(low_cardinality, DataType.TEXT),
                          DictColumn)
    with _forced("rle"):
        assert isinstance(encode_column(runs, DataType.INTEGER), RleColumn)
    with _forced("delta"):
        assert isinstance(encode_column(monotone, DataType.BIGINT),
                          DeltaColumn)
    with _forced("plain"):
        assert isinstance(encode_column(runs, DataType.INTEGER), PlainColumn)
    # Ineligible buffers always fall back to plain rather than erroring.
    floats = [i * 0.5 for i in range(64)]
    for layout in ("delta",):
        with _forced(layout):
            assert isinstance(encode_column(floats, DataType.FLOAT),
                              PlainColumn)


def test_storage_statistics_report_compression():
    auto = _build(None, seed=2).table("obj").storage.storage_statistics()
    plain = _build("plain", seed=2).table("obj").storage.storage_statistics()
    assert auto["segments_sealed"] == plain["segments_sealed"] == 2
    assert auto["tail_rows"] == plain["tail_rows"] == 600
    assert plain["compression_ratio"] == 1.0
    assert auto["compression_ratio"] > 1.0
    assert auto["encoded_bytes"] < plain["encoded_bytes"]
    assert set(auto["encodings"]) <= {"plain", "dict", "rle", "delta"}


# ---------------------------------------------------------------------------
# Zone maps: skipping, zone-answered aggregates, dictionary-code filters
# ---------------------------------------------------------------------------

def test_zone_maps_skip_segments_for_selective_filters():
    # No primary key: the CBO must table-scan, so skipping is the only
    # way to avoid reading the segments the range cannot touch.
    database = _build(None, seed=4, with_pk=False)
    sql = ("select count(*) as n, sum(mag) as s from obj "
           "where objid between 100 and 300")
    off = _run(database, sql, zone_maps=False)
    on = _run(database, sql)
    assert _exact(on.rows) == _exact(off.rows)
    assert on.statistics.segments_skipped >= 1
    assert on.statistics.rows_scanned < off.statistics.rows_scanned
    assert off.statistics.segments_skipped == 0


def test_scalar_aggregates_answer_from_zone_maps():
    database = _build(None, seed=5)
    sql = ("select count(*) as n, min(objid) as lo, max(objid) as hi, "
           "sum(objid) as s, avg(objid) as a from obj")
    off = _run(database, sql, zone_maps=False)
    on = _run(database, sql)
    assert _exact(on.rows) == _exact(off.rows)
    # Both sealed segments were answered without scanning a row.
    assert on.statistics.segments_skipped == 2
    assert on.statistics.segments_scanned == 0
    assert on.statistics.rows_scanned == 600        # tail only


def test_dict_equality_filters_run_without_decoding():
    database = _build(None, seed=6)
    sql = "select count(*) as n from obj where band = 'r'"
    want = _run(database, sql, zone_maps=False)
    segments.DECODE_EVENTS = 0
    got = _run(database, sql)
    assert _exact(got.rows) == _exact(want.rows)
    assert segments.DECODE_EVENTS == 0


# ---------------------------------------------------------------------------
# Regression: segment-boundary DELETE, then vacuum re-seals the zones
# ---------------------------------------------------------------------------

def test_zone_maps_stay_correct_across_boundary_delete_and_vacuum():
    database = _build(None, seed=11)
    table = database.table("obj")
    scalar_sql = ("select count(*) as n, min(objid) as lo, "
                  "max(objid) as hi from obj")
    range_sql = ("select count(*) as n, sum(mag) as s from obj "
                 f"where objid between {SEGMENT_ROWS - 4} "
                 f"and {SEGMENT_ROWS + 4}")
    deleted = _boundary_delete(database)
    # The stale zones (built at seal) still claim objid 0 exists; the
    # tombstones must bar zone answers so the live minimum (1) wins.
    for sql in (scalar_sql, range_sql):
        off = _run(database, sql, zone_maps=False)
        on = _run(database, sql)
        assert _exact(on.rows) == _exact(off.rows), sql
    assert _run(database, scalar_sql).rows[0]["lo"] == 1
    # Vacuum compacts and re-seals: fresh segments, fresh zone maps.
    assert table.vacuum() == deleted
    stats = table.storage.storage_statistics()
    assert stats["sealed_rows"] + stats["tail_rows"] == ROWS - deleted
    for sql in (scalar_sql, range_sql):
        off = _run(database, sql, zone_maps=False)
        on = _run(database, sql)
        assert _exact(on.rows) == _exact(off.rows), sql
    # The rebuilt zones are trusted again: the scalar aggregate is
    # answered from every sealed segment without scanning it.
    result = _run(database, scalar_sql)
    assert result.statistics.segments_skipped == stats["segments"]
    assert result.statistics.segments_scanned == 0
    # Vacuum re-sealed both segments: the cumulative seal counter keeps
    # the original seals and adds the rebuilt ones.
    assert stats["segments_sealed"] == 2 * stats["segments"]


# ---------------------------------------------------------------------------
# Acceptance: the fig13 suite over segmented storage, single-node + sharded
# ---------------------------------------------------------------------------

def _assert_suites_identical(expected, actual):
    assert len(expected) == len(actual) >= 20
    for want, got in zip(expected, actual):
        assert got.query_id == want.query_id
        assert got.result.columns == want.result.columns, want.query_id
        assert _exact(got.result.rows) == _exact(want.result.rows), \
            want.query_id


@pytest.fixture(scope="module")
def segmented_skyserver(survey_output):
    from repro.loader import SkyServerLoader
    from repro.schema import create_skyserver_database
    from repro.skyserver import QueryLimits, SkyServer

    database = create_skyserver_database(with_indices=False)
    loader = SkyServerLoader(database, columnar=True)
    report = loader.load_pipeline_output(survey_output)
    assert report.succeeded, report.summary()
    return SkyServer(database, limits=QueryLimits.private())


@pytest.fixture(scope="module")
def sharded_segmented_skyserver(survey_output):
    from repro.loader import SkyServerLoader
    from repro.schema import create_skyserver_database
    from repro.skyserver import QueryLimits, SkyServer

    database = create_skyserver_database(with_indices=False)
    loader = SkyServerLoader(database, columnar=True, shards=4)
    report = loader.load_pipeline_output(survey_output)
    assert report.succeeded, report.summary()
    assert report.cluster is not None
    return SkyServer(database, limits=QueryLimits.private(),
                     cluster=report.cluster)


def test_fig13_zone_maps_byte_identical_single_node(segmented_skyserver):
    server = segmented_skyserver
    original = server.session.planner
    server.session.planner = Planner(server.database, enable_zone_maps=False)
    server.session.plan_cache.clear()
    try:
        baseline = server.run_all_data_mining_queries()
    finally:
        server.session.planner = original
        server.session.plan_cache.clear()
    with_zones = server.run_all_data_mining_queries()
    _assert_suites_identical(baseline, with_zones)
    storage = server.storage_statistics()
    assert storage["compression_ratio"] >= 1.0
    assert any(entry["segments_sealed"] > 0
               for entry in storage["tables"].values())
    assert storage["segments_scanned"] + storage["segments_skipped"] > 0


def test_fig13_sharded_segments_byte_identical(segmented_skyserver,
                                               sharded_segmented_skyserver):
    server = sharded_segmented_skyserver
    first = server.run_all_data_mining_queries()
    second = server.run_all_data_mining_queries()   # plan-cache pass
    _assert_suites_identical(first, second)
    # The merged storage report conserves every table's rows across the
    # four shards (at the test survey's density each shard stays below
    # one SEGMENT_ROWS seal, so the rows all sit in the append tails).
    sharded = server.storage_statistics()["tables"]
    single = segmented_skyserver.storage_statistics()["tables"]
    science = {"PhotoObj", "Neighbors", "Profile", "SpecObj"}
    assert science <= set(sharded) and science <= set(single)
    for name in set(sharded) & set(single):
        entry, want = sharded[name], single[name]
        assert (entry["sealed_rows"] + entry["tail_rows"]
                == want["sealed_rows"] + want["tail_rows"]), name


def test_sharded_scans_skip_segments_and_stay_identical():
    from repro.cluster import ClusterSession, ShardCluster
    from repro.engine import SqlSession

    rows = SEGMENT_ROWS * 9       # two sealed segments per shard
    single = _build(None, seed=13, rows=rows, with_pk=False)
    sharded = ShardCluster.from_database(
        _build(None, seed=13, rows=rows, with_pk=False), shards=4,
        columnar=True)
    reference = SqlSession(single)
    session = ClusterSession(sharded)
    for sql in QUERIES:
        expected = reference.query(sql)
        actual = session.query(sql)
        assert actual.columns == expected.columns, sql
        assert _exact(actual.rows) == _exact(expected.rows), sql
    modes = session.execution_mode_statistics()
    assert modes["segments_scanned"] + modes["segments_skipped"] > 0
    # The range query only touches one segment per shard; zone maps let
    # the other sealed segments go unread.
    assert modes["segments_skipped"] > 0
