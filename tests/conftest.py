"""Shared fixtures.

The expensive fixtures (synthetic survey, loaded database, running
SkyServer) are session-scoped: the survey is generated and loaded once
and the integration tests all read from it.  The generation uses a
reduced sky density so the whole suite stays fast; the planted
populations (the Query 1 cluster, the NEO pairs, the asteroids) do not
depend on the density, so every worked example still returns rows.
"""

from __future__ import annotations

import random

import pytest

from repro.engine import Database, PrimaryKey, bigint, floating, integer, text
from repro.loader import SkyServerLoader
from repro.pipeline import PlantedPopulations, SurveyConfig, SyntheticSurvey
from repro.schema import create_skyserver_database
from repro.skyserver import QueryLimits, SkyServer

#: Reduced sky density used by the test fixtures (objects per square degree).
TEST_DENSITY = 6000.0
TEST_SEED = 20020603       # SIGMOD 2002, June 3rd


@pytest.fixture(scope="session")
def survey_config() -> SurveyConfig:
    return SurveyConfig(scale=0.0005, seed=TEST_SEED,
                        density_per_sq_deg=TEST_DENSITY,
                        planted=PlantedPopulations())


@pytest.fixture(scope="session")
def survey_output(survey_config):
    """One synthetic survey generation, shared by the whole session."""
    return SyntheticSurvey(survey_config).run()


@pytest.fixture(scope="session")
def loaded_database(survey_output):
    """A SkyServer database with the survey loaded, indexed and validated."""
    database = create_skyserver_database(with_indices=False)
    loader = SkyServerLoader(database)
    report = loader.load_pipeline_output(survey_output)
    assert report.succeeded, report.summary()
    return database


@pytest.fixture(scope="session")
def skyserver(loaded_database):
    """A private (unlimited) SkyServer over the loaded database."""
    return SkyServer(loaded_database, limits=QueryLimits.private())


@pytest.fixture()
def empty_database():
    """A fresh, empty engine database for unit tests."""
    return Database("unit-test")


@pytest.fixture()
def toy_photo_database():
    """A tiny hand-built PhotoObj-like table for planner/executor unit tests."""
    database = Database("toy")
    table = database.create_table("PhotoObj", [
        bigint("objID"),
        integer("run"),
        integer("camcol"),
        integer("field"),
        text("type"),
        bigint("flags"),
        floating("ra"),
        floating("dec"),
        floating("rowv"),
        floating("colv"),
        floating("modelMag_r"),
    ], primary_key=PrimaryKey(["objID"]))
    rng = random.Random(7)
    rows = []
    for index in range(500):
        rows.append({
            "objID": index + 1,
            "run": 756 if index % 2 == 0 else 745,
            "camcol": index % 6 + 1,
            "field": 100 + index % 10,
            "type": "galaxy" if index % 3 == 0 else "star",
            "flags": rng.choice([0, 1, 2, 3, 7]),
            "ra": 180.0 + rng.random() * 10.0,
            "dec": -1.0 + rng.random() * 2.0,
            "rowv": rng.random() * 30.0,
            "colv": rng.random() * 30.0,
            "modelMag_r": 14.0 + rng.random() * 8.0,
        })
    table.insert_many(rows, database=database)
    table.create_index("ix_type", ["type"], included_columns=["modelMag_r"])
    table.create_index("ix_field", ["run", "camcol", "field"])
    return database
