"""Property tests: runtime join filters and DP ordering never change results.

The same random three-table data (an Obj spine, a Nbr arm with NULLable
join keys, and a Cat lookup) is queried under every planner
configuration the PR adds — greedy vs DPsize join enumeration, runtime
filters on vs off, serial vs 4-worker morsel-parallel — over both row
and column layouts, and single-node vs 1-shard vs 4-shard clusters.
Every combination must return repr-identical rows.  The generators
deliberately include NULL join keys (which never join, and which a
runtime filter must therefore be free to drop) and draws where the hash
build side is larger than the probe side.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.cluster import ClusterSession, ShardCluster
from repro.engine import (Database, Planner, PrimaryKey, SqlSession, bigint,
                          floating, integer)

THREE_SQL = ("select o.objid as a, n.nbrid as b, c.kind as k, o.mag as m "
             "from obj o, nbr n, cat c "
             "where o.objid = n.objid and n.nbrid = c.objid and o.mag < 20 "
             "order by a, b, k, m")

AGG_SQL = ("select count(*) as cnt, min(o.mag) as lo, max(n.dist) as hi "
           "from obj o, nbr n "
           "where o.objid = n.objid and o.mag < 21")

# Aggregate form of the three-table join: aggregates ride the batch
# pipeline (ORDER BY queries sort row-mode), so this is the shape where
# the probe scan actually carries a runtime filter.
THREE_AGG_SQL = ("select count(*) as cnt, sum(o.mag) as s "
                 "from obj o, nbr n, cat c "
                 "where o.objid = n.objid and n.nbrid = c.objid "
                 "and o.mag < 20")

# Co-partitionable on objid = objid (both tables placed by objid).
CLUSTER_SQL = ("select o.objid as a, n.nbrid as b, n.dist as d "
               "from obj o, nbr n where o.objid = n.objid and o.mag < 20 "
               "order by a, b, d")

AFFINITY = {"obj": "objid", "nbr": "objid"}


def _build_database(storage: str, obj_rows, nbr_rows, cat_rows) -> Database:
    database = Database(f"rtf-{storage}")
    obj = database.create_table("obj", [
        bigint("objid"), floating("mag"),
    ], primary_key=PrimaryKey(["objid"]), storage=storage)
    nbr = database.create_table("nbr", [
        bigint("objid", nullable=True), bigint("nbrid", nullable=True),
        floating("dist"),
    ], storage=storage)
    cat = database.create_table("cat", [
        bigint("objid"), integer("kind"),
    ], primary_key=PrimaryKey(["objid"]), storage=storage)
    obj.insert_many({"objid": objid, "mag": mag} for objid, mag in obj_rows)
    nbr.insert_many({"objid": objid, "nbrid": nbrid, "dist": dist}
                    for objid, nbrid, dist in nbr_rows)
    cat.insert_many({"objid": objid, "kind": kind} for objid, kind in cat_rows)
    database.analyze()
    return database


def _planners(database: Database) -> dict[str, Planner]:
    return {
        "greedy_rf_off": Planner(database, enable_runtime_filters=False),
        "greedy_rf_on": Planner(database),
        "dp_rf_on": Planner(database, enable_dp_joins=True),
        "dp_rf_off": Planner(database, enable_dp_joins=True,
                             enable_runtime_filters=False),
        "workers4_rf_on": Planner(database, parallelism=4,
                                  parallel_row_threshold=0),
    }


@st.composite
def survey(draw):
    # Sizes are drawn independently per table so either join side can be
    # the larger one — a build side bigger than its probe is a required
    # shape, not an accident.
    obj_ids = draw(st.lists(st.integers(min_value=0, max_value=400),
                            min_size=3, max_size=50, unique=True))
    obj_rows = [(objid,
                 draw(st.floats(min_value=14.0, max_value=24.0,
                                allow_nan=False, width=32)))
                for objid in obj_ids]
    key = st.one_of(st.none(), st.integers(min_value=0, max_value=400))
    nbr_rows = draw(st.lists(
        st.tuples(key, key,
                  st.floats(min_value=0.0, max_value=1.0,
                            allow_nan=False, width=32)),
        min_size=0, max_size=120))
    cat_ids = draw(st.lists(st.integers(min_value=0, max_value=400),
                            min_size=1, max_size=40, unique=True))
    cat_rows = [(objid, draw(st.integers(min_value=0, max_value=5)))
                for objid in cat_ids]
    return obj_rows, nbr_rows, cat_rows


@given(survey())
@settings(max_examples=15, deadline=None)
def test_single_node_configs_are_repr_identical(data):
    obj_rows, nbr_rows, cat_rows = data
    baseline: dict[str, str] = {}
    for storage in ("row", "column"):
        database = _build_database(storage, obj_rows, nbr_rows, cat_rows)
        for name, planner in _planners(database).items():
            session = SqlSession(database, planner=planner)
            for sql in (THREE_SQL, AGG_SQL, THREE_AGG_SQL):
                rendered = repr(session.query(sql).rows)
                if sql not in baseline:
                    baseline[sql] = rendered
                else:
                    assert rendered == baseline[sql], (storage, name, sql)


@given(survey())
@settings(max_examples=6, deadline=None)
def test_cluster_configs_are_repr_identical(data):
    obj_rows, nbr_rows, cat_rows = data
    baseline: dict[str, str] = {}
    for storage in ("row", "column"):
        single = _build_database(storage, obj_rows, nbr_rows, cat_rows)
        expected = repr(SqlSession(single).query(CLUSTER_SQL).rows)
        for shards in (1, 4):
            for runtime_filters in (True, False):
                cluster = ShardCluster.from_database(
                    _build_database(storage, obj_rows, nbr_rows, cat_rows),
                    shards=shards, affinity=AFFINITY)
                cluster.executor.enable_runtime_filters = runtime_filters
                session = ClusterSession(cluster)
                rendered = repr(session.query(CLUSTER_SQL).rows)
                assert rendered == expected, (storage, shards, runtime_filters)
        if CLUSTER_SQL not in baseline:
            baseline[CLUSTER_SQL] = expected
        else:
            assert expected == baseline[CLUSTER_SQL], storage


def test_runtime_filter_prunes_and_preserves_results():
    """A selective build side must actually prune the probe scan."""
    obj_rows = [(objid, 14.0 + (objid % 100) * 0.1)
                for objid in range(20000)]
    # The build side covers one narrow slice of objid space, so most of
    # the probe's sealed segments are out of the build-key range.
    nbr_rows = [(100 + index % 400, 100 + (index * 7) % 400,
                 index * 0.001) for index in range(500)]
    cat_rows = [(objid, objid % 5) for objid in range(0, 401)]
    database = _build_database("column", obj_rows, nbr_rows, cat_rows)
    results = {}
    for enabled in (True, False):
        # Index joins would win on obj's primary key here; force the
        # hash path so the probe is the 20k-row columnar scan the
        # runtime filter exists to prune.
        planner = Planner(database, enable_index_join=False,
                          enable_runtime_filters=enabled)
        session = SqlSession(database, planner=planner)
        result = session.query(THREE_AGG_SQL)
        results[enabled] = repr(result.rows)
        statistics = result.statistics
        if enabled:
            assert statistics.runtime_filter_segments_pruned > 0
        else:
            assert statistics.runtime_filter_segments_pruned == 0
            assert statistics.runtime_filter_rows_pruned == 0
    assert results[True] == results[False]


def test_build_larger_than_probe_stays_identical():
    """Filters stay sound when the hash build outweighs the probe."""
    obj_rows = [(objid, 15.0 + objid * 0.01) for objid in range(40)]
    nbr_rows = [(index % 50, (index * 3) % 50, index * 0.01)
                for index in range(600)]
    cat_rows = [(objid, objid % 3) for objid in range(50)]
    for sql in (THREE_SQL, THREE_AGG_SQL):
        rendered = set()
        for storage in ("row", "column"):
            database = _build_database(storage, obj_rows, nbr_rows, cat_rows)
            for planner in _planners(database).values():
                session = SqlSession(database, planner=planner)
                rendered.add(repr(session.query(sql).rows))
        assert len(rendered) == 1, sql


def test_dp_enumeration_is_used_and_agrees():
    """DPsize actually runs (dp_plans counter) and matches greedy."""
    obj_rows = [(objid, 15.0 + objid * 0.05) for objid in range(200)]
    nbr_rows = [(index % 200, (index * 11) % 200, index * 0.001)
                for index in range(300)]
    cat_rows = [(objid, objid % 4) for objid in range(200)]
    database = _build_database("column", obj_rows, nbr_rows, cat_rows)
    greedy = SqlSession(database, planner=Planner(database))
    dp_planner = Planner(database, enable_dp_joins=True)
    dp = SqlSession(database, planner=dp_planner)
    for sql in (THREE_SQL, AGG_SQL, THREE_AGG_SQL):
        assert repr(dp.query(sql).rows) == repr(greedy.query(sql).rows)
    assert dp_planner.dp_plans > 0
