"""Property suite: sharded execution ≡ single-node execution.

For random data, every cluster layout (1/2/4/7 shards × hash/zone
placement) must return *exactly* the rows — same values, same order —
the single-node engine returns, across filters, aggregates (including
order-sensitive float SUM/AVG), TOP-N with and without ORDER BY,
DISTINCT, and co-partitioned Neighbors joins (shard-local under hash
placement everywhere, and under zone placement through the derived
child routing).
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import ClusterSession, ShardCluster
from repro.engine import (Database, NULL, PrimaryKey, SqlSession, bigint,
                          floating, integer)

LAYOUTS = [(shards, partition)
           for shards in (1, 2, 4, 7)
           for partition in ("hash", "zone")]


def build_database(objects, neighbor_pairs) -> Database:
    """PhotoObj + Neighbors (the names drive the derived zone placement)."""
    database = Database("property-cluster")
    photo = database.create_table(
        "PhotoObj",
        [bigint("objID"), integer("type"), floating("dec"),
         floating("mag", nullable=True), integer("flags")],
        primary_key=PrimaryKey(["objID"]))
    neighbors = database.create_table(
        "Neighbors",
        [bigint("objID"), bigint("neighborObjID"), floating("distance")],
        primary_key=PrimaryKey(["objID", "neighborObjID"]))
    photo.insert_many(
        {"objID": objid, "type": type_, "dec": dec,
         "mag": NULL if mag is None else mag, "flags": flags}
        for objid, type_, dec, mag, flags in objects)
    neighbors.insert_many(
        {"objID": a, "neighborObjID": b, "distance": distance}
        for a, b, distance in neighbor_pairs)
    database.analyze()
    return database


def query_battery(threshold: float, top: int) -> list[str]:
    return [
        # filters (sargable + residual, NULL-aware)
        f"select objID, mag from PhotoObj where mag < {threshold}",
        f"select objID from PhotoObj where type = 1 and dec > {threshold - 20}",
        # aggregates: exact partials (count/min/max/int-sum) and
        # order-sensitive float SUM/AVG (the ordered-input gather)
        "select count(*) as n, min(mag) as lo, max(mag) as hi from PhotoObj",
        "select sum(type) as s, avg(type) as a from PhotoObj",
        f"select sum(mag) as s, avg(mag) as a from PhotoObj where dec < {threshold}",
        "select type, count(*) as n, avg(mag) as m from PhotoObj "
        "group by type order by n desc",
        # TOP-N with and without ORDER BY; DISTINCT union
        f"select top {top} objID from PhotoObj where type >= 1",
        f"select top {top} objID, mag from PhotoObj order by mag desc",
        "select distinct type from PhotoObj",
        f"select distinct flags from PhotoObj where dec > {threshold - 25}",
        # co-partitioned Neighbors joins (+ aggregation over the join)
        "select n.objID, n.neighborObjID, p.mag from Neighbors n "
        "join PhotoObj p on p.objID = n.objID where n.distance < 0.5",
        "select n.objID, count(*) as companions from Neighbors n "
        "join PhotoObj p on p.objID = n.objID where p.type >= 1 "
        "group by n.objID having count(*) >= 2 order by companions desc",
    ]


def assert_equivalent(database_rows, shards: int, partition: str,
                      queries) -> None:
    objects, neighbor_pairs = database_rows
    single = SqlSession(build_database(objects, neighbor_pairs))
    cluster = ShardCluster.from_database(
        build_database(objects, neighbor_pairs),
        shards=shards, partition=partition)
    session = ClusterSession(cluster)
    for sql in queries:
        expected = single.query(sql)
        actual = session.query(sql)
        assert actual.columns == expected.columns, sql
        assert actual.rows == expected.rows, (
            f"{shards} shards / {partition}: {sql}")


# -- data strategies --------------------------------------------------------

_mag = st.one_of(st.none(), st.floats(min_value=10.0, max_value=30.0,
                                      allow_nan=False))


@st.composite
def survey_rows(draw):
    count = draw(st.integers(min_value=5, max_value=60))
    objids = draw(st.lists(st.integers(min_value=1, max_value=10 ** 6),
                           min_size=count, max_size=count, unique=True))
    objects = []
    for objid in objids:
        objects.append((objid,
                        draw(st.integers(min_value=0, max_value=3)),
                        draw(st.floats(min_value=-40.0, max_value=40.0,
                                       allow_nan=False)),
                        draw(_mag),
                        draw(st.integers(min_value=0, max_value=7))))
    pair_count = draw(st.integers(min_value=0, max_value=40))
    pairs = set()
    neighbor_pairs = []
    for _ in range(pair_count):
        a = draw(st.sampled_from(objids))
        b = draw(st.sampled_from(objids))
        if a == b or (a, b) in pairs:
            continue
        pairs.add((a, b))
        neighbor_pairs.append(
            (a, b, draw(st.floats(min_value=0.0, max_value=1.0,
                                  allow_nan=False))))
    return objects, neighbor_pairs


# -- the exhaustive layout sweep on one deterministic dataset ---------------

@pytest.fixture(scope="module")
def fixed_dataset():
    import random

    rng = random.Random(2002)
    objids = rng.sample(range(1, 10 ** 6), 120)
    objects = [(objid, rng.randint(0, 3), rng.uniform(-40, 40),
                None if rng.random() < 0.05 else rng.uniform(10, 30),
                rng.randint(0, 7)) for objid in objids]
    pairs = set()
    while len(pairs) < 150:
        pairs.add(tuple(rng.sample(objids, 2)))
    neighbor_pairs = [(a, b, rng.uniform(0, 1)) for a, b in pairs]
    return objects, neighbor_pairs


@pytest.mark.parametrize("shards,partition", LAYOUTS)
def test_all_layouts_match_single_node(fixed_dataset, shards, partition):
    assert_equivalent(fixed_dataset, shards, partition,
                      query_battery(threshold=20.0, top=9))


def test_zone_neighbors_join_is_shard_local(fixed_dataset):
    """Derived placement keeps objID joins co-partitioned under zones."""
    objects, neighbor_pairs = fixed_dataset
    cluster = ShardCluster.from_database(build_database(objects, neighbor_pairs),
                                         shards=4, partition="zone")
    session = ClusterSession(cluster)
    session.query("select n.objID, p.mag from Neighbors n "
                  "join PhotoObj p on p.objID = n.objID")
    assert cluster.executor.copartitioned_queries == 1
    assert cluster.executor.fallback_queries == 0


# -- randomized data × layout × thresholds ----------------------------------

@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(rows=survey_rows(),
       layout=st.sampled_from(LAYOUTS),
       threshold=st.floats(min_value=12.0, max_value=28.0, allow_nan=False),
       top=st.integers(min_value=1, max_value=12))
def test_random_data_equivalence(rows, layout, threshold, top):
    shards, partition = layout
    assert_equivalent(rows, shards, partition, query_battery(threshold, top))
