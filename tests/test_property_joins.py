"""Property test: every join strategy returns the same rows.

Generates PhotoObj/SpecObj-shaped data and runs the same join query
under all three join strategies — index nested-loop, hash, and plain
nested-loop — forced via the planner flags (``enable_index_join`` /
``enable_hash_join``), over both row-oriented and column-oriented
storage (the latter exercises the vectorized batch hash join).  All six
plans must return identical multisets of rows.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.engine import Database, Planner, PrimaryKey, bigint, floating, integer
from repro.engine.explain import plan_operators
from repro.engine.sql import parse_select

JOIN_SQL = ("select p.objid, p.run, p.mag, s.z "
            "from photoobj p join specobj s on p.specid = s.specid "
            "where p.mag < 21 and s.z >= 0")

AGGREGATE_SQL = ("select count(*) as n, min(p.mag) as lo, max(s.z) as hi "
                 "from photoobj p join specobj s on p.specid = s.specid "
                 "where p.mag < 22")


def _build_database(storage: str, photo_rows, spec_rows) -> Database:
    database = Database(f"prop_{storage}")
    photo = database.create_table("photoobj", [
        bigint("objid"), integer("run"), bigint("specid"), floating("mag"),
    ], primary_key=PrimaryKey(["objid"]), storage=storage)
    spec = database.create_table("specobj", [
        bigint("specid"), floating("z"),
    ], primary_key=PrimaryKey(["specid"]), storage=storage)
    photo.insert_many([
        {"objid": index + 1, "run": run, "specid": specid, "mag": mag}
        for index, (run, specid, mag) in enumerate(photo_rows)
    ])
    spec.insert_many([{"specid": specid, "z": z} for specid, z in spec_rows])
    # The index the INL join probes (SpecObj is the smaller, outer side).
    photo.create_index("ix_photo_spec", ["specid"])
    database.analyze()
    return database


def _planners(database: Database) -> dict[str, Planner]:
    return {
        # Index joins beat hash on cost for these shapes (the probe is
        # a unique-key lookup), so leaving both on yields the INL plan.
        "index": Planner(database, enable_hash_join=False),
        "hash": Planner(database, enable_index_join=False),
        "nested": Planner(database, enable_index_join=False,
                          enable_hash_join=False),
    }


def _sorted_rows(result) -> list[tuple]:
    return sorted(tuple(sorted(row.items())) for row in result.rows)


@st.composite
def photo_and_spec(draw):
    spec_ids = draw(st.lists(st.integers(min_value=0, max_value=60),
                             min_size=5, max_size=40, unique=True))
    spec_rows = [(specid, draw(st.floats(min_value=0.0, max_value=0.5,
                                         allow_nan=False, width=32)))
                 for specid in spec_ids]
    photo_rows = draw(st.lists(
        st.tuples(st.integers(min_value=700, max_value=760),
                  st.integers(min_value=0, max_value=80),
                  st.floats(min_value=14.0, max_value=24.0,
                            allow_nan=False, width=32)),
        min_size=25, max_size=120))
    return photo_rows, spec_rows


@given(photo_and_spec())
@settings(max_examples=25, deadline=None)
def test_all_join_strategies_agree(data):
    photo_rows, spec_rows = data
    baseline = None
    for storage in ("row", "column"):
        database = _build_database(storage, photo_rows, spec_rows)
        for strategy, planner in _planners(database).items():
            for sql in (JOIN_SQL, AGGREGATE_SQL):
                plan = planner.plan(parse_select(sql))
                rows = _sorted_rows(plan.execute())
                key = sql
                if baseline is None or key not in baseline:
                    baseline = baseline or {}
                    baseline[key] = rows
                else:
                    assert rows == baseline[key], (storage, strategy, sql)


def test_forced_strategies_produce_the_expected_operators():
    photo_rows = [(756, index % 20, 15.0 + index * 0.1) for index in range(40)]
    spec_rows = [(index, 0.01 * index) for index in range(20)]
    database = _build_database("row", photo_rows, spec_rows)
    planners = _planners(database)
    assert "Index Nested Loop Join" in plan_operators(
        planners["index"].plan(parse_select(JOIN_SQL)))
    assert "Hash Join" in plan_operators(
        planners["hash"].plan(parse_select(JOIN_SQL)))
    assert "Nested Loop Join" in plan_operators(
        planners["nested"].plan(parse_select(JOIN_SQL)))


def test_column_store_hash_plan_batches():
    photo_rows = [(756, index % 20, 15.0 + index * 0.05) for index in range(80)]
    spec_rows = [(index, 0.01 * index) for index in range(20)]
    database = _build_database("column", photo_rows, spec_rows)
    plan = Planner(database, enable_index_join=False).plan(
        parse_select(AGGREGATE_SQL))
    assert "Batch Hash Join" in plan_operators(plan)
    result = plan.execute()
    assert result.statistics.batches_processed > 0
