"""Planner and executor tests: access paths, joins, views, aggregation."""

import pytest

from repro.engine import PrimaryKey, View, bigint, floating, integer
from repro.engine.explain import plan_operators
from repro.engine.sql import SqlSession, parse_expression


@pytest.fixture()
def session(toy_photo_database):
    return SqlSession(toy_photo_database)


class TestAccessPaths:
    def test_primary_key_equality_uses_index_seek(self, session, toy_photo_database):
        plan = session.plan("select ra from PhotoObj where objID = 42")
        assert "Index Seek" in plan_operators(plan)
        result = plan.execute()
        assert len(result.rows) == 1

    def test_unindexed_predicate_uses_table_scan(self, session):
        plan = session.plan("select objID from PhotoObj where rowv > 20")
        assert "Table Scan" in plan_operators(plan)

    def test_covering_index_used_when_columns_covered(self, session):
        plan = session.plan("select type, modelMag_r from PhotoObj where modelMag_r < 15 and type = type")
        # All referenced columns (type, modelMag_r, objID) are covered by ix_type.
        labels = plan_operators(plan)
        assert "Covering Index Scan" in labels or "Index Seek" in labels

    def test_index_seek_on_composite_prefix(self, session):
        plan = session.plan("select objID from PhotoObj where run = 756 and camcol = 3")
        assert "Index Seek" in plan_operators(plan)
        rows = plan.execute().rows
        assert rows and all(True for _ in rows)

    def test_scan_results_match_seek_results(self, session, toy_photo_database):
        seek = session.query("select objID from PhotoObj where run = 756 and camcol = 3 order by objID")
        toy_photo_database.table("PhotoObj").drop_index("ix_field")
        scan = session.query("select objID from PhotoObj where run = 756 and camcol = 3 order by objID")
        assert seek.rows == scan.rows
        toy_photo_database.table("PhotoObj").create_index("ix_field", ["run", "camcol", "field"])


class TestViews:
    def test_view_folds_to_base_table(self, toy_photo_database):
        toy_photo_database.create_view(
            View("GalaxyView", "PhotoObj", parse_expression("type = 'galaxy'")))
        session = SqlSession(toy_photo_database)
        result = session.query("select count(*) as n from GalaxyView")
        direct = session.query("select count(*) as n from PhotoObj where type = 'galaxy'")
        assert result.scalar() == direct.scalar()

    def test_nested_views(self, toy_photo_database):
        toy_photo_database.create_view(
            View("BrightView", "PhotoObj", parse_expression("modelMag_r < 18")), replace=True)
        toy_photo_database.create_view(
            View("BrightGalaxies", "BrightView", parse_expression("type = 'galaxy'")))
        session = SqlSession(toy_photo_database)
        combined = session.query("select count(*) as n from BrightGalaxies").scalar()
        manual = session.query(
            "select count(*) as n from PhotoObj where modelMag_r < 18 and type = 'galaxy'").scalar()
        assert combined == manual


class TestJoins:
    @pytest.fixture()
    def spectro_database(self, toy_photo_database):
        table = toy_photo_database.create_table("SpecObj", [
            bigint("specObjID"), bigint("objID"), floating("z"), integer("specClass"),
        ], primary_key=PrimaryKey(["specObjID"]))
        rows = [{"specObjID": 1000 + i, "objID": i * 5 + 1, "z": 0.02 * i, "specClass": 2}
                for i in range(40)]
        table.insert_many(rows, database=toy_photo_database)
        table.create_index("ix_obj", ["objID"])
        return toy_photo_database

    def test_equality_join_uses_index_nested_loop(self, spectro_database):
        session = SqlSession(spectro_database)
        plan = session.plan(
            "select p.objID, s.z from SpecObj s join PhotoObj p on p.objID = s.objID")
        assert "Index Nested Loop Join" in plan_operators(plan)
        result = plan.execute()
        assert len(result.rows) == 40

    def test_join_results_are_correct(self, spectro_database):
        session = SqlSession(spectro_database)
        result = session.query(
            "select p.objID, s.z from SpecObj s join PhotoObj p on p.objID = s.objID "
            "where s.z > 0.5 order by s.z")
        assert all(row["z"] > 0.5 for row in result.rows)
        assert [row["z"] for row in result.rows] == sorted(row["z"] for row in result.rows)

    def test_comma_join_with_where(self, spectro_database):
        session = SqlSession(spectro_database)
        result = session.query(
            "select p.objID from PhotoObj p, SpecObj s where p.objID = s.objID and s.z < 0.1")
        assert len(result.rows) == 5

    def test_self_join(self, spectro_database):
        session = SqlSession(spectro_database)
        result = session.query("""
            select a.objID as a_id, b.objID as b_id
            from PhotoObj a join PhotoObj b on b.run = a.run and b.camcol = a.camcol
            where a.objID = 1 and b.objID <> 1 and b.field = a.field
        """)
        assert all(row["a_id"] == 1 and row["b_id"] != 1 for row in result.rows)

    def test_cross_join_without_condition(self, spectro_database):
        session = SqlSession(spectro_database)
        result = session.query(
            "select count(*) as n from SpecObj a, SpecObj b where a.specObjID = 1000 and b.specObjID = 1001")
        assert result.scalar() == 1

    def test_three_way_join(self, spectro_database):
        table = spectro_database.create_table("SpecLine", [
            bigint("lineID"), bigint("specObjID"), floating("ew"),
        ], primary_key=PrimaryKey(["lineID"]))
        table.insert_many([{"lineID": i, "specObjID": 1000 + i % 40, "ew": float(i)}
                           for i in range(120)], database=spectro_database)
        table.create_index("ix_spec", ["specObjID"])
        session = SqlSession(spectro_database)
        result = session.query("""
            select p.objID, l.ew
            from PhotoObj p
            join SpecObj s on s.objID = p.objID
            join SpecLine l on l.specObjID = s.specObjID
            where l.ew > 100
        """)
        assert len(result.rows) == 19
        assert all(row["ew"] > 100 for row in result.rows)


class TestAggregationAndOrdering:
    def test_count_star(self, session):
        assert session.query("select count(*) as n from PhotoObj").scalar() == 500

    def test_group_by_with_having(self, session):
        result = session.query(
            "select type, count(*) as n, avg(modelMag_r) as meanmag from PhotoObj "
            "group by type having count(*) > 10 order by n desc")
        assert len(result.rows) == 2
        assert result.rows[0]["n"] >= result.rows[1]["n"]

    def test_min_max_sum(self, session):
        result = session.query(
            "select min(modelMag_r) as lo, max(modelMag_r) as hi, sum(modelMag_r) as total from PhotoObj")
        row = result.rows[0]
        assert row["lo"] <= row["hi"]
        assert row["total"] == pytest.approx(row["lo"] * 0 + row["total"])

    def test_group_by_expression(self, session):
        result = session.query(
            "select round(modelMag_r, 0) as bin, count(*) as n from PhotoObj "
            "group by round(modelMag_r, 0) order by bin")
        assert sum(row["n"] for row in result.rows) == 500

    def test_aggregate_over_empty_input(self, session):
        result = session.query("select count(*) as n from PhotoObj where modelMag_r > 999")
        assert result.scalar() == 0

    def test_order_by_alias(self, session):
        result = session.query(
            "select objID, rowv*rowv + colv*colv as speed2 from PhotoObj order by speed2 desc")
        speeds = [row["speed2"] for row in result.rows]
        assert speeds == sorted(speeds, reverse=True)

    def test_top_limits_rows(self, session):
        result = session.query("select top 7 objID from PhotoObj order by objID")
        assert len(result.rows) == 7

    def test_distinct(self, session):
        result = session.query("select distinct type from PhotoObj")
        assert sorted(row["type"] for row in result.rows) == ["galaxy", "star"]

    def test_select_into_then_requery(self, session, toy_photo_database):
        session.query("select objID, type into ##subset from PhotoObj where modelMag_r < 16")
        count = session.query("select count(*) as n from ##subset").scalar()
        assert count == toy_photo_database.table("##subset").row_count

    def test_scalar_select_without_from(self, session):
        assert session.query("select 6 * 7 as answer").scalar() == 42

    def test_execution_statistics_populated(self, session):
        result = session.query("select count(*) as n from PhotoObj where modelMag_r > 0")
        assert result.statistics.rows_scanned == 500
        assert result.statistics.bytes_scanned > 0
        assert result.statistics.elapsed_seconds >= 0.0
