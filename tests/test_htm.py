"""Unit tests for the Hierarchical Triangular Mesh package."""

import math

import pytest

from repro import htm


class TestVectors:
    def test_radec_roundtrip(self):
        for ra, dec in [(0.0, 0.0), (185.0, -0.5), (359.9, 89.0), (42.0, -42.0)]:
            vector = htm.radec_to_unit(ra, dec)
            back_ra, back_dec = htm.unit_to_radec(vector)
            assert back_ra == pytest.approx(ra, abs=1e-9)
            assert back_dec == pytest.approx(dec, abs=1e-9)

    def test_unit_vector_is_normalised(self):
        x, y, z = htm.radec_to_unit(123.4, 56.7)
        assert x * x + y * y + z * z == pytest.approx(1.0)

    def test_angular_distance_quarter_circle(self):
        assert htm.angular_distance((1, 0, 0), (0, 1, 0)) == pytest.approx(90.0)

    def test_angular_distance_small_angles_accurate(self):
        a = htm.radec_to_unit(185.0, -0.5)
        b = htm.radec_to_unit(185.0, -0.5 + 1.0 / 3600.0)   # one arcsecond
        assert htm.angular_distance(a, b) * 3600.0 == pytest.approx(1.0, rel=1e-6)

    def test_arcmin_between(self):
        assert htm.arcmin_between(185.0, 0.0, 185.0, 0.5) == pytest.approx(30.0, rel=1e-9)

    def test_normalize_zero_vector_raises(self):
        with pytest.raises(ValueError):
            htm.normalize((0.0, 0.0, 0.0))


class TestTrixels:
    def test_eight_roots_cover_the_sphere(self):
        total_area = sum(trixel.area_steradians() for trixel in htm.root_trixels())
        assert total_area == pytest.approx(4.0 * math.pi, rel=1e-9)

    def test_children_partition_parent_area(self):
        parent = next(htm.root_trixels())
        child_area = sum(child.area_steradians() for child in parent.children())
        assert child_area == pytest.approx(parent.area_steradians(), rel=1e-9)

    def test_child_ids_extend_parent_id(self):
        parent = next(htm.root_trixels())
        for index, child in enumerate(parent.children()):
            assert child.htm_id == (parent.htm_id << 2) | index
            assert htm.htm_level(child.htm_id) == 1

    def test_name_roundtrip(self):
        htm_id = htm.lookup_id(185.0, -0.5, 8)
        name = htm.htm_id_to_name(htm_id)
        assert htm.htm_name_to_id(name) == htm_id

    def test_invalid_ids_rejected(self):
        with pytest.raises(ValueError):
            htm.htm_level(5)
        with pytest.raises(ValueError):
            htm.htm_level(16)       # odd bit length

    def test_level_encoding(self):
        assert htm.htm_level(8) == 0
        assert htm.htm_level(8 << 2) == 1
        assert htm.htm_level(15 << 40) == 20


class TestLookup:
    def test_lookup_id_contained_in_returned_trixel(self):
        for ra, dec in [(185.0, -0.5), (0.1, 0.1), (270.0, 45.0), (90.0, -60.0)]:
            htm_id = htm.lookup_id(ra, dec, 10)
            trixel = htm.trixel(htm_id)
            assert trixel.contains(htm.radec_to_unit(ra, dec))

    def test_lookup_depth_controls_level(self):
        assert htm.htm_level(htm.lookup_id(10.0, 10.0, 6)) == 6
        assert htm.htm_level(htm.lookup_id(10.0, 10.0, 20)) == 20

    def test_deeper_lookup_is_descendant_of_shallower(self):
        shallow = htm.lookup_id(185.0, -0.5, 8)
        deep = htm.lookup_id(185.0, -0.5, 14)
        assert htm.parent_id(deep, 6) == shallow

    def test_id_range_at_depth_nesting(self):
        htm_id = htm.lookup_id(185.0, -0.5, 8)
        low, high = htm.id_range_at_depth(htm_id, 20)
        deep = htm.lookup_id(185.0, -0.5, 20)
        assert low <= deep <= high

    def test_id_range_shallower_than_id_rejected(self):
        htm_id = htm.lookup_id(185.0, -0.5, 8)
        with pytest.raises(ValueError):
            htm.id_range_at_depth(htm_id, 4)

    def test_triangle_side_shrinks_with_depth(self):
        assert htm.triangle_side_arcsec(20) < 1.0
        assert htm.triangle_side_arcsec(6) > htm.triangle_side_arcsec(10)

    def test_poles_and_equator_resolve(self):
        for ra, dec in [(0, 90), (0, -90), (180, 0), (0, 0)]:
            assert htm.htm_level(htm.lookup_id(ra, dec, 12)) == 12


class TestCovers:
    def test_circle_cover_contains_center(self):
        ranges = htm.cover_circle(185.0, -0.5, 1.0)
        center_id = htm.lookup_id(185.0, -0.5)
        assert htm.ranges_contain(ranges, center_id)

    def test_circle_cover_contains_all_interior_points(self):
        import random

        rng = random.Random(11)
        ranges = htm.cover_circle(185.0, -0.5, 2.0)
        for _ in range(200):
            d_ra = rng.uniform(-2 / 60, 2 / 60)
            d_dec = rng.uniform(-2 / 60, 2 / 60)
            ra, dec = 185.0 + d_ra, -0.5 + d_dec
            if htm.arcmin_between(185.0, -0.5, ra, dec) <= 2.0:
                assert htm.ranges_contain(ranges, htm.lookup_id(ra, dec))

    def test_far_away_points_not_covered(self):
        ranges = htm.cover_circle(185.0, -0.5, 1.0)
        assert not htm.ranges_contain(ranges, htm.lookup_id(10.0, 60.0))

    def test_ranges_are_sorted_and_disjoint(self):
        ranges = htm.cover_circle(185.0, -0.5, 5.0)
        for first, second in zip(ranges, ranges[1:]):
            assert first.high < second.low

    def test_smaller_radius_gives_no_larger_cover(self):
        small = htm.cover_circle(185.0, -0.5, 0.5, cover_depth=10)
        large = htm.cover_circle(185.0, -0.5, 5.0, cover_depth=10)
        area_small = sum(r.high - r.low + 1 for r in small)
        area_large = sum(r.high - r.low + 1 for r in large)
        assert area_small <= area_large

    def test_rectangle_region_contains(self):
        region = htm.RectangleEq(184.0, 186.0, -1.0, 0.0)
        assert region.contains_radec(185.0, -0.5)
        assert not region.contains_radec(190.0, -0.5)

    def test_rectangle_wrap_around_zero_ra(self):
        region = htm.RectangleEq(359.0, 1.0, -1.0, 1.0)
        assert region.contains_radec(0.5, 0.0)
        assert region.contains_radec(359.5, 0.0)
        assert not region.contains_radec(180.0, 0.0)

    def test_polygon_region(self):
        polygon = htm.Polygon(((184.5, -1.0), (185.5, -1.0), (185.5, 0.0), (184.5, 0.0)))
        assert polygon.contains_radec(185.0, -0.5)
        assert not polygon.contains_radec(183.0, -0.5)

    def test_polygon_cover_contains_interior(self):
        polygon = htm.Polygon(((184.8, -0.7), (185.2, -0.7), (185.2, -0.3), (184.8, -0.3)))
        ranges = htm.cover(polygon, cover_depth=9)
        assert htm.ranges_contain(ranges, htm.lookup_id(185.0, -0.5))

    def test_halfspace_hemisphere(self):
        hemisphere = htm.Halfspace((0.0, 0.0, 1.0), 0.0)
        assert hemisphere.contains(htm.radec_to_unit(10.0, 45.0))
        assert not hemisphere.contains(htm.radec_to_unit(10.0, -45.0))

    def test_merge_ranges(self):
        merged = htm.merge_ranges([htm.HtmRange(10, 20), htm.HtmRange(21, 30),
                                   htm.HtmRange(50, 60), htm.HtmRange(55, 58)])
        assert merged == [htm.HtmRange(10, 30), htm.HtmRange(50, 60)]

    def test_depth_for_radius_monotone(self):
        assert htm.depth_for_radius(0.5) >= htm.depth_for_radius(30.0)
