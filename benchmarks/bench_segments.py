"""Compressed segments: zone-map skipping and encoding-aware execution.

Section 7 of "When Database Systems Meet the Grid" explains why the
20 data-mining queries stay interactive: most of them touch a narrow
slice of the sky, and the server only reads the stripes that slice
lives in.  PR 7 gives the columnar engine the storage-level version of
that observation — fixed-size sealed segments carrying per-column
encodings and zone maps — and this benchmark gates the three wins:

* **zone-map speedup** — a selective filter+aggregate over >= 100k
  rows must run >= 2x faster with zone maps than without, on the same
  simulated-disk model used by ``bench_parallel.py``/``bench_cluster``:
  a skipped segment is never read, so its bytes are never charged.
* **encoding-aware execution** — an equality filter over a
  dictionary-encoded column must run *without decoding a single
  segment* (the predicate is evaluated once per dictionary, then
  answered from the codes), returning rows byte-identical to a
  forced-plain layout of the same table.
* **compression** — dictionary/RLE-eligible columns (the snowflake
  arms' low-cardinality flags, classifications and band labels) must
  seal at >= 3x below their uncompressed in-memory size.

Every configuration must return byte-identical rows.
"""

from __future__ import annotations

import random
import time

from conftest import print_report
from repro.bench import ExperimentReport
from repro.engine import (Database, Planner, SqlSession, bigint, floating,
                          integer, text)
from repro.engine import segments

SCAN_ROWS = 100_000
#: Modelled sequential-scan bandwidth (same role as bench_parallel's):
#: both configurations pay the same rate per byte actually read, so the
#: zone-map win is exactly the segments that were never read.
SCAN_MBPS = 8.0

#: A narrow slice of a 100k-row monotone key: all but one or two
#: segments are provably out of range and skippable.
SELECTIVE_SQL = ("select count(*) as n, sum(mag) as s, min(mag) as lo, "
                 "max(mag) as hi from photoobj "
                 "where objid between 40000 and 40400")

DICT_FILTER_SQL = "select count(*) as n from photoobj where band = 'r'"


def _bench_database(forced_encoding=None) -> Database:
    """100k-row PhotoObj-shaped columnar table, no indexes (the gate
    measures the scan layer, not the B-tree)."""
    rng = random.Random(2002)
    previous = segments.FORCED_ENCODING
    segments.FORCED_ENCODING = forced_encoding
    try:
        database = Database(f"bench_segments-{forced_encoding}")
        photoobj = database.create_table("photoobj", [
            bigint("objid"), floating("ra"), floating("mag"),
            integer("run"), text("band"),
        ], storage="column")
        photoobj.insert_many(
            {"objid": index,
             "ra": rng.uniform(150.0, 250.0),
             "mag": rng.uniform(14.0, 24.0),
             "run": index % 6,
             "band": "ugriz"[(index // 64) % 5]}
            for index in range(SCAN_ROWS))
    finally:
        segments.FORCED_ENCODING = previous
    database.analyze()
    return database


def _session(database: Database, *, zone_maps: bool) -> SqlSession:
    planner = Planner(database, enable_zone_maps=zone_maps,
                      simulated_scan_mbps=SCAN_MBPS)
    return SqlSession(database, planner=planner)


def _timed_query(session: SqlSession, sql: str, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = session.query(sql)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_zone_map_skipping_speedup_gate():
    """>= 2x: zone maps vs full scan on a selective filter+aggregate."""
    database = _bench_database()
    off_seconds, off = _timed_query(_session(database, zone_maps=False),
                                    SELECTIVE_SQL)
    on_seconds, on = _timed_query(_session(database, zone_maps=True),
                                  SELECTIVE_SQL)
    assert repr(on.rows) == repr(off.rows)
    assert on.statistics.segments_skipped > 0
    assert off.statistics.segments_skipped == 0
    speedup = off_seconds / on_seconds
    total = on.statistics.segments_scanned + on.statistics.segments_skipped

    report = ExperimentReport(
        "Zone-map segment skipping — selective filter+aggregate",
        f"{SCAN_ROWS}-row PhotoObj, 401-row objid slice, COUNT/SUM/MIN/"
        f"MAX on a {SCAN_MBPS:g} MB/s scan disk (§7's stripe locality "
        "at segment granularity: out-of-range segments are never read).")
    report.add("full-scan elapsed", "", round(off_seconds, 4), unit="s")
    report.add("zone-map elapsed", "", round(on_seconds, 4), unit="s")
    report.add("segments skipped",
               "most", f"{on.statistics.segments_skipped}/{total}")
    report.add("speedup", ">= 2x", f"{speedup:.1f}x")
    report.add("results identical", "yes",
               "yes" if repr(on.rows) == repr(off.rows) else "NO")
    print_report(report)

    assert speedup >= 2.0, f"zone maps only {speedup:.2f}x over full scan"


def test_encoding_aware_execution_gate():
    """Dictionary-code filters decode nothing and match plain layouts."""
    plain = _session(_bench_database("plain"), zone_maps=True)
    auto = _session(_bench_database(), zone_maps=True)
    expected = plain.query(DICT_FILTER_SQL)

    segments.DECODE_EVENTS = 0
    got = auto.query(DICT_FILTER_SQL)
    decodes = segments.DECODE_EVENTS

    report = ExperimentReport(
        "Encoding-aware execution — equality filter on a dict column",
        "COUNT over band='r' on the auto-encoded store: the predicate "
        "runs once per segment dictionary and the match is read off "
        "the codes, so no segment is ever decoded.")
    report.add("segment decodes", "0", decodes)
    report.add("identical to forced-plain layout", "yes",
               "yes" if repr(got.rows) == repr(expected.rows) else "NO")
    print_report(report)

    assert repr(got.rows) == repr(expected.rows)
    assert decodes == 0, f"dict filter decoded {decodes} segment columns"


def test_compression_ratio_gate():
    """>= 3x on dictionary/RLE-eligible (low-cardinality) columns."""
    rng = random.Random(7)
    database = Database("bench_segments-compression")
    # The snowflake arms' shape: classifications, flags and band labels
    # — low cardinality throughout, often in long runs.
    arm = database.create_table("photoflags", [
        bigint("objid"), text("classification"), text("band"),
        integer("status"), integer("field"),
    ], storage="column")
    arm.insert_many(
        {"objid": index,
         "classification": "galaxy" if rng.random() < 0.3 else "star",
         "band": "ugriz"[(index // 96) % 5],
         "status": rng.randrange(4),
         "field": index // 256}
        for index in range(SCAN_ROWS))
    stats = arm.storage.storage_statistics()
    ratio = stats["compression_ratio"]

    report = ExperimentReport(
        "Segment compression — dict/RLE-eligible snowflake-arm columns",
        f"{SCAN_ROWS}-row flags/classification table: encoded size of "
        "the sealed segments vs the uncompressed in-memory cost model.")
    report.add("logical bytes", "", stats["logical_bytes"])
    report.add("encoded bytes", "", stats["encoded_bytes"])
    report.add("encodings", "dict/rle/delta",
               str(dict(sorted(stats["encodings"].items()))))
    report.add("compression ratio", ">= 3x", f"{ratio:.2f}x")
    print_report(report)

    assert stats["segments"] > 0
    assert ratio >= 3.0, f"compression only {ratio:.2f}x"
