"""Figure 15 and §12: sequential-scan bandwidth versus disk configuration.

The paper's measured curve rises at ~40 MB/s per disk, bends where a
controller saturates (≈119 MB/s at three disks), and flattens at the
SQL record-processing ceiling (≈331 MB/s, 75% CPU, at nine disks); raw
NTFS reaches 430 MB/s and memory ~600 MB/s.  The analytic component
model reproduces those knees; the reproduction's own engine scan rate
is reported alongside in the same units.
"""

from __future__ import annotations

import pytest

from conftest import print_report
from repro.bench import ExperimentReport, ascii_series
from repro.iosim import (IN_MEMORY_RECORDS_PER_SECOND, ServerHardware,
                         SQL_COUNT_MAX_MBPS, figure15_configurations,
                         figure15_table, measure_engine_scan, saturation_points,
                         sweep_figure15)

#: Figure 15's measured curve (MB/s), read off the published chart.
PAPER_CURVE = {
    "1disk": 40, "2disk": 80, "3disk": 119, "4disk": 160, "5disk": 199,
    "6disk": 238, "7disk": 270, "8disk": 300, "9disk": 331, "10disk": 331,
    "11disk": 331, "12disk": 331, "12disk 2vol": 331,
}


def test_figure15_bandwidth_sweep(benchmark):
    predictions = benchmark.pedantic(sweep_figure15, rounds=10, iterations=1)

    report = ExperimentReport(
        "Figure 15 — MB/s versus disk configuration (analytic model)",
        "One controller per three disks, two PCI buses, SQL CPU ceiling at 331 MB/s.")
    for prediction in predictions:
        label = prediction.configuration.label
        report.add(f"{label} throughput", PAPER_CURVE.get(label), round(prediction.achieved_mbps),
                   unit="MB/s", note=f"bottleneck: {prediction.bottleneck}")
    annotations = saturation_points(ServerHardware(), figure15_configurations())
    report.add("controller saturates at", 3, annotations.one_controller_saturates_at_disks,
               unit="disks")
    report.add("SQL CPU saturates at", 9, annotations.sql_cpu_saturates_at_disks, unit="disks")
    print_report(report)

    print(figure15_table(predictions))
    print()
    print(ascii_series([p.configuration.label for p in predictions],
                       [p.achieved_mbps for p in predictions],
                       log_scale=False, title="predicted MB/s"))

    # The published knees.
    by_label = {p.configuration.label: p for p in predictions}
    assert by_label["1disk"].achieved_mbps == pytest.approx(40, abs=5)
    assert by_label["3disk"].achieved_mbps == pytest.approx(119, abs=10)
    assert by_label["9disk"].achieved_mbps == pytest.approx(SQL_COUNT_MAX_MBPS, abs=10)
    assert by_label["12disk"].achieved_mbps == pytest.approx(331, abs=10)
    # Within 20% of the published curve everywhere.
    for label, paper_value in PAPER_CURVE.items():
        assert abs(by_label[label].achieved_mbps - paper_value) / paper_value < 0.20


def test_figure15_engine_scan_measured(benchmark, bench_database):
    measurement = benchmark.pedantic(
        measure_engine_scan, args=(bench_database, "PhotoObj"), rounds=3, iterations=1)

    report = ExperimentReport(
        "§12 — the reproduction engine's own sequential-scan rate",
        "A Python expression evaluator over an in-memory row store, converted to the "
        "same units as the paper's 2.6M records/s / 331 MB/s SQL Server figures.")
    report.add("records per second", 2.6e6, round(measurement.rows_per_second),
               note="paper: 128-byte tag records; reproduction: ~1.5 KB PhotoObj rows")
    report.add("in-memory records per second", IN_MEMORY_RECORDS_PER_SECOND,
               round(measurement.rows_per_second), note="paper's warm-cache figure is 5M rps")
    report.add("MB per second", SQL_COUNT_MAX_MBPS, round(measurement.mbps, 1), unit="MB/s")
    print_report(report)

    assert measurement.rows == bench_database.table("PhotoObj").row_count
    assert measurement.rows_per_second > 1000


def test_section12_predicate_scan_is_cpu_bound(benchmark, bench_database):
    """The paper's `count(*) where (r-g) > 1` scan: CPU-bound, slower than count(*)."""
    from repro.engine import SqlSession

    session = SqlSession(bench_database)

    def predicate_scan():
        return session.query(
            "select count(*) as n from PhotoObj where (modelMag_r - modelMag_g) > 1").scalar()

    count = benchmark.pedantic(predicate_scan, rounds=3, iterations=1)
    assert count >= 0
