"""§3 / §9.1.1 ablation: the pre-computed Neighbors table vs on-the-fly cone searches.

"We circumvented a limitation in SQL Server by pre-computing the
neighbors of each object.  Even without being forced to do it, we might
have created this materialized view to speed queries."  The ablation
answers the gravitational-lens proximity query both ways: reading the
materialised Neighbors table, and running one HTM cone search per
object.
"""

from __future__ import annotations

import pytest

from conftest import print_report
from repro.bench import ExperimentReport, measure
from repro.engine import SqlSession
from repro.skyserver.spatial import get_nearby_objects

#: How many objects the per-object cone-search baseline visits (it is the
#: slow side of the ablation; a subset keeps the benchmark bounded).
CONE_SEARCH_OBJECTS = 300


@pytest.fixture(scope="module")
def session(bench_database):
    return SqlSession(bench_database)


def close_pairs_via_neighbors(session):
    return session.query("""
        select n.objID, n.neighborObjID, n.distance
        from Neighbors n
        join PhotoObj p1 on p1.objID = n.objID
        join PhotoObj p2 on p2.objID = n.neighborObjID
        where n.distance < 0.5 and p1.type = 3 and p2.type = 3 and p1.objID < p2.objID
    """)


def close_pairs_via_cone_search(database, limit_objects):
    photo = database.table("PhotoObj")
    pairs = 0
    visited = 0
    for _row_id, row in photo.iter_rows():
        if row["type"] != 3:
            continue
        visited += 1
        if visited > limit_objects:
            break
        for neighbour in get_nearby_objects(database, row["ra"], row["dec"], 0.5):
            if neighbour["objID"] > row["objid"] and neighbour["type"] == 3:
                pairs += 1
    return pairs, visited


def test_neighbors_materialized_view_ablation(benchmark, session, bench_database):
    result = benchmark.pedantic(close_pairs_via_neighbors, args=(session,),
                                rounds=3, iterations=1)

    with measure() as table_timing:
        close_pairs_via_neighbors(session)
    with measure() as cone_timing:
        cone_pairs, visited = close_pairs_via_cone_search(bench_database, CONE_SEARCH_OBJECTS)

    photo_rows = bench_database.table("PhotoObj").row_count
    galaxy_rows = session.query("select count(*) as n from PhotoObj where type = 3").scalar()
    # Scale the partial cone-search time up to the full galaxy population.
    projected_cone_seconds = cone_timing.elapsed_seconds * galaxy_rows / max(visited, 1)

    report = ExperimentReport(
        "Neighbors ablation — materialised table vs per-object HTM cone search",
        "The gravitational-lens style proximity query (pairs of galaxies within 0.5').")
    report.add("pairs via Neighbors table", None, len(result.rows))
    report.add("query time via Neighbors", None, round(table_timing.elapsed_seconds, 3), unit="s")
    report.add(f"cone searches measured (of {galaxy_rows} galaxies)", None, visited)
    report.add("projected time via per-object cone search", None,
               round(projected_cone_seconds, 1), unit="s")
    report.add("speed-up from materialising", "large (motivated the design)",
               round(projected_cone_seconds / max(table_timing.elapsed_seconds, 1e-9), 1),
               unit="x")
    report.add("neighbour pairs per object", 10,
               round(bench_database.table("Neighbors").row_count / photo_rows, 1),
               note="paper: typically 10 objects within half an arcminute")
    print_report(report)

    assert len(result.rows) > 0
    assert projected_cone_seconds > table_timing.elapsed_seconds


def test_neighbors_table_agrees_with_cone_search(bench_database):
    """Spot-check: the materialised rows match a direct cone search for a sample."""
    photo = bench_database.table("PhotoObj")
    neighbors = bench_database.table("Neighbors")
    neighbor_index = neighbors.find_index_on(["objID"])
    checked = 0
    for _row_id, row in photo.iter_rows():
        if checked >= 25:
            break
        checked += 1
        from_table = {neighbors.get_row(rid)["neighborobjid"]
                      for rid in neighbor_index.seek((row["objid"],))}
        from_search = {entry["objID"] for entry in
                       get_nearby_objects(bench_database, row["ra"], row["dec"], 0.5)
                       if entry["objID"] != row["objid"]}
        assert from_table == from_search
