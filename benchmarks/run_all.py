"""Run every ``bench_*.py`` and write a perf snapshot (``BENCH_pr10.json``).

One pytest invocation covers the whole ``benchmarks/`` directory (so the
session-scoped synthetic survey is generated and loaded once), and a
small plugin records the outcome and call duration of every benchmark
test.  The snapshot aggregates per-file totals so future PRs have a
trajectory to compare against::

    PYTHONPATH=src python benchmarks/run_all.py [pytest args...]

Extra arguments are forwarded to pytest (e.g. ``--repro-scale 0.002``).
The snapshot is written next to this script.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time

import pytest

SNAPSHOT_NAME = "BENCH_pr10.json"


class _DurationCollector:
    """Pytest plugin: collects (nodeid, outcome, duration) per test call."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def pytest_runtest_logreport(self, report) -> None:
        if report.when != "call":
            return
        self.records.append({
            "nodeid": report.nodeid,
            "file": report.nodeid.split("::", 1)[0],
            "outcome": report.outcome,
            "duration_seconds": round(report.duration, 4),
        })


def _aggregate_by_file(records: list[dict]) -> dict[str, dict]:
    by_file: dict[str, dict] = {}
    for record in records:
        entry = by_file.setdefault(record["file"], {
            "tests": 0, "passed": 0, "failed": 0, "skipped": 0,
            "total_seconds": 0.0,
        })
        entry["tests"] += 1
        entry[record["outcome"]] = entry.get(record["outcome"], 0) + 1
        entry["total_seconds"] = round(
            entry["total_seconds"] + record["duration_seconds"], 4)
    return dict(sorted(by_file.items()))


def main(argv: list[str]) -> int:
    bench_dir = pathlib.Path(__file__).resolve().parent
    # bench_*.py does not match pytest's default collection pattern, so the
    # files are passed explicitly (one invocation shares the session-scoped
    # survey fixtures).
    bench_files = sorted(str(path) for path in bench_dir.glob("bench_*.py"))
    if not bench_files:
        print("no bench_*.py files found", file=sys.stderr)
        return 2
    collector = _DurationCollector()
    started = time.time()
    exit_code = pytest.main(
        [*bench_files, "-q", "-p", "no:cacheprovider", *argv],
        plugins=[collector])
    wall_seconds = time.time() - started

    snapshot = {
        "snapshot": SNAPSHOT_NAME,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "pytest_exit_code": int(exit_code),
        "wall_seconds": round(wall_seconds, 2),
        "per_file": _aggregate_by_file(collector.records),
        "tests": collector.records,
    }
    target = bench_dir / SNAPSHOT_NAME
    target.write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"\nwrote {target} ({len(collector.records)} benchmark tests, "
          f"{wall_seconds:.1f}s wall)")
    return int(exit_code)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
