"""Figure 8 / §9.1.4: the HTM spatial index.

The paper's claims: 20-deep HTM triangles are a fraction of an
arcsecond on a side; every trixel's descendants occupy a contiguous
B-tree range, so spatial searches become a handful of index range
scans; and the layered functions (fGetNearbyObjEq) make cone searches
"simple to state and execute quickly".
"""

from __future__ import annotations

import random


from conftest import print_report
from repro import htm
from repro.bench import ExperimentReport, measure
from repro.skyserver.spatial import get_nearby_objects

PAPER_TRIANGLE_SIDE_ARCSEC = 0.1       # "individual triangles are less than 0.1 arcseconds"
PAPER_DEPTH = 20


def test_htm_point_lookup_rate(benchmark):
    rng = random.Random(5)
    points = [(rng.uniform(0, 360), rng.uniform(-60, 60)) for _ in range(200)]

    def lookup_batch():
        return [htm.lookup_id(ra, dec) for ra, dec in points]

    ids = benchmark(lookup_batch)

    report = ExperimentReport(
        "Figure 8 — HTM point indexing",
        "Depth-20 trixel ids for random sky positions.")
    report.add("HTM depth", PAPER_DEPTH, htm.htm_level(ids[0]))
    report.add("triangle side at depth 20", PAPER_TRIANGLE_SIDE_ARCSEC,
               round(htm.triangle_side_arcsec(PAPER_DEPTH), 3), unit="arcsec",
               note="same order of magnitude; the paper quotes <0.1 arcsec")
    print_report(report)

    assert all(htm.htm_level(htm_id) == PAPER_DEPTH for htm_id in ids)
    assert htm.triangle_side_arcsec(PAPER_DEPTH) < 1.0


def test_htm_cover_drives_index_range_scans(benchmark, bench_database):
    """A cone search is a few B-tree range scans plus an exact distance filter."""
    def cone():
        return get_nearby_objects(bench_database, 185.0, -0.5, 1.0)

    rows = benchmark(cone)
    ranges = htm.cover_circle(185.0, -0.5, 1.0)

    with measure() as brute_timing:
        brute = []
        for _rid, row in bench_database.table("PhotoObj").iter_rows():
            if htm.arcmin_between(185.0, -0.5, row["ra"], row["dec"]) <= 1.0:
                brute.append(row["objid"])
    with measure() as indexed_timing:
        cone()

    report = ExperimentReport(
        "§9.1.4 — cone search through the HTM index vs brute force",
        "fGetNearbyObjEq(185, -0.5, 1): HTM cover ranges probed through the htmID index.")
    report.add("cover ranges", "a small set of triangles", len(ranges))
    report.add("objects returned", None, len(rows))
    report.add("indexed cone search", None, round(indexed_timing.elapsed_seconds, 4), unit="s")
    report.add("brute-force distance scan", None, round(brute_timing.elapsed_seconds, 4), unit="s")
    report.add("speed-up", "the point of the index",
               round(brute_timing.elapsed_seconds / max(indexed_timing.elapsed_seconds, 1e-9), 1),
               unit="x")
    print_report(report)

    assert {row["objID"] for row in rows} == set(brute)
    assert indexed_timing.elapsed_seconds < brute_timing.elapsed_seconds


def test_htm_cover_tightness(benchmark):
    """Covers stay small: a 1-arcminute circle needs only a handful of ranges."""
    def covers():
        return [htm.cover_circle(185.0, -0.5, radius) for radius in (0.5, 1.0, 5.0, 30.0)]

    results = benchmark(covers)
    for ranges in results:
        assert 1 <= len(ranges) <= 64
