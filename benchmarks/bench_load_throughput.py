"""§9.4: data-load throughput and the UNDO workflow.

"Loading runs at about 5 GB per hour (data conversion is very cpu
intensive), so the current SkyServer data loads in about 12 hours."
The reproduction measures its own loader's MB/s (conversion-bound in
the same way: type coercion, constraint checks, index maintenance) and
exercises the undo-fix-reload loop the operations interface supports.
"""

from __future__ import annotations

import pytest

from conftest import print_report
from repro.bench import ExperimentReport
from repro.loader import LoadStep, SkyServerLoader
from repro.pipeline import SurveyConfig, SyntheticSurvey
from repro.schema import create_skyserver_database

PAPER_GB_PER_HOUR = 5.0
PAPER_MB_PER_SECOND = PAPER_GB_PER_HOUR * 1000.0 / 3600.0
PAPER_FULL_LOAD_HOURS = 12.0
PAPER_DATABASE_GB = 60.0


@pytest.fixture(scope="module")
def small_survey():
    """A small, dedicated survey so the load benchmark does not disturb the shared DB."""
    return SyntheticSurvey(SurveyConfig(scale=0.0004, seed=11,
                                        density_per_sq_deg=8000.0)).run()


def load_once(survey):
    database = create_skyserver_database(with_indices=False)
    loader = SkyServerLoader(database)
    report = loader.load_pipeline_output(survey, build_neighbors=True, validate=True)
    assert report.succeeded, report.summary()
    return report


def test_load_throughput(benchmark, small_survey):
    report_measured = benchmark.pedantic(load_once, args=(small_survey,),
                                         rounds=1, iterations=1)

    report = ExperimentReport(
        "§9.4 — load pipeline throughput",
        "CSV/row conversion + constraint checks + index build + Neighbors computation.")
    report.add("load rate", PAPER_MB_PER_SECOND, round(report_measured.throughput_mb_per_s(), 3),
               unit="MB/s", note="paper: ~5 GB/hour, conversion-bound")
    report.add("rows loaded", None, report_measured.rows_loaded)
    report.add("data volume", PAPER_DATABASE_GB * 1000.0,
               round(report_measured.bytes_loaded / 1e6, 1), unit="MB")
    measured_hours_for_paper_volume = (PAPER_DATABASE_GB * 1000.0
                                       / max(report_measured.throughput_mb_per_s(), 1e-9) / 3600.0)
    report.add("hours to load the 60 GB EDR at this rate", PAPER_FULL_LOAD_HOURS,
               round(measured_hours_for_paper_volume, 1), unit="h",
               note="extrapolation; the paper's loader ran on real hardware")
    report.add("validation passed", "yes",
               "yes" if report_measured.validation and report_measured.validation.ok else "no")
    print_report(report)

    assert report_measured.rows_loaded > 0
    assert report_measured.throughput_mb_per_s() > 0
    assert report_measured.validation is not None and report_measured.validation.ok


def test_load_undo_fix_reload_cycle(benchmark, small_survey):
    """The Figure 9 operator workflow: a failing step is undone and re-executed."""
    def undo_cycle():
        database = create_skyserver_database(with_indices=False)
        loader = SkyServerLoader(database)
        field_rows = [dict(row) for row in small_survey.tables["Field"]]
        corrupted = field_rows + [dict(field_rows[0])]      # duplicate primary key
        result, event_id = loader.run_step(LoadStep("Field", rows=corrupted, source="bad.csv"))
        assert not result.succeeded
        removed = loader.undo(event_id)
        result2, _ = loader.run_step(LoadStep("Field", rows=field_rows, source="fixed.csv"))
        assert result2.succeeded
        return removed, database.table("Field").row_count

    removed, final_rows = benchmark.pedantic(undo_cycle, rounds=1, iterations=1)
    assert removed > 0
    assert final_rows == len(small_survey.tables["Field"])
