"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper's
evaluation.  One synthetic survey (at 1/1000 of the Early Data Release,
full sky density) is generated and loaded once per session; individual
benchmarks then measure queries, loads, covers and model sweeps against
it and print paper-vs-measured reports.
"""

from __future__ import annotations

import pytest

from repro.loader import SkyServerLoader
from repro.pipeline import SurveyConfig, SyntheticSurvey
from repro.schema import create_skyserver_database
from repro.skyserver import QueryLimits, SkyServer

#: Scale of the benchmark survey relative to the Early Data Release.
BENCH_SCALE = 0.001
BENCH_SEED = 2002


def pytest_addoption(parser):
    parser.addoption("--repro-scale", action="store", default=str(BENCH_SCALE),
                     help="survey scale (fraction of the EDR) for the benchmark database")


@pytest.fixture(scope="session")
def bench_config(pytestconfig) -> SurveyConfig:
    scale = float(pytestconfig.getoption("--repro-scale"))
    return SurveyConfig(scale=scale, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def bench_survey(bench_config):
    """The benchmark survey's pipeline output."""
    return SyntheticSurvey(bench_config).run()


@pytest.fixture(scope="session")
def bench_database(bench_survey):
    """The loaded, indexed benchmark database."""
    database = create_skyserver_database(with_indices=False)
    loader = SkyServerLoader(database)
    report = loader.load_pipeline_output(bench_survey)
    assert report.succeeded, report.summary()
    return database


@pytest.fixture(scope="session")
def bench_server(bench_database):
    """A private (unlimited) SkyServer over the benchmark database."""
    return SkyServer(bench_database, limits=QueryLimits.private())


def print_report(report) -> None:
    """Print an ExperimentReport under the benchmark output."""
    print()
    print(report.render())
    print()
