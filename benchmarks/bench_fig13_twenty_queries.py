"""Figure 13: CPU and elapsed time of the 20 data-mining queries.

The paper's Figure 13 plots CPU and elapsed seconds for the 20 queries
(plus variants), spanning roughly 0.1 s to 1 000 s on the 14M-row
database: index lookups finish in a second or two, sequential scans
take about 3 minutes, and the spatial join takes about ten minutes.
The absolute numbers here are not comparable (a Python expression
interpreter over an in-memory table versus SQL Server over 60 GB of
disk), but the *banding* — lookups ≪ scans ≪ joins/spatial — is the
reproduced result.
"""

from __future__ import annotations

import pytest

from conftest import print_report
from repro.bench import ExperimentReport, QueryTimingTable, Timing, ascii_series
from repro.skyserver import (CATEGORY_AGGREGATE, CATEGORY_INDEX_LOOKUP,
                             CATEGORY_JOIN, CATEGORY_SCAN, CATEGORY_SPATIAL,
                             DATA_MINING_QUERIES)

#: The paper's qualitative cost bands (seconds) per query category.
PAPER_BANDS = {
    CATEGORY_INDEX_LOOKUP: "1-2 s",
    CATEGORY_SPATIAL: "seconds",
    CATEGORY_SCAN: "~3 minutes (disk-limited)",
    CATEGORY_AGGREGATE: "~3 minutes",
    CATEGORY_JOIN: "minutes to ~1 hour",
}


@pytest.fixture(scope="module")
def suite_timings(bench_server):
    """Run the whole suite once and keep the timings for every test below."""
    executions = bench_server.run_all_data_mining_queries()
    table = QueryTimingTable()
    for execution in executions:
        table.add(execution.query_id,
                  Timing(execution.elapsed_seconds, execution.cpu_seconds),
                  execution.row_count)
    return executions, table


def test_figure13_query_suite(benchmark, bench_server, suite_timings):
    executions, table = suite_timings

    def rerun_fastest():
        # Benchmark a representative cheap query so pytest-benchmark has a
        # stable measurement; the full-suite timings are printed below.
        return bench_server.run_data_mining_query("Q9").row_count

    benchmark(rerun_fastest)

    print()
    print("Figure 13 — query execution times (reproduction scale)")
    print(table.render())
    labels = [execution.query_id for execution in executions]
    elapsed = [execution.elapsed_seconds for execution in executions]
    print()
    print(ascii_series(labels, elapsed, title="elapsed seconds (log bars)"))

    report = ExperimentReport(
        "Figure 13 — banding of query costs by category",
        "Mean elapsed seconds per category; the ordering (index lookups fastest, "
        "scans intermediate, joins/spatial-join slowest) is the reproduced shape.")
    by_category: dict[str, list[float]] = {}
    for execution in executions:
        by_category.setdefault(execution.query.category, []).append(execution.elapsed_seconds)
    means = {category: sum(values) / len(values) for category, values in by_category.items()}
    for category, mean in sorted(means.items(), key=lambda item: item[1]):
        report.add(f"mean elapsed ({category})", PAPER_BANDS.get(category, ""),
                   round(mean, 4), unit="s")
    print_report(report)

    assert len(executions) == len(DATA_MINING_QUERIES)
    # The qualitative ordering of Figure 13.
    assert means[CATEGORY_INDEX_LOOKUP] < means[CATEGORY_SCAN]
    assert means[CATEGORY_INDEX_LOOKUP] < means[CATEGORY_JOIN]
    assert max(means.values()) == pytest.approx(
        max(means[CATEGORY_JOIN], means[CATEGORY_SPATIAL], means[CATEGORY_AGGREGATE]), rel=1e-9)


def test_figure13_index_lookups_are_subsecond(bench_server, suite_timings):
    executions, _table = suite_timings
    lookups = [execution for execution in executions
               if execution.query.category == CATEGORY_INDEX_LOOKUP]
    assert lookups
    assert all(execution.elapsed_seconds < 1.0 for execution in lookups)


def test_figure13_spread_spans_orders_of_magnitude(suite_timings):
    executions, _table = suite_timings
    elapsed = sorted(execution.elapsed_seconds for execution in executions)
    fastest = max(elapsed[0], 1e-4)
    slowest = elapsed[-1]
    # The paper's spread is ~four orders of magnitude; the reproduction keeps >= 2.
    assert slowest / fastest >= 100.0
