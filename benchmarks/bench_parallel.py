"""Morsel-driven parallelism: intra-query speedup on one node.

Figure 11 of "When Database Systems Meet the Grid" shows SQL Server
answering Query 15A with a *parallel table scan* — one node, many
workers, each streaming a slice of PhotoObj off disk.  PR 6 reproduces
that inside the single-node engine: columnar scans are split into
fixed-size morsels, dispatched to the shared worker pool, and gathered
in submission order so the output stays byte-identical to serial
execution.  This benchmark gates the property:

* **morsel speedup** — a join+aggregate over >= 100k rows must run
  >= 2x faster with ``parallelism=4`` than with ``parallelism=1``.
  As in ``bench_cluster.py`` the scan is modelled as disk-bound
  (Figure 15): ``simulated_scan_mbps`` charges every morsel the time
  its bytes take to stream off disk, and the win is morsel I/O
  overlapping across workers — the same property the paper's parallel
  scan buys, minus the GIL's share of the compute.
* **no serial regression** — ``parallelism=1`` must plan and execute
  exactly like the stock planner (identical EXPLAIN, comparable time).

Every configuration must return byte-identical rows.
"""

from __future__ import annotations

import random
import time

from conftest import print_report
from repro.bench import ExperimentReport
from repro.engine import Database, Planner, PrimaryKey, SqlSession, bigint, floating
from repro.engine.explain import render_plan

SCAN_ROWS = 100_000
SPEC_ROWS = 25_000
#: Modelled sequential-scan bandwidth of the one node's disk.  The gate
#: only needs both configurations charged the same rate per byte; the
#: 4-worker win is the overlap of per-morsel I/O.
SCAN_MBPS = 8.0

JOIN_AGGREGATE_SQL = (
    "select s.objid % 4 as bucket, count(*) as n, sum(p.flags) as s, "
    "min(p.modelmag_r) as mn, max(p.modelmag_r) as mx "
    "from photoobj p, specobj s where p.objid = s.objid "
    "and p.modelmag_r between 14 and 23.5 "
    "group by s.objid % 4 order by bucket")


def _bench_database() -> Database:
    rng = random.Random(2006)
    database = Database("bench_parallel")
    photoobj = database.create_table("photoobj", [
        bigint("objid"), floating("ra"), floating("dec"),
        bigint("flags"), floating("modelmag_r"),
    ], primary_key=PrimaryKey(["objid"]), storage="column")
    photoobj.insert_many([
        {"objid": index,
         "ra": rng.uniform(150.0, 250.0),
         "dec": rng.uniform(-5.0, 5.0),
         "flags": rng.randrange(8),
         "modelmag_r": rng.uniform(14.0, 24.0)}
        for index in range(SCAN_ROWS)
    ])
    specobj = database.create_table("specobj", [
        bigint("objid"), floating("z"),
    ], primary_key=PrimaryKey(["objid"]), storage="column")
    specobj.insert_many([
        {"objid": index * 4, "z": rng.uniform(0.0, 0.4)}
        for index in range(SPEC_ROWS)
    ])
    database.analyze()
    return database


def _session(database: Database, workers: int) -> SqlSession:
    planner = Planner(database, parallelism=workers,
                      simulated_scan_mbps=SCAN_MBPS)
    return SqlSession(database, planner=planner)


def _timed_query(session, sql: str, repeats: int = 3) -> tuple[float, list]:
    best = float("inf")
    rows = None
    for _ in range(repeats):
        started = time.perf_counter()
        rows = session.query(sql).rows
        best = min(best, time.perf_counter() - started)
    return best, rows


def test_morsel_parallel_speedup_gate():
    """>= 2x: 4-worker morsel execution vs serial, same I/O model."""
    database = _bench_database()
    expected = SqlSession(database).query(JOIN_AGGREGATE_SQL).rows

    one_seconds, one_rows = _timed_query(_session(database, 1),
                                         JOIN_AGGREGATE_SQL)
    four_seconds, four_rows = _timed_query(_session(database, 4),
                                           JOIN_AGGREGATE_SQL)
    assert one_rows == expected
    assert four_rows == expected
    speedup = one_seconds / four_seconds

    report = ExperimentReport(
        "Morsel-driven parallelism — join+aggregate on one node",
        f"{SCAN_ROWS}-row PhotoObj joined to {SPEC_ROWS}-row SpecObj, "
        f"grouped COUNT/SUM/MIN/MAX; parallelism=1 vs parallelism=4 on "
        f"a {SCAN_MBPS:g} MB/s scan disk (Figure 11's parallel scan: "
        "per-morsel I/O overlaps across the shared worker pool).")
    report.add("serial elapsed", "", round(one_seconds, 4), unit="s")
    report.add("4-worker elapsed", "", round(four_seconds, 4), unit="s")
    report.add("speedup", ">= 2x", f"{speedup:.1f}x")
    report.add("results identical to serial", "yes",
               "yes" if four_rows == expected else "NO")
    print_report(report)

    assert speedup >= 2.0, (
        f"4 workers only {speedup:.2f}x over serial")


def test_parallelism_one_matches_stock_planner():
    """parallelism=1 is the stock engine: same plan, byte-identical rows."""
    database = _bench_database()
    stock = SqlSession(database)
    serial = SqlSession(database, planner=Planner(database, parallelism=1))

    stock_plan = render_plan(stock.plan(JOIN_AGGREGATE_SQL))
    serial_plan = render_plan(serial.plan(JOIN_AGGREGATE_SQL))
    assert stock_plan == serial_plan
    assert "workers=" not in serial_plan

    stock_rows = stock.query(JOIN_AGGREGATE_SQL).rows
    serial_rows = serial.query(JOIN_AGGREGATE_SQL).rows
    assert repr(serial_rows) == repr(stock_rows)
    assert serial.morsels_dispatched == 0
