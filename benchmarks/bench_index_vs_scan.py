"""§9.1.3 and §12: indices as tag tables; index lookups vs sequential scans.

The paper's two claims measured here:

* "In addition to giving a column subset that speeds sequential scans
  by ten to one hundred fold, indices also cluster data so that range
  searches are limited to just one part of the object space" — the
  covering-index scan reads narrow entries instead of ~2 KB rows, and
  the range seek touches only the qualifying part of the table.
* "A typical index lookup runs primarily in memory and completes within
  a second or two ...  Queries that scan the entire 30GB PhotoObj table
  run at about 140 MBps and so take about 3 minutes." — index lookups
  are orders of magnitude cheaper than full scans.
"""

from __future__ import annotations

import pytest

from conftest import print_report
from repro.bench import ExperimentReport, measure
from repro.engine import SqlSession

PAPER_INDEX_LOOKUP_SECONDS = 1.5
PAPER_FULL_SCAN_SECONDS = 180.0
PAPER_COLUMN_SUBSET_SPEEDUP = (10.0, 100.0)
PAPER_WARM_SCAN_SECONDS = 7.0
PAPER_COLD_SCAN_SECONDS = 17.0


@pytest.fixture(scope="module")
def session(bench_database):
    return SqlSession(bench_database)


def test_index_lookup_vs_full_scan(benchmark, session, bench_database):
    photo = bench_database.table("PhotoObj")
    sample_objid = next(iter(photo))["objid"]

    def index_lookup():
        return session.query(f"select ra, dec from PhotoObj where objID = {sample_objid}")

    lookup_result = benchmark(index_lookup)

    with measure() as scan_timing:
        scan_result = session.query(
            "select count(*) as n from PhotoObj where rowv*rowv + colv*colv > 1e9")
    with measure() as lookup_timing:
        index_lookup()

    report = ExperimentReport(
        "§12 — index lookup versus full table scan",
        "Primary-key lookup of one object versus a predicate scan of every row.")
    report.add("index lookup elapsed", PAPER_INDEX_LOOKUP_SECONDS,
               round(lookup_timing.elapsed_seconds, 5), unit="s")
    report.add("full scan elapsed", PAPER_FULL_SCAN_SECONDS,
               round(scan_timing.elapsed_seconds, 3), unit="s")
    report.add("scan / lookup ratio", PAPER_FULL_SCAN_SECONDS / PAPER_INDEX_LOOKUP_SECONDS,
               round(scan_timing.elapsed_seconds / max(lookup_timing.elapsed_seconds, 1e-9)))
    report.add("rows touched by lookup", 1, lookup_result.statistics.rows_scanned)
    report.add("rows touched by scan", 14_000_000, scan_result.statistics.rows_scanned,
               note="paper value is the EDR row count; reproduction is at scale")
    print_report(report)

    assert lookup_result.statistics.rows_scanned <= 2
    assert scan_result.statistics.rows_scanned == bench_database.table("PhotoObj").row_count
    assert scan_timing.elapsed_seconds > lookup_timing.elapsed_seconds * 10


def test_covering_index_reads_fewer_bytes(benchmark, session, bench_database):
    """The tag-table ablation: covered column subset vs full-row scan bytes."""
    covered_sql = ("select count(*) as n from PhotoObj "
                   "where type = 3 and modelMag_r between 15 and 22")
    full_sql = ("select count(*) as n from PhotoObj "
                "where petroR50_r > 0 and rowv >= 0 and modelMag_r between 15 and 22")

    covered = benchmark.pedantic(lambda: session.query(covered_sql), rounds=3, iterations=1)
    full = session.query(full_sql)

    covered_bytes_per_row = covered.statistics.bytes_scanned / max(1, covered.statistics.rows_scanned)
    full_bytes_per_row = full.statistics.bytes_scanned / max(1, full.statistics.rows_scanned)
    reduction = full_bytes_per_row / max(covered_bytes_per_row, 1e-9)

    report = ExperimentReport(
        "§9.1.3 — covering indices as tag tables",
        "Bytes read per row when the query is covered by an index column subset "
        "versus reading the full ~1.5-2 KB PhotoObj row.")
    report.add("bytes per row (covered subset)", 128, round(covered_bytes_per_row),
               unit="bytes", note="paper: a few hundred bytes in a tag table")
    report.add("bytes per row (full record)", 2000, round(full_bytes_per_row), unit="bytes")
    report.add("column-subset reduction", f"{PAPER_COLUMN_SUBSET_SPEEDUP[0]:.0f}-"
                                          f"{PAPER_COLUMN_SUBSET_SPEEDUP[1]:.0f}x",
               round(reduction, 1), unit="x")
    print_report(report)

    assert covered_bytes_per_row < full_bytes_per_row
    assert reduction >= 3.0


def test_warm_vs_cold_scan_model(benchmark, bench_database):
    """§12's warm (7 s) vs cold (17 s) index-scan figures, via the I/O model."""
    from repro.iosim import measure_engine_scan, TAG_RECORD_BYTES

    measurement = benchmark.pedantic(
        measure_engine_scan, args=(bench_database, "PhotoObj"), rounds=1, iterations=1)

    paper_rows = 14_000_000
    warm_rows_per_second = 5.0e6          # "5 m records per second when cpu bound"
    cold_mbps = 140.0                     # the 4-disk production configuration
    modeled_warm_seconds = paper_rows / warm_rows_per_second
    modeled_cold_seconds = paper_rows * TAG_RECORD_BYTES / (cold_mbps * 1e6)

    report = ExperimentReport(
        "§12 — warm vs cold index scans of the 14M-row photo table",
        "Warm scans are CPU-bound (5M records/s); cold scans are bound by the "
        "4-disk configuration's 140 MB/s.")
    report.add("warm scan (modelled)", PAPER_WARM_SCAN_SECONDS, round(modeled_warm_seconds, 1),
               unit="s")
    report.add("cold scan (modelled)", PAPER_COLD_SCAN_SECONDS, round(modeled_cold_seconds, 1),
               unit="s")
    report.add("reproduction engine rows/s", warm_rows_per_second,
               round(measurement.rows_per_second), note="pure-Python evaluator")
    print_report(report)

    assert modeled_warm_seconds < modeled_cold_seconds
    assert modeled_warm_seconds == pytest.approx(PAPER_WARM_SCAN_SECONDS, rel=0.7)
    assert modeled_cold_seconds == pytest.approx(PAPER_COLD_SCAN_SECONDS, rel=0.7)
