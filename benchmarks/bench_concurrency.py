"""The concurrent serving pool vs serialized execution (§4/§7 traffic).

The paper's SkyServer is a public web service: "about 500 people
accessing about 4,000 pages per day", dominated by the same template
queries repeated over and over (the cone searches and colour cuts of
§4), with hard per-user limits.  This benchmark replays a fig5-style
traffic mix — a Zipf-weighted draw over a dozen hot query templates —
against the :class:`~repro.skyserver.pool.SkyServerPool` and against
today's baseline (one session executing the same requests one after
another).

Acceptance gates:

* >= 2x throughput with 8 concurrent workers vs serialized execution
  on the repeated-query mix (the shared result cache is what buys
  this: repeats are served without re-execution);
* result-cache service rate > 50% of requests on that mix;
* a concurrent mixed read/write run (writers inserting and deleting
  while the pool serves readers, with periodic VACUUM) leaves the
  database in exactly the state serial execution produces.
"""

from __future__ import annotations

import random
import threading
import time

from conftest import print_report
from repro.bench import ExperimentReport
from repro.engine import Database, PrimaryKey, SqlSession, bigint, floating
from repro.skyserver import QueryLimits, ServiceClass, SkyServerPool

TABLE_ROWS = 50_000
REQUESTS = 160
WORKERS = 8

#: The hot public templates: colour-cut counts, magnitude histograms,
#: brightest-object pages — the §4 shapes users hammer repeatedly.
TEMPLATES = [
    "select count(*) as n from photoobj where modelmag_r between 15 and 17",
    "select count(*) as n from photoobj where modelmag_r between 17 and 19",
    "select count(*) as n from photoobj where modelmag_r between 19 and 21",
    "select count(*) as n, avg(modelmag_r) as mean_r from photoobj where flags = 3",
    "select type, count(*) as n from photoobj group by type",
    "select type, avg(modelmag_r) as mean_r from photoobj group by type",
    "select top 100 objid, modelmag_r from photoobj where modelmag_r < 15.5 order by modelmag_r",
    "select top 50 objid, ra, dec from photoobj where modelmag_r < 15 order by ra",
    "select count(*) as n from photoobj where ra between 180 and 200 and dec > 0",
    "select count(*) as n, min(modelmag_r) as mn, max(modelmag_r) as mx from photoobj where type = 3",
    "select count(*) as n from photoobj where flags = 1 and modelmag_r < 20",
    "select avg(ra) as mean_ra, avg(dec) as mean_dec from photoobj where modelmag_r between 16 and 18",
]

SERVICE_CLASSES = {
    "public": ServiceClass("public", QueryLimits(max_rows=2000, max_seconds=60.0),
                           max_concurrent=WORKERS, max_queue_depth=4 * REQUESTS,
                           queue_timeout_seconds=None),
}


def _build_database(rows: int = TABLE_ROWS) -> Database:
    database = Database("bench_concurrency")
    table = database.create_table("photoobj", [
        bigint("objid"), floating("ra"), floating("dec"),
        bigint("type"), bigint("flags"), floating("modelmag_r"),
    ], primary_key=PrimaryKey(["objid"]), storage="column")
    rng = random.Random(2002)
    table.insert_many([
        {"objid": index,
         "ra": rng.uniform(150.0, 250.0),
         "dec": rng.uniform(-5.0, 5.0),
         "type": rng.randrange(6),
         "flags": rng.randrange(8),
         "modelmag_r": rng.uniform(14.0, 24.0)}
        for index in range(rows)
    ])
    database.analyze()
    return database


def _traffic_mix(requests: int = REQUESTS, seed: int = 5) -> list[str]:
    """Zipf-weighted draws over the templates: hot queries dominate."""
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) ** 1.1 for rank in range(len(TEMPLATES))]
    mix = list(TEMPLATES)                       # every template appears once
    mix += rng.choices(TEMPLATES, weights=weights, k=requests - len(TEMPLATES))
    rng.shuffle(mix)
    return mix


def test_pool_throughput_and_cache_gate():
    """The acceptance gate: 8 workers + result cache >= 2x serialized."""
    database = _build_database()
    mix = _traffic_mix()
    repeats = len(mix) - len(set(mix))

    # Baseline: today's single-session loop (plan cache on, no result
    # cache), exactly how the benchmarks ran queries before this PR.
    serial_session = SqlSession(database)
    serial_started = time.perf_counter()
    serial_results = [serial_session.query(sql).rows for sql in mix]
    serial_seconds = time.perf_counter() - serial_started

    with SkyServerPool(database, workers=WORKERS,
                       service_classes=SERVICE_CLASSES) as pool:
        pool_started = time.perf_counter()
        tickets = [pool.submit(sql) for sql in mix]
        pool_results = [ticket.result(120.0).rows for ticket in tickets]
        pool_seconds = time.perf_counter() - pool_started
        served_from_cache = sum(ticket.cache_hit for ticket in tickets)
        statistics = pool.statistics()

    assert pool_results == serial_results
    speedup = serial_seconds / pool_seconds
    cache_rate = served_from_cache / len(tickets)

    report = ExperimentReport(
        "Concurrent serving — fig5-style repeated traffic mix",
        f"{len(mix)} requests over {len(TEMPLATES)} hot templates "
        f"({repeats} repeats) against {TABLE_ROWS} rows; serialized "
        "single-session loop vs 8 pooled workers with admission control "
        "and the shared result cache.")
    report.add("serialized elapsed", "", round(serial_seconds, 4), unit="s")
    report.add("pool elapsed (8 workers)", "", round(pool_seconds, 4), unit="s")
    report.add("throughput speedup", ">= 2x", f"{speedup:.1f}x")
    report.add("served from result cache", "> 50%", f"{cache_rate:.0%}")
    report.add("cache hit rate (probe level)", "",
               statistics["result_cache"]["hit_rate"])
    report.add("queue depth peak", "", statistics["queue_depth_peak"])
    report.add("failed / rejected", "0 / 0",
               f"{statistics['failed']} / {statistics['rejected']}")
    print_report(report)

    assert statistics["failed"] == 0 and statistics["rejected"] == 0
    assert speedup >= 2.0, f"pool only {speedup:.2f}x over serialized execution"
    assert cache_rate > 0.5, f"result cache served only {cache_rate:.0%}"


def test_concurrent_mixed_read_write_identical_to_serial():
    """Readers + writers + VACUUM concurrently == the serial end state."""
    writer_threads = 2
    batches = 12
    batch_rows = 25

    def apply_writes(database: Database, writer: int) -> None:
        table = database.table("photoobj")
        base = 1_000_000 * (writer + 1)
        for batch in range(batches):
            start = base + batch * batch_rows
            table.insert_many([
                {"objid": value, "ra": 200.0, "dec": 0.0, "type": value % 6,
                 "flags": value % 8, "modelmag_r": 14.0 + (value % 100) / 10.0}
                for value in range(start, start + batch_rows)])
            if batch % 3 == 0:
                table.delete_where(lambda row: row["objid"] == start)

    concurrent_db = _build_database(rows=10_000)
    serial_db = _build_database(rows=10_000)
    mix = _traffic_mix(requests=60, seed=11)
    stop_vacuum = threading.Event()

    def vacuumer(table):
        while not stop_vacuum.is_set():
            table.vacuum()
            time.sleep(0.002)

    with SkyServerPool(concurrent_db, workers=4,
                       service_classes=SERVICE_CLASSES) as pool:
        threads = [threading.Thread(target=apply_writes,
                                    args=(concurrent_db, writer))
                   for writer in range(writer_threads)]
        vacuum_thread = threading.Thread(
            target=vacuumer, args=(concurrent_db.table("photoobj"),))
        vacuum_thread.start()
        for thread in threads:
            thread.start()
        for sql in mix:
            pool.execute(sql, timeout=60.0)
        for thread in threads:
            thread.join()
        stop_vacuum.set()
        vacuum_thread.join()
        statistics = pool.statistics()

    for writer in range(writer_threads):
        apply_writes(serial_db, writer)

    checksum_sql = ("select count(*) as n, sum(objid) as ids, sum(flags) as f, "
                    "min(modelmag_r) as mn from photoobj")
    full_sql = "select objid, type, flags from photoobj order by objid"
    concurrent_state = SqlSession(concurrent_db).query(full_sql).rows
    serial_state = SqlSession(serial_db).query(full_sql).rows
    concurrent_sum = SqlSession(concurrent_db).query(checksum_sql).rows
    serial_sum = SqlSession(serial_db).query(checksum_sql).rows

    report = ExperimentReport(
        "Concurrent mixed read/write vs serial execution",
        f"{writer_threads} writer threads ({batches} batches each, with "
        "deletes) + periodic VACUUM + 60 pooled reads, against the same "
        "writes applied serially.")
    report.add("final row count", serial_sum[0]["n"], concurrent_sum[0]["n"])
    report.add("objid checksum", serial_sum[0]["ids"], concurrent_sum[0]["ids"])
    report.add("states identical", "yes",
               "yes" if concurrent_state == serial_state else "NO")
    report.add("pool failures", 0, statistics["failed"])
    report.add("lock contentions (r/w)", "",
               f"{concurrent_db.concurrency_statistics()['read_contentions']}"
               f"/{concurrent_db.concurrency_statistics()['write_contentions']}")
    print_report(report)

    assert statistics["failed"] == 0
    assert concurrent_state == serial_state
    assert concurrent_sum == serial_sum
