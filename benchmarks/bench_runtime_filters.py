"""Runtime join filters: sideways information passing on a 3-table join.

The paper's hard queries join PhotoObj to its snowflake arms and the
Neighbors table (Table 1's q15, the fig13 shapes), and the probe side is
always the wide 100k+-row fact table.  PR 8 lets a batch hash join hand
its build keys sideways to the probe scan: the min/max range composes
with PR 7's zone maps to skip whole sealed segments before they are
read, and the Bloom filter drops non-matching rows pre-materialization.

This benchmark gates the win on the ISSUE's shape — a **selective
100k ⋈ 25k ⋈ 5k three-table join+aggregate** under the same 8 MB/s
simulated scan disk as ``bench_segments.py``, executed **serially**
(``parallelism=1``), so the asserted speedup can only come from
runtime-filter pruning, never from morsel parallelism.  The
segment-skip counters prove it: the filtered run must skip sealed
probe segments, the unfiltered run must skip none, and both must
return byte-identical rows.
"""

from __future__ import annotations

import random
import time

from conftest import print_report
from repro.bench import ExperimentReport
from repro.engine import (Database, Planner, SqlSession, bigint, floating,
                          integer)

PHOTO_ROWS = 100_000
NEIGHBOR_ROWS = 25_000
FIELD_ROWS = 5_000
#: Modelled sequential-scan bandwidth (same role as bench_segments'):
#: both configurations pay the same rate per byte actually read, so the
#: runtime-filter win is exactly the probe segments never read.
SCAN_MBPS = 8.0

#: field(5k, 2% selected) ⋈ neighbors(25k) ⋈ photoobj(100k): the
#: selected field rows' neighbors all point into one narrow objid band
#: of PhotoObj, so the build side of the outer join knows — at runtime,
#: not at plan time — that all but a couple of probe segments are dead.
JOIN_SQL = ("select count(*) as n, sum(p.mag) as s, min(p.mag) as lo "
            "from field f, neighbors nb, photoobj p "
            "where f.objid = nb.objid and nb.neighborobjid = p.objid "
            "and f.flag = 1")


def _bench_database() -> Database:
    rng = random.Random(20020603)
    database = Database("bench_runtime_filters")
    photoobj = database.create_table("photoobj", [
        bigint("objid"), floating("ra"), floating("mag"), integer("run"),
    ], storage="column")
    photoobj.insert_many(
        {"objid": index,
         "ra": rng.uniform(150.0, 250.0),
         "mag": rng.uniform(14.0, 24.0),
         "run": index % 6}
        for index in range(PHOTO_ROWS))
    field = database.create_table("field", [
        bigint("objid"), integer("flag"),
    ], storage="column")
    field.insert_many(
        {"objid": index, "flag": 1 if index % 50 == 0 else 0}
        for index in range(FIELD_ROWS))
    neighbors = database.create_table("neighbors", [
        bigint("objid"), bigint("neighborobjid"), floating("distance"),
    ], storage="column")
    neighbors.insert_many(
        {"objid": index % FIELD_ROWS,
         # Selected field rows' neighbors land in [40000, 42000); the
         # rest spread over the full objid range, so nothing but the
         # build side's actual keys makes the probe slice narrow.
         "neighborobjid": (40_000 + (index % 2_000)
                           if (index % FIELD_ROWS) % 50 == 0
                           else (index * 7) % PHOTO_ROWS),
         "distance": rng.uniform(0.0, 1.0)}
        for index in range(NEIGHBOR_ROWS))
    database.analyze()
    return database


def _session(database: Database, *, runtime_filters: bool) -> SqlSession:
    planner = Planner(database, enable_runtime_filters=runtime_filters,
                      simulated_scan_mbps=SCAN_MBPS)
    return SqlSession(database, planner=planner)


def _timed_query(session: SqlSession, sql: str, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = session.query(sql)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_runtime_filter_join_speedup_gate():
    """>= 2x: runtime filters vs none on the selective three-table join."""
    database = _bench_database()
    off_seconds, off = _timed_query(
        _session(database, runtime_filters=False), JOIN_SQL)
    on_seconds, on = _timed_query(
        _session(database, runtime_filters=True), JOIN_SQL)

    assert repr(on.rows) == repr(off.rows)
    # The win is pruning, not parallelism: both runs are serial, and
    # only the filtered one may skip probe segments.
    assert on.statistics.runtime_filter_segments_pruned > 0
    assert on.statistics.runtime_filter_rows_pruned > 0
    assert off.statistics.runtime_filter_segments_pruned == 0
    assert off.statistics.runtime_filter_rows_pruned == 0
    speedup = off_seconds / on_seconds
    total = on.statistics.segments_scanned + on.statistics.segments_skipped

    report = ExperimentReport(
        "Runtime join filters — selective 100k ⋈ 25k ⋈ 5k join+aggregate",
        f"field(2% selected) ⋈ neighbors ⋈ photoobj on a {SCAN_MBPS:g} "
        "MB/s scan disk, serial execution: the outer hash build's key "
        "range + Bloom filter prune the probe scan's sealed segments "
        "and rows before they are read.")
    report.add("no-filter elapsed", "", round(off_seconds, 4), unit="s")
    report.add("filtered elapsed", "", round(on_seconds, 4), unit="s")
    report.add("segments pruned by filter", "most",
               f"{on.statistics.runtime_filter_segments_pruned}/{total}")
    report.add("probe rows pruned by filter", "",
               on.statistics.runtime_filter_rows_pruned)
    report.add("speedup", ">= 2x", f"{speedup:.1f}x")
    report.add("results identical", "yes",
               "yes" if repr(on.rows) == repr(off.rows) else "NO")
    print_report(report)

    assert speedup >= 2.0, f"runtime filters only {speedup:.2f}x"
