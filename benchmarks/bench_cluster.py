"""The sharded cluster: scatter-gather speedup and HTM shard pruning.

"When Database Systems Meet the Grid" distributes the SDSS catalogs
across nodes so that (a) a scan-bound query streams off many disks at
once and (b) a spatial query touches only the nodes whose sky region it
selects.  This benchmark gates both properties of the reproduction's
cluster subsystem:

* **scatter-gather speedup** — a scan+aggregate over >= 100k rows must
  run >= 2x faster on a 4-shard cluster than on a 1-shard cluster.  On
  the paper's hardware scans are disk-bandwidth-bound (Figure 15), so
  each shard node is modelled with its own disk: the executor's
  ``simulated_scan_mbps`` charges every fragment the time its bytes
  take to stream off one shard's disks (a ``sleep``, overlapped across
  the thread pool exactly as real per-node I/O would overlap).  Both
  layouts are charged identically; the 4-shard win is the I/O overlap,
  which is the property sharding exists to buy.
* **shard pruning** — an HTM cone query against an 8-shard HTM-range
  cluster must touch <= 1/4 of the shards (>= 4x pruning), driven by
  the existing :mod:`repro.htm` covers intersected with the shard
  boundaries and per-shard statistics.

Both clusters return byte-identical results to a single-node session,
re-checked here.
"""

from __future__ import annotations

import random
import time

from conftest import print_report
from repro.bench import ExperimentReport
from repro.cluster import ClusterSession, ShardCluster
from repro.engine import Database, PrimaryKey, SqlSession, bigint, floating
from repro.htm import cover_circle, lookup_id
from repro.skyserver.spatial import get_nearby_objects, nearby_from_candidates

SCAN_ROWS = 100_000
#: Modelled per-shard sequential-scan bandwidth.  One low-end disk per
#: shard node; what matters for the gate is that both layouts are
#: charged the same rate per byte.
SHARD_SCAN_MBPS = 8.0

PRUNE_ROWS = 24_000
PRUNE_SHARDS = 8

AGGREGATE_SQL = ("select count(*) as n, sum(flags) as s, "
                 "min(modelmag_r) as mn, max(modelmag_r) as mx "
                 "from photoobj where modelmag_r between 14 and 23")


def _scan_rows(rows: int) -> list[dict]:
    rng = random.Random(2002)
    return [
        {"objid": index,
         "ra": rng.uniform(150.0, 250.0),
         "dec": rng.uniform(-5.0, 5.0),
         "flags": rng.randrange(8),
         "modelmag_r": rng.uniform(14.0, 24.0)}
        for index in range(rows)
    ]


def _scan_database(rows: list[dict]) -> Database:
    database = Database("bench_cluster")
    table = database.create_table("photoobj", [
        bigint("objid"), floating("ra"), floating("dec"),
        bigint("flags"), floating("modelmag_r"),
    ], primary_key=PrimaryKey(["objid"]))
    table.insert_many(rows)
    database.analyze()
    return database


def _timed_query(session, sql: str, repeats: int = 3) -> tuple[float, list]:
    best = float("inf")
    rows = None
    for _ in range(repeats):
        started = time.perf_counter()
        rows = session.query(sql).rows
        best = min(best, time.perf_counter() - started)
    return best, rows


def test_scatter_gather_speedup_gate():
    """>= 2x: 4-shard parallel scan+aggregate vs 1-shard, same I/O model."""
    rows = _scan_rows(SCAN_ROWS)
    single = SqlSession(_scan_database(rows))
    expected = single.query(AGGREGATE_SQL).rows

    sessions = {}
    for shards in (1, 4):
        cluster = ShardCluster.from_database(
            _scan_database(rows), shards=shards, partition="hash",
            columnar=True)
        cluster.executor.simulated_scan_mbps = SHARD_SCAN_MBPS
        sessions[shards] = ClusterSession(cluster)

    one_seconds, one_rows = _timed_query(sessions[1], AGGREGATE_SQL)
    four_seconds, four_rows = _timed_query(sessions[4], AGGREGATE_SQL)
    assert one_rows == expected
    assert four_rows == expected
    speedup = one_seconds / four_seconds

    report = ExperimentReport(
        "Cluster scatter-gather — parallel scan+aggregate",
        f"{SCAN_ROWS} rows, COUNT/SUM/MIN/MAX with a range predicate; "
        f"1-shard vs 4-shard cluster, each shard node modelled with a "
        f"{SHARD_SCAN_MBPS:g} MB/s scan disk (Figure 15's scans are "
        "disk-bound; fragment I/O overlaps across shards).")
    report.add("1-shard elapsed", "", round(one_seconds, 4), unit="s")
    report.add("4-shard elapsed", "", round(four_seconds, 4), unit="s")
    report.add("speedup", ">= 2x", f"{speedup:.1f}x")
    report.add("results identical to single node", "yes",
               "yes" if four_rows == expected else "NO")
    print_report(report)

    assert speedup >= 2.0, (
        f"4-shard cluster only {speedup:.2f}x over 1-shard")


def test_htm_cone_shard_pruning_gate():
    """>= 4x pruning: an HTM cone query touches <= shards/4 shards."""
    rng = random.Random(20020603)
    database = Database("bench_cluster_prune")
    table = database.create_table("PhotoObj", [
        bigint("objID"), floating("ra"), floating("dec"), bigint("htmID"),
        bigint("type"), bigint("mode"), floating("modelMag_r"),
    ], primary_key=PrimaryKey(["objID"]))
    rows = []
    for index in range(PRUNE_ROWS):
        ra = rng.uniform(183.0, 187.0)
        dec = rng.uniform(-1.5, 1.5)
        rows.append({"objID": index, "ra": ra, "dec": dec,
                     "htmID": lookup_id(ra, dec),
                     "type": rng.randrange(6), "mode": 1,
                     "modelMag_r": rng.uniform(14.0, 24.0)})
    table.insert_many(rows)
    table.create_index("ix_photoobj_htm", ["htmID"])
    database.analyze()

    reference = get_nearby_objects(database, 185.0, -0.5, 2.0)

    cluster = ShardCluster.from_database(_rebuild(rows), shards=PRUNE_SHARDS,
                                         partition="htm")
    executor = cluster.executor
    ranges = cover_circle(185.0, -0.5, 2.0)
    candidates = executor.cone_candidate_rows(ranges)
    nearby = nearby_from_candidates(candidates, 185.0, -0.5, 2.0)
    touched = executor.fragments_executed
    pruned = executor.fragments_pruned
    assert touched + pruned == PRUNE_SHARDS
    pruning_factor = PRUNE_SHARDS / max(1, touched)

    report = ExperimentReport(
        "Cluster shard pruning — HTM cone query",
        f"{PRUNE_ROWS} objects over a 4°x3° patch, {PRUNE_SHARDS} shards "
        "partitioned on htmID quantile ranges; a 2-arcmin cone search "
        "scatters only to the shards its HTM cover intersects.")
    report.add("shards total", "", PRUNE_SHARDS)
    report.add("shards touched", f"<= {PRUNE_SHARDS // 4}", touched)
    report.add("pruning factor (total/touched)", ">= 4x",
               f"{pruning_factor:.1f}x")
    report.add("cone results identical", "yes",
               "yes" if [r["objID"] for r in nearby]
               == [r["objID"] for r in reference] else "NO")
    print_report(report)

    assert [entry["objID"] for entry in nearby] == [
        entry["objID"] for entry in reference]
    assert pruning_factor >= 4.0, (
        f"cone touched {touched} of {PRUNE_SHARDS} shards "
        f"({pruning_factor:.1f}x)")


def _rebuild(rows: list[dict]) -> Database:
    database = Database("bench_cluster_prune_sharded")
    table = database.create_table("PhotoObj", [
        bigint("objID"), floating("ra"), floating("dec"), bigint("htmID"),
        bigint("type"), bigint("mode"), floating("modelMag_r"),
    ], primary_key=PrimaryKey(["objID"]))
    table.insert_many(rows)
    table.create_index("ix_photoobj_htm", ["htmID"])
    database.analyze()
    return database
