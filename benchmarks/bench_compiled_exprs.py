"""Compiled expression pipeline vs the interpreted evaluator.

Every row of a scan used to pay recursive ``Expression.evaluate``
dispatch plus a fresh ``RowScope``; hot operators now compile their
expressions once per execution into plain Python closures, and a
single-table scan→filter→project plan fuses into one tight loop over
the row dicts.  This benchmark measures both effects on a 50k-row
filter+project scan (the shape of the paper's "complex colour cut"
queries of §11) and the session plan cache on a hot repeated query.

Acceptance: the compiled+fused path is at least 2x the interpreted
path on the 50k-row scan.
"""

from __future__ import annotations

import random
import time

from conftest import print_report
from repro.bench import ExperimentReport
from repro.engine import (Database, Planner, PrimaryKey, SqlSession, bigint,
                          floating)
from repro.engine.sql import parse_select

ROW_COUNT = 50_000
SQL = ("select id, ra + dec as pos, modelmag_r * 2 - 1 as m2 "
       "from photoobj "
       "where modelmag_r > 15 and modelmag_r < 22 and flags & 3 = 1")


def _build_database(row_count: int = ROW_COUNT) -> Database:
    database = Database("bench_compiled")
    table = database.create_table("photoobj", [
        bigint("id"), floating("ra"), floating("dec"),
        bigint("flags"), floating("modelmag_r"),
    ], primary_key=PrimaryKey(["id"]))
    rng = random.Random(2002)
    table.insert_many([
        {"id": index,
         "ra": rng.uniform(0.0, 360.0),
         "dec": rng.uniform(-90.0, 90.0),
         "flags": rng.randrange(16),
         "modelmag_r": rng.uniform(14.0, 24.0)}
        for index in range(row_count)
    ])
    return database


def _best_of(thunk, repeats: int = 3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = thunk()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_compiled_scan_speedup_at_least_2x():
    database = _build_database()
    query = parse_select(SQL)
    interpreted_plan = Planner(database, enable_fusion=False).plan(query)
    compiled_plan = Planner(database).plan(query)

    interpreted_s, interpreted_result = _best_of(
        lambda: interpreted_plan.execute(compiled=False))
    compiled_s, compiled_result = _best_of(lambda: compiled_plan.execute())

    assert compiled_result.rows == interpreted_result.rows
    speedup = interpreted_s / compiled_s

    report = ExperimentReport(
        "Compiled expression pipeline — 50k-row filter+project scan",
        "Interpreted per-row Expression.evaluate vs compiled closures with "
        "the fused scan→filter→project loop.")
    report.add("interpreted elapsed", "", round(interpreted_s, 4), unit="s")
    report.add("compiled+fused elapsed", "", round(compiled_s, 4), unit="s")
    report.add("speedup", ">= 2x", f"{speedup:.1f}x")
    report.add("rows selected", "", len(compiled_result.rows))
    report.add("exprs compiled", "", compiled_result.statistics.exprs_compiled)
    print_report(report)

    assert speedup >= 2.0, f"compiled path only {speedup:.2f}x faster"


def test_compiled_without_fusion_still_faster():
    """Compiled closures alone (no fused loop) must not regress the scan."""
    database = _build_database(20_000)
    query = parse_select(SQL)
    plan = Planner(database, enable_fusion=False).plan(query)
    interpreted_s, _ = _best_of(lambda: plan.execute(compiled=False))
    compiled_s, _ = _best_of(lambda: plan.execute())
    report = ExperimentReport(
        "Compiled closures without fusion — 20k-row scan",
        "Same unfused plan, compiled vs interpreted expression evaluation.")
    report.add("interpreted elapsed", "", round(interpreted_s, 4), unit="s")
    report.add("compiled elapsed", "", round(compiled_s, 4), unit="s")
    report.add("speedup", "> 1x", f"{interpreted_s / compiled_s:.2f}x")
    print_report(report)
    assert compiled_s < interpreted_s


def test_plan_cache_hot_query():
    """The second execution of an identical batch skips lex/parse/plan."""
    database = _build_database(5_000)
    session = SqlSession(database)
    repeats = 50

    cold_s, _ = _best_of(lambda: session.query(SQL), repeats=1)
    assert session.plan_cache.misses == 1

    started = time.perf_counter()
    for _ in range(repeats):
        session.query(SQL)
    hot_s = (time.perf_counter() - started) / repeats
    assert session.plan_cache.hits == repeats
    assert session.planner.plans_built == 1  # never re-planned

    report = ExperimentReport(
        "Plan cache — hot repeated SkyServer query",
        "The SkyServer traffic of §7 repeats hot template queries; cached "
        "plans skip the lexer, parser and planner on every repeat.")
    report.add("first execution (parse+plan+run)", "", round(cold_s * 1e3, 3), unit="ms")
    report.add("cached execution (run only)", "", round(hot_s * 1e3, 3), unit="ms")
    report.add("cache hits", repeats, session.plan_cache.hits)
    print_report(report)
