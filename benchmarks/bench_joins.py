"""Vectorized batch hash join vs the row-at-a-time hash join.

PR 2 kept joins on the row path: every probe match merged two binding
dicts and re-bound a RowScope for the residual, the filters and the
aggregation above the join.  This benchmark measures the batch hash
join of PR 3 on the paper's canonical join shape (Figure 10 /
PhotoObj⋈SpecObj): a 50k-row photometric table filtered and joined
against a 5k-row spectroscopic table, aggregated at the top — the
whole chain staying on column buffers.

Acceptance: the batch hash join pipeline is at least 2x the row-path
hash join on the 50k⋈5k filter+join+aggregate query.
"""

from __future__ import annotations

import random
import time

from conftest import print_report
from repro.bench import ExperimentReport
from repro.engine import Database, Planner, PrimaryKey, bigint, floating
from repro.engine.explain import plan_operators
from repro.engine.sql import parse_select

PHOTO_ROWS = 50_000
SPEC_ROWS = 5_000

JOIN_SQL = ("select count(*) as n, avg(p.modelmag_r) as mean_r, avg(s.z) as mean_z "
            "from photoobj p join specobj s on p.specobjid = s.specobjid "
            "where p.modelmag_r between 15 and 22 and s.z > 0.02")


def _build_database(storage: str) -> Database:
    database = Database(f"bench_joins_{storage}")
    photo = database.create_table("photoobj", [
        bigint("id"), bigint("specobjid"), bigint("flags"), floating("modelmag_r"),
    ], primary_key=PrimaryKey(["id"]), storage=storage)
    spec = database.create_table("specobj", [
        bigint("specobjid"), floating("z"), bigint("specclass"),
    ], primary_key=PrimaryKey(["specobjid"]), storage=storage)
    rng = random.Random(2002)
    photo.insert_many([
        {"id": index,
         "specobjid": rng.randrange(SPEC_ROWS * 2),
         "flags": rng.randrange(16),
         "modelmag_r": rng.uniform(14.0, 24.0)}
        for index in range(PHOTO_ROWS)
    ])
    spec.insert_many([
        {"specobjid": index,
         "z": rng.uniform(0.0, 0.4),
         "specclass": rng.randrange(6)}
        for index in range(SPEC_ROWS)
    ])
    database.analyze()
    return database


def _best_of(thunk, repeats: int = 5):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = thunk()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_batch_hash_join_speedup_at_least_2x():
    """The acceptance gate: 50k⋈5k filter+join+aggregate, batch >= 2x row."""
    # Hash joins forced on both sides (no index on the join key anyway
    # once the planner sees how unselective an index probe would be).
    row_plan = Planner(_build_database("row"),
                       enable_index_join=False).plan(parse_select(JOIN_SQL))
    column_plan = Planner(_build_database("column"),
                          enable_index_join=False).plan(parse_select(JOIN_SQL))
    assert "Hash Join" in plan_operators(row_plan)
    assert "Batch Hash Join" in plan_operators(column_plan)

    row_s, row_result = _best_of(lambda: row_plan.execute())
    column_s, column_result = _best_of(lambda: column_plan.execute())
    assert column_result.rows == row_result.rows
    assert column_result.statistics.batches_processed > 0
    assert row_result.statistics.batches_processed == 0
    speedup = row_s / column_s

    report = ExperimentReport(
        "Batch hash join — 50k⋈5k filter+join+aggregate",
        "Row-path hash join (binding dicts, per-row scopes) vs the batch "
        "pipeline (vector key extraction, gathered column buffers, "
        "C-level reductions).")
    report.add("row hash join elapsed", "", round(row_s, 4), unit="s")
    report.add("batch hash join elapsed", "", round(column_s, 4), unit="s")
    report.add("speedup", ">= 2x", f"{speedup:.1f}x")
    report.add("joined rows", "", column_result.rows[0]["n"])
    report.add("batches", "", column_result.statistics.batches_processed)
    print_report(report)

    assert speedup >= 2.0, f"batch hash join only {speedup:.2f}x faster"


def test_cbo_join_estimates_are_sane():
    """ANALYZE-backed estimates land within 3x of the actual join output."""
    database = _build_database("column")
    plan = Planner(database, enable_index_join=False).plan(parse_select(JOIN_SQL))
    result = plan.execute()

    def find_join(operator):
        if operator.label.endswith("Hash Join"):
            return operator
        for child in operator.children():
            found = find_join(child)
            if found is not None:
                return found
        return None

    join = find_join(plan.root)
    assert join is not None and join.planner_rows is not None
    actual = join.actual_rows
    estimated = join.planner_rows
    ratio = max(estimated, actual) / max(1, min(estimated, actual))

    report = ExperimentReport(
        "Join cardinality estimation quality",
        "Histogram + distinct-count estimates vs the executed plan.")
    report.add("estimated join rows", "", estimated)
    report.add("actual join rows", "", actual)
    report.add("ratio", "<= 3x", f"{ratio:.2f}x")
    report.add("result", "", result.rows[0]["n"])
    print_report(report)

    assert ratio <= 3.0
