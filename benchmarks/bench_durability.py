"""Durable storage: fast reopen and the online DR1→DR2 release flip.

Section 8 of "When Database Systems Meet the Grid" describes the
operational side of SkyServer: the archive must survive restarts
without re-running the export pipeline, and a new data release goes
online while the old one keeps answering queries.  PR 9 adds the
durable segment format (checkpoints preserve encodings and zone maps,
so reopening is a header parse plus lazy reads) and the
``load_release`` flip, and this benchmark gates both:

* **reopen speedup** — reopening a checkpointed server from disk must
  be >= 5x faster than rebuilding the same database through the
  schema → loader path from the already-generated survey.  Reopening
  never re-encodes a column store and never rebuilds an index from
  scratch — it parses headers and replays an empty WAL tail.
* **online flip** — while a pooled server ingests and flips to a new
  release, every concurrently submitted query must succeed (queries
  admitted before the flip finish on the segments they hold; queries
  admitted after see the new release; none fail), and the twenty
  data-mining queries must return byte-identical rows before and
  after a flip to an identical release.
"""

from __future__ import annotations

import shutil
import tempfile
import time

from conftest import print_report
from repro.bench import ExperimentReport
from repro.engine.durable import DurabilityManager
from repro.loader import load_release_database
from repro.skyserver import SkyServer

#: Reopen must beat the loader path by at least this factor.
REOPEN_SPEEDUP_FLOOR = 5.0

#: Queries pumped through the pool while the release flip runs: an
#: index lookup, a selective scan and an aggregate, with a rotating
#: predicate so the result cache cannot absorb the load.
FLIP_LOAD_SQL = [
    "select count(*) as n from PhotoObj where htmid % 97 = {k}",
    "select objid, ra, dec from PhotoObj where objid % 997 = {k} "
    "order by objid asc",
    "select count(*) as n, min(z) as zmin from SpecObj where specobjid % 53 = {k}",
]


def _loader_path_seconds(output) -> tuple[float, object]:
    """Time the full schema -> loader rebuild of the bench survey."""
    started = time.perf_counter()
    database, _report = load_release_database(output, columnar=True)
    return time.perf_counter() - started, database


def test_durable_reopen_speedup_gate(bench_survey):
    """Reopening a checkpoint must be >= 5x faster than reloading."""
    root = tempfile.mkdtemp(prefix="bench-durable-")
    try:
        load_seconds, database = _loader_path_seconds(bench_survey)
        photoobj_rows = database.table("PhotoObj").row_count
        manager = DurabilityManager.attach(database, root)
        stats = manager.statistics()
        manager.close()

        open_seconds = float("inf")
        for _attempt in range(2):  # best-of-2 shields the gate from noise
            started = time.perf_counter()
            reopened = DurabilityManager.open(root)
            open_seconds = min(open_seconds, time.perf_counter() - started)
            assert (reopened.database.table("PhotoObj").row_count
                    == photoobj_rows)
            # The reopened store still answers queries (lazy segment reads).
            total = sum(
                1 for _ in reopened.database.table("PhotoObj").iter_rows())
            assert total == photoobj_rows
            reopened.close()

        speedup = load_seconds / max(open_seconds, 1e-9)
        report = ExperimentReport(
            "Durable reopen vs. loader rebuild",
            "Checkpointed on-disk segments reopen as a header parse plus "
            "lazy reads; the loader path re-runs schema creation, ingest, "
            "index builds and statistics.")
        report.add("loader rebuild", "minutes at archive scale",
                   f"{load_seconds:.2f}", unit="s")
        report.add("durable reopen", "seconds", f"{open_seconds:.2f}",
                   unit="s")
        report.add("reopen speedup", f">= {REOPEN_SPEEDUP_FLOOR:.0f}x",
                   f"{speedup:.1f}x")
        report.add("on-disk size", "n/a",
                   f"{stats['on_disk_bytes'] / 1e6:.1f}", unit="MB")
        print_report(report)
        assert speedup >= REOPEN_SPEEDUP_FLOOR, (
            f"reopen only {speedup:.1f}x faster than the loader path "
            f"(floor {REOPEN_SPEEDUP_FLOOR}x)")
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _fig13_fingerprint(server: SkyServer) -> dict[str, str]:
    """Byte-exact answers of the twenty data-mining queries."""
    fingerprint = {}
    for execution in server.run_all_data_mining_queries():
        fingerprint[execution.query_id] = repr(execution.result.rows)
    return fingerprint


def test_online_release_flip_gate(bench_survey):
    """Zero failed queries during the flip; fig13 byte-identical."""
    root = tempfile.mkdtemp(prefix="bench-flip-")
    server = None
    try:
        database, _report = load_release_database(bench_survey, columnar=True)
        server = SkyServer(database)
        server.survey_output = bench_survey
        server.make_durable(root)
        pool = server.start_pool(workers=4)

        before = _fig13_fingerprint(server)

        import threading

        flip_info = {}

        def _flip():
            # Same survey output -> an identical release: the flip
            # machinery runs for real, and correctness is byte-exact.
            flip_info.update(server.load_release(bench_survey))

        flipper = threading.Thread(target=_flip, name="release-flip")
        submitted = 0
        failed: list[str] = []
        flip_started = time.perf_counter()
        flipper.start()
        k = 0
        while flipper.is_alive():
            tickets = []
            for template in FLIP_LOAD_SQL:
                sql = template.format(k=k % 89)
                tickets.append((sql, pool.submit(sql)))
                submitted += 1
            k += 1
            for sql, ticket in tickets:
                try:
                    ticket.result(timeout=60)
                except Exception as exc:  # noqa: BLE001 - gate counts failures
                    failed.append(f"{sql!r}: {exc}")
        flipper.join()
        flip_seconds = time.perf_counter() - flip_started

        after = _fig13_fingerprint(server)
        mismatched = [qid for qid in before if before[qid] != after.get(qid)]

        report = ExperimentReport(
            "Online data release flip under load",
            "A pooled server ingests a new release into fresh segments and "
            "atomically swaps serving tables; admitted queries keep the "
            "segments they hold, so none fail.")
        report.add("flip wall time", "hours at archive scale",
                   f"{flip_seconds:.2f}", unit="s")
        report.add("queries during flip", "> 0", str(submitted))
        report.add("failed queries", "0", str(len(failed)))
        report.add("fig13 mismatches after flip", "0", str(len(mismatched)))
        report.add("serving release", "2", str(flip_info.get("release")))
        report.add("checkpointed after flip", "True",
                   str(flip_info.get("checkpointed")))
        print_report(report)

        assert submitted > 0, "the flip finished before any query ran"
        assert not failed, f"{len(failed)} queries failed during the flip: " \
                           f"{failed[:3]}"
        assert not mismatched, (
            f"fig13 answers changed across an identical-release flip: "
            f"{mismatched}")
        assert flip_info.get("release") == 2
        assert flip_info.get("checkpointed") is True
    finally:
        if server is not None:
            server.close()
        shutil.rmtree(root, ignore_errors=True)
