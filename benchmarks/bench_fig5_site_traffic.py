"""Figure 5 and §7: seven months of SkyServer web traffic.

"In the first 7 months it served about 2.5 million hits, a million page
views via 70 thousand sessions.  About 4% of these are to the Japanese
sub-web and 3% to the German sub-web.  The educational projects got
about 8% of the traffic: about 250 page views a day.  The server has
been up 99.83% of the time ...  The sustained usage is about 500 people
accessing about 4,000 pages per day ...  A TV show on October 2
generated a peak 20x the average load.  About 30% of the traffic is
from other sites crawling the SkyServer.  There are about 5 hacker
attacks per day."
"""

from __future__ import annotations

import datetime as dt

import pytest

from conftest import print_report
from repro.bench import ExperimentReport, same_order_of_magnitude
from repro.traffic import TrafficModelConfig, analyze, ascii_chart, generate_weblog

PAPER = {
    "hits": 2.5e6,
    "page_views": 1.0e6,
    "sessions": 70_000,
    "japanese": 0.04,
    "german": 0.03,
    "education": 0.08,
    "education_pages_per_day": 250,
    "crawler": 0.30,
    "uptime": 99.83,
    "sessions_per_day": 500,
    "pages_per_day": 4000,
    "tv_peak_ratio": 20.0,
    "hacker_per_day": 5.0,
}


@pytest.fixture(scope="module")
def traffic_report():
    log = generate_weblog(TrafficModelConfig(seed=2001))
    return analyze(log)


def test_figure5_site_traffic(benchmark, traffic_report):
    def regenerate_and_analyze():
        return analyze(generate_weblog(TrafficModelConfig(seed=2001)))

    report_measured = benchmark.pedantic(regenerate_and_analyze, rounds=3, iterations=1)

    report = ExperimentReport(
        "Figure 5 / §7 — site traffic over the first seven months",
        "Synthetic log calibrated to the published aggregates; the analyzer "
        "recomputes every statistic from the per-day records.")
    report.add("total hits", PAPER["hits"], report_measured.total_hits)
    report.add("total page views", PAPER["page_views"], report_measured.total_page_views)
    report.add("total sessions", PAPER["sessions"], report_measured.total_sessions)
    report.add("Japanese sub-web share", PAPER["japanese"],
               round(report_measured.japanese_page_fraction, 3))
    report.add("German sub-web share", PAPER["german"],
               round(report_measured.german_page_fraction, 3))
    report.add("education share", PAPER["education"],
               round(report_measured.education_page_fraction, 3))
    report.add("education page views / day", PAPER["education_pages_per_day"],
               round(report_measured.education_page_views_per_day))
    report.add("crawler share of hits", PAPER["crawler"],
               round(report_measured.crawler_hit_fraction, 3))
    report.add("uptime percent", PAPER["uptime"], round(report_measured.uptime_percent, 2))
    report.add("sustained sessions / day", PAPER["sessions_per_day"],
               round(report_measured.mean_sessions_per_day))
    report.add("sustained page views / day", PAPER["pages_per_day"],
               round(report_measured.mean_page_views_per_day))
    report.add("TV-show peak / mean", PAPER["tv_peak_ratio"],
               round(report_measured.peak_to_mean_page_ratio, 1))
    report.add("hacker attempts / day", PAPER["hacker_per_day"],
               round(report_measured.hacker_attempts_per_day, 1))
    print_report(report)

    print(ascii_chart(report_measured))

    assert same_order_of_magnitude(PAPER["hits"], report_measured.total_hits, tolerance=2.0)
    assert same_order_of_magnitude(PAPER["page_views"], report_measured.total_page_views,
                                   tolerance=2.0)
    assert abs(report_measured.total_sessions - PAPER["sessions"]) / PAPER["sessions"] < 0.2
    assert report_measured.peak_day == dt.date(2001, 10, 2)
    assert report_measured.crawler_hit_fraction == pytest.approx(PAPER["crawler"], abs=0.06)


def test_figure5_outages_visible_in_daily_series(traffic_report):
    by_date = {point.date: point for point in traffic_report.daily}
    for outage in (dt.date(2001, 6, 22), dt.date(2001, 7, 26)):
        day_before = by_date[outage - dt.timedelta(days=1)]
        day_of = by_date[outage]
        assert day_of.hits < day_before.hits
