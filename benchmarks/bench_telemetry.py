"""Telemetry overhead gate: always-on observability must stay ~free.

The observability layer's contract has two halves.  Correctness:
tracing off produces byte-identical plans and results, tracing on
changes only counters — checked here by fingerprinting the fig13
twenty-query suite under both configurations.  Cost: the suite with
tracing + the durable query log enabled must finish within 10% (plus a
small absolute slack for timer noise) of the dark run, and the
Figure-5-style analysis over the log the run just produced must come
back in well under a second.
"""

from __future__ import annotations

import time

from conftest import print_report
from repro.bench import ExperimentReport
from repro.skyserver import QueryLimits, SkyServer, TelemetryConfig
from repro.telemetry import TRACER
from repro.traffic import analyze_query_log

#: Relative overhead budget for tracing + query logging, plus an
#: absolute slack so timer jitter on a fast suite cannot flake the gate.
OVERHEAD_LIMIT = 1.10
ABS_SLACK_SECONDS = 0.25
REPEATS = 2


def _suite_fingerprint(executions) -> dict[str, str]:
    return {execution.query_id: repr(execution.result.rows)
            for execution in executions}


def _run_suite(server: SkyServer, *, tracing: bool):
    """One timed pass over the twenty queries with the tracer pinned.

    The tracer flag is process-global (last configured server wins), so
    each measured pass pins it to the configuration under test.
    """
    TRACER.enabled = tracing
    started = time.perf_counter()
    executions = server.run_all_data_mining_queries()
    elapsed = time.perf_counter() - started
    return elapsed, executions


def test_telemetry_overhead_gate(bench_database):
    server_off = SkyServer(bench_database, limits=QueryLimits.private(),
                           telemetry=TelemetryConfig(tracing=False,
                                                     query_log=False))
    server_on = SkyServer(bench_database, limits=QueryLimits.private(),
                          telemetry=TelemetryConfig(tracing=True,
                                                    query_log=True))
    try:
        # Interleave off/on passes and keep the best of each, so slow
        # outliers (GC, page cache warm-up) cannot bias one side.
        off_best = on_best = float("inf")
        off_fingerprint = on_fingerprint = None
        for _ in range(REPEATS):
            elapsed, executions = _run_suite(server_off, tracing=False)
            off_best = min(off_best, elapsed)
            off_fingerprint = _suite_fingerprint(executions)
            elapsed, executions = _run_suite(server_on, tracing=True)
            on_best = min(on_best, elapsed)
            on_fingerprint = _suite_fingerprint(executions)
    finally:
        TRACER.enabled = server_on.telemetry.tracing

    assert on_fingerprint == off_fingerprint, (
        "telemetry changed query answers: " + ", ".join(
            sorted(key for key in on_fingerprint
                   if on_fingerprint[key] != off_fingerprint[key])))

    # The traced run produced real traces and a queryable durable log.
    assert TRACER.query_ids(), "tracing enabled but no traces recorded"
    log_rows = server_on.query_log_rows()
    assert len(log_rows) >= REPEATS * 20

    analysis_started = time.perf_counter()
    traffic = analyze_query_log(log_rows)
    analysis_seconds = time.perf_counter() - analysis_started
    assert traffic.total_queries == len(log_rows)
    assert traffic.failed == 0
    assert analysis_seconds < 1.0

    overhead = on_best / off_best if off_best else 1.0
    budget = off_best * OVERHEAD_LIMIT + ABS_SLACK_SECONDS

    report = ExperimentReport(
        "Telemetry overhead — fig13 twenty-query suite, dark vs instrumented",
        f"Best of {REPEATS} interleaved passes; instrumented = trace spans "
        "+ latency histograms + the durable QueryLog appended per "
        "statement.  Answers are byte-identical; the cost budget is "
        f"{OVERHEAD_LIMIT:.2f}x + {ABS_SLACK_SECONDS:g}s slack.")
    report.add("suite elapsed, telemetry off", "", round(off_best, 4), unit="s")
    report.add("suite elapsed, telemetry on", "", round(on_best, 4), unit="s")
    report.add("overhead", f"<= {OVERHEAD_LIMIT:.2f}x",
               f"{overhead:.3f}x")
    report.add("fig13 answers changed", "0", "0")
    report.add("queries logged", "", len(log_rows))
    report.add("p95 logged elapsed", "",
               round(traffic.p95_elapsed_ms, 3), unit="ms")
    report.add("log analysis time", "< 1 s",
               round(analysis_seconds * 1000.0, 3), unit="ms")
    print_report(report)

    assert on_best <= budget, (
        f"telemetry overhead {overhead:.3f}x exceeds the gate "
        f"({on_best:.3f}s vs budget {budget:.3f}s)")
