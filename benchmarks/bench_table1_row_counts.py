"""Table 1: record counts and byte sizes of the major tables.

The paper's Table 1 lists the Early Data Release's row counts and sizes
(Field 14k/60MB ... Neighbors 111M/5GB ...) and notes that "indices
approximately double the space".  The reproduction loads a survey at a
declared scale factor, so the comparison is on the *ratios* between
tables (rows per PhotoObj row, bytes per row) and on the index-space
overhead, not on absolute sizes.
"""

from __future__ import annotations


from conftest import print_report
from repro.bench import ExperimentReport

#: Table 1 of the paper: records and data bytes.
PAPER_TABLE1 = {
    "Field": (14_000, 60e6),
    "Frame": (73_000, 6e9),
    "PhotoObj": (14_000_000, 31e9),
    "Profile": (14_000_000, 9e9),
    "Neighbors": (111_000_000, 5e9),
    "Plate": (98, 80e3),
    "SpecObj": (63_000, 1e9),
    "SpecLine": (1_700_000, 225e6),
    "SpecLineIndex": (1_800_000, 142e6),
    "xcRedShift": (1_900_000, 157e6),
    "elRedShift": (51_000, 3e6),
}


def build_size_report(database):
    return {entry["table"]: entry for entry in database.size_report()}


def test_table1_row_counts_and_sizes(benchmark, bench_database, bench_config):
    sizes = benchmark.pedantic(build_size_report, args=(bench_database,),
                               rounds=3, iterations=1)

    report = ExperimentReport(
        "Table 1 — records and bytes in the major tables",
        f"Synthetic survey at scale {bench_config.scale} of the EDR; "
        "paper counts are scaled by that factor for comparison.")
    scale = bench_config.scale
    photo_measured = sizes["PhotoObj"]["records"]
    photo_paper = PAPER_TABLE1["PhotoObj"][0]
    for table, (paper_records, paper_bytes) in PAPER_TABLE1.items():
        measured = sizes.get(table, {"records": 0, "data_bytes": 0})
        report.add(f"{table} records (scaled)", paper_records * scale, measured["records"])
        report.add(f"{table} rows per PhotoObj row", paper_records / photo_paper,
                   measured["records"] / photo_measured if photo_measured else 0.0)
    paper_photo_row_bytes = PAPER_TABLE1["PhotoObj"][1] / PAPER_TABLE1["PhotoObj"][0]
    measured_photo_row_bytes = (sizes["PhotoObj"]["data_bytes"] / photo_measured
                                if photo_measured else 0.0)
    report.add("PhotoObj bytes per row", paper_photo_row_bytes, measured_photo_row_bytes,
               unit="bytes", note="paper ~2KB per ~400-attribute record")
    total_data = sum(entry["data_bytes"] for entry in sizes.values())
    total_index = sum(entry["index_bytes"] for entry in sizes.values())
    report.add("index space / data space", 1.0,
               total_index / total_data if total_data else 0.0,
               note="paper: indices approximately double the space")
    print_report(report)

    # Structural assertions: the relative shape of Table 1 must hold.
    assert sizes["Profile"]["records"] == sizes["PhotoObj"]["records"]
    assert sizes["Frame"]["records"] == 5 * sizes["Field"]["records"]
    assert sizes["SpecLine"]["records"] >= 20 * sizes["SpecObj"]["records"]
    assert sizes["Neighbors"]["records"] >= 3 * sizes["PhotoObj"]["records"]
    assert 0.2 <= total_index / total_data <= 2.5


def test_table1_photoobj_dominates_storage(benchmark, bench_database):
    sizes = benchmark.pedantic(build_size_report, args=(bench_database,),
                               rounds=1, iterations=1)
    photo_bytes = sizes["PhotoObj"]["data_bytes"]
    spectro_bytes = sum(sizes[name]["data_bytes"]
                        for name in ("SpecObj", "SpecLine", "SpecLineIndex",
                                     "xcRedShift", "elRedShift", "Plate"))
    # As in the paper, the photometric catalog dwarfs the spectroscopic side.
    assert photo_bytes > spectro_bytes
