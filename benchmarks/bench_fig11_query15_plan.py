"""Figure 11 and §11: Query 15A — find all (slow-moving) asteroids.

"SQL Server selects a parallel sequential scan of the PhotoObj table
(there is no covering index).  The query uses 72 seconds of CPU time in
162 seconds of elapsed time to evaluate the predicate on each of the
14M objects.  It finds 1,303 candidates."
"""

from __future__ import annotations


from conftest import print_report
from repro.bench import ExperimentReport
from repro.engine.explain import plan_operators

PAPER_CANDIDATES = 1303
PAPER_TABLE_ROWS = 14_000_000
PAPER_CPU_SECONDS = 72.0
PAPER_ELAPSED_SECONDS = 162.0


def test_figure11_query15a(benchmark, bench_server, bench_database):
    execution = benchmark.pedantic(
        bench_server.run_data_mining_query, args=("Q15A",), rounds=3, iterations=1)

    labels = plan_operators(execution.result.plan)
    photo_rows = bench_database.table("PhotoObj").row_count
    statistics = execution.result.statistics

    report = ExperimentReport(
        "Figure 11 / §11 — Query 15A (find all asteroids by velocity)",
        "A sequential scan computing rowv^2 + colv^2 on every PhotoObj row.")
    report.add("candidates found", PAPER_CANDIDATES, execution.row_count,
               note="asteroids are over-represented at reproduction scale (DESIGN.md)")
    report.add("candidate fraction of table", PAPER_CANDIDATES / PAPER_TABLE_ROWS,
               execution.row_count / photo_rows)
    report.add("rows scanned", PAPER_TABLE_ROWS, statistics.rows_scanned)
    report.add("plan is a full table scan", "yes",
               "yes" if "Table Scan" in labels else "no")
    report.add("CPU seconds", PAPER_CPU_SECONDS, round(execution.cpu_seconds, 3), unit="s")
    report.add("elapsed seconds", PAPER_ELAPSED_SECONDS, round(execution.elapsed_seconds, 3),
               unit="s")
    report.add_note("plan:\n" + execution.plan_text())
    print_report(report)

    assert "Table Scan" in labels
    assert statistics.rows_scanned == photo_rows
    assert execution.row_count > 0
    # Every returned candidate satisfies the velocity window.
    for row in execution.result.rows:
        assert 50.0 <= row["velocity"] ** 2 <= 1000.0 + 1e-9


def test_figure11_url_column_is_usable(bench_server):
    execution = bench_server.run_data_mining_query("Q15A")
    assert all(row["Url"].startswith("http://") for row in execution.result.rows)
