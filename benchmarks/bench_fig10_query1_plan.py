"""Figure 10 and §11: Query 1 — nearby unsaturated galaxies.

"This query returns 19 galaxies in 50 milliseconds of CPU time and 0.19
seconds of elapsed time."  The plan nested-loop joins the output of the
spatial table-valued function with the PhotoObj table, sorts by
distance and inserts into a ##results table.
"""

from __future__ import annotations


from conftest import print_report
from repro.bench import ExperimentReport
from repro.engine.explain import plan_operators
from repro.skyserver import query_by_id

PAPER_ROWS = 19
PAPER_CPU_SECONDS = 0.050
PAPER_ELAPSED_SECONDS = 0.19
PAPER_TVF_ROWS = 22


def test_figure10_query1(benchmark, bench_server):
    execution = benchmark.pedantic(
        bench_server.run_data_mining_query, args=("Q1",), rounds=5, iterations=1)

    plan_text = execution.plan_text()
    labels = plan_operators(execution.result.plan)

    report = ExperimentReport(
        "Figure 10 / §11 — Query 1 (galaxies near (185, -0.5) without saturated pixels)",
        query_by_id("Q1").title)
    report.add("rows returned", PAPER_ROWS, execution.row_count)
    report.add("CPU seconds", PAPER_CPU_SECONDS, round(execution.cpu_seconds, 4), unit="s",
               note="paper hardware: 2x1GHz; reproduction: Python engine")
    report.add("elapsed seconds", PAPER_ELAPSED_SECONDS, round(execution.elapsed_seconds, 4),
               unit="s")
    report.add("plan: TVF feeding a nested-loop join", "yes",
               "yes" if ("Table-valued Function" in labels
                         and any("Nested Loop" in label for label in labels)) else "no")
    report.add("plan: sort before insert", "yes",
               "yes" if "Sort" in labels and "Table Insert" in labels else "no")
    report.add_note("plan:\n" + plan_text)
    print_report(report)

    assert execution.row_count >= 5
    assert "Table-valued Function" in labels
    assert any("Nested Loop" in label for label in labels)
    assert "Sort" in labels
    assert "Table Insert" in labels
    # The ##results table was materialised by the INTO clause.
    assert bench_server.database.has_table("##results")


def test_figure10_results_are_sorted_by_distance(bench_server):
    execution = bench_server.run_data_mining_query("Q1")
    distances = [row["distance"] for row in execution.result.rows]
    assert distances == sorted(distances)
    assert all(distance <= 1.0 for distance in distances)
