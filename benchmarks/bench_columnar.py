"""Columnar storage + vectorized batch execution vs the row path.

PR 1 fused single-table scans into one compiled loop over row dicts;
the per-row Python overhead (dict reads, closure calls) became the
dominant cost.  This benchmark measures the columnar rewrite: the same
data in a :class:`ColumnStore` (per-column ``array.array`` buffers)
swept by generated batch loops — selection vectors from one list
comprehension per predicate, aggregates reduced with C-level builtins.

Acceptance: the columnar vectorized path is at least 2x the row path
(compiled + fused, PR 1's best) on the 50k-row filter+aggregate scan,
and at least 2x on the 50k-row filter+project scan.
"""

from __future__ import annotations

import random
import time

from conftest import print_report
from repro.bench import ExperimentReport
from repro.engine import Database, Planner, PrimaryKey, SqlSession, bigint, floating
from repro.engine.sql import parse_select

ROW_COUNT = 50_000
SCAN_SQL = ("select id, ra + dec as pos, modelmag_r * 2 - 1 as m2 "
            "from photoobj "
            "where modelmag_r > 15 and modelmag_r < 22 and flags & 3 = 1")
AGG_SQL = ("select count(*) as n, avg(modelmag_r) as mean_r, "
           "min(modelmag_r) as lo, max(modelmag_r) as hi "
           "from photoobj "
           "where modelmag_r > 15 and modelmag_r < 22 and flags & 3 = 1")


def _build_database(storage: str, row_count: int = ROW_COUNT) -> Database:
    database = Database(f"bench_columnar_{storage}")
    table = database.create_table("photoobj", [
        bigint("id"), floating("ra"), floating("dec"),
        bigint("flags"), floating("modelmag_r"),
    ], primary_key=PrimaryKey(["id"]), storage=storage)
    rng = random.Random(2002)
    table.insert_many([
        {"id": index,
         "ra": rng.uniform(0.0, 360.0),
         "dec": rng.uniform(-90.0, 90.0),
         "flags": rng.randrange(16),
         "modelmag_r": rng.uniform(14.0, 24.0)}
        for index in range(row_count)
    ])
    return database


def _best_of(thunk, repeats: int = 5):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = thunk()
        best = min(best, time.perf_counter() - started)
    return best, result


def _compare(sql: str):
    row_plan = Planner(_build_database("row")).plan(parse_select(sql))
    column_plan = Planner(_build_database("column")).plan(parse_select(sql))
    row_s, row_result = _best_of(lambda: row_plan.execute())
    column_s, column_result = _best_of(lambda: column_plan.execute())
    assert column_result.rows == row_result.rows
    assert column_result.statistics.batches_processed > 0
    assert row_result.statistics.batches_processed == 0
    return row_s, column_s, column_result


def test_columnar_aggregate_speedup_at_least_2x():
    """The acceptance gate: 50k-row filter+aggregate, columnar >= 2x row."""
    row_s, column_s, result = _compare(AGG_SQL)
    speedup = row_s / column_s

    report = ExperimentReport(
        "Columnar vectorized aggregation — 50k-row filter+aggregate scan",
        "Row path (compiled + fused loop over row dicts) vs the columnar "
        "batch pipeline (generated selection loop, C-level reductions).")
    report.add("row path elapsed", "", round(row_s, 4), unit="s")
    report.add("columnar elapsed", "", round(column_s, 4), unit="s")
    report.add("speedup", ">= 2x", f"{speedup:.1f}x")
    report.add("batches", "", result.statistics.batches_processed)
    report.add("mean_r", "", round(result.rows[0]["mean_r"], 4))
    print_report(report)

    assert speedup >= 2.0, f"columnar aggregation only {speedup:.2f}x faster"


def test_columnar_scan_speedup_at_least_2x():
    """50k-row filter+project: batch selection + projection vs the fused loop."""
    row_s, column_s, result = _compare(SCAN_SQL)
    speedup = row_s / column_s

    report = ExperimentReport(
        "Columnar vectorized scan — 50k-row filter+project",
        "The fused row-dict loop of PR 1 vs selection vectors and "
        "vectorized projections over column buffers.")
    report.add("row path elapsed", "", round(row_s, 4), unit="s")
    report.add("columnar elapsed", "", round(column_s, 4), unit="s")
    report.add("speedup", ">= 2x", f"{speedup:.1f}x")
    report.add("rows selected", "", len(result.rows))
    print_report(report)

    assert speedup >= 2.0, f"columnar scan only {speedup:.2f}x faster"


def test_columnar_session_counters():
    """The session distinguishes batch from row executions (QA counters)."""
    database = _build_database("column", row_count=5_000)
    session = SqlSession(database)
    session.query(AGG_SQL)
    statistics = session.execution_mode_statistics()
    assert statistics["batch_executions"] == 1
    assert statistics["batches_processed"] >= 1

    report = ExperimentReport(
        "Batch execution counters",
        "site_statistics() reports how much traffic the vectorized "
        "pipeline absorbs.")
    for key, value in statistics.items():
        report.add(key, "", value)
    print_report(report)
