"""Figure 12 and §11: the fast-moving (NEO) pair query, with and without the index.

"The sql query optimizer chooses an index scan (since there is a
covering index for the attributes).  It does a nested loops join of the
red and green candidate objects ...  Using the index, the query finds 4
objects in 55 seconds elapsed and 51 seconds of CPU time.  Without the
index the query takes about 10 minutes — since it is nested-loops join
of two table scans."
"""

from __future__ import annotations


from conftest import print_report
from repro.bench import ExperimentReport
from repro.engine.explain import plan_operators
from repro.schema.indices import standard_indices

PAPER_PAIRS = 4
PAPER_WITH_INDEX_SECONDS = 55.0
PAPER_WITHOUT_INDEX_SECONDS = 600.0


def run_q15b(server):
    return server.run_data_mining_query("Q15B")


def test_figure12_neo_query_with_index(benchmark, bench_server):
    execution = benchmark.pedantic(run_q15b, args=(bench_server,), rounds=3, iterations=1)
    labels = plan_operators(execution.result.plan)

    report = ExperimentReport(
        "Figure 12 / §11 — NEO pair query with the covering index",
        "Nested-loop join of indexed red and green candidate sets.")
    report.add("pairs found", PAPER_PAIRS, execution.row_count)
    report.add("elapsed seconds", PAPER_WITH_INDEX_SECONDS,
               round(execution.elapsed_seconds, 3), unit="s")
    report.add("plan uses indexes", "yes",
               "yes" if any("Index" in label for label in labels) else "no")
    report.add_note("plan:\n" + execution.plan_text())
    print_report(report)

    assert 1 <= execution.row_count <= 12
    assert any("Index" in label for label in labels)


def test_figure12_index_vs_no_index_speedup(benchmark, bench_server, bench_database):
    """Drop the PhotoObj secondary indices and re-run: the paper's ~10x slowdown.

    Without the covering index SQL Server 2000 fell back to a
    nested-loops join of two table scans; the reproduction reproduces
    that plan by disabling hash joins for the no-index run (our planner
    would otherwise pick a hash join, which SQL Server did not).
    """
    import time

    from repro.engine import SqlSession
    from repro.engine.planner import Planner
    from repro.skyserver.queries import QUERY_15B_SQL

    with_index = benchmark.pedantic(run_q15b, args=(bench_server,), rounds=1, iterations=1)

    photo = bench_database.table("PhotoObj")
    dropped = [name for name in list(photo.indexes) if not name.lower().startswith("pk_")]
    saved_definitions = {definition.name: definition for definition in standard_indices()
                         if definition.table == "PhotoObj"}
    for name in dropped:
        photo.drop_index(name)
    try:
        session = SqlSession(bench_database,
                             planner=Planner(bench_database, enable_hash_join=False))
        started = time.perf_counter()
        no_index_result = session.query(QUERY_15B_SQL)
        without_index_elapsed = time.perf_counter() - started
    finally:
        for name in dropped:
            definition = saved_definitions.get(name)
            if definition is not None:
                photo.create_index(definition.name, list(definition.key_columns),
                                   unique=definition.unique,
                                   included_columns=list(definition.included_columns))

    class _NoIndexExecution:
        row_count = len(no_index_result.rows)
        elapsed_seconds = without_index_elapsed

    without_index = _NoIndexExecution()
    speedup = without_index.elapsed_seconds / max(with_index.elapsed_seconds, 1e-9)
    report = ExperimentReport(
        "Figure 12 ablation — covering index vs nested-loop join of table scans",
        "The same SQL text, with the PhotoObj secondary indices dropped.")
    report.add("pairs found (both plans)", PAPER_PAIRS,
               f"{with_index.row_count} / {without_index.row_count}")
    report.add("elapsed with index", PAPER_WITH_INDEX_SECONDS,
               round(with_index.elapsed_seconds, 3), unit="s")
    report.add("elapsed without index", PAPER_WITHOUT_INDEX_SECONDS,
               round(without_index.elapsed_seconds, 3), unit="s")
    report.add("slowdown without index", PAPER_WITHOUT_INDEX_SECONDS / PAPER_WITH_INDEX_SECONDS,
               round(speedup, 2), unit="x")
    print_report(report)

    assert with_index.row_count == without_index.row_count
    assert speedup > 1.5
