"""Site operations: traffic analysis (Figure 5) and the hardware throughput model (Figure 15).

Run with::

    python examples/site_operations.py
"""

from __future__ import annotations

from repro.iosim import figure15_table, saturation_points, ServerHardware, \
    figure15_configurations, sweep_figure15
from repro.traffic import TrafficModelConfig, analyze, ascii_chart, generate_weblog


def main() -> None:
    print("Seven months of synthetic SkyServer web traffic (June 2001 - February 2002):")
    log = generate_weblog(TrafficModelConfig())
    report = analyze(log)
    for metric, value in report.summary_rows():
        print(f"  {metric:<34s} {value}")

    print()
    print(ascii_chart(report))

    print("\nSequential-scan bandwidth vs disk configuration (the Figure 15 model):")
    predictions = sweep_figure15()
    print(figure15_table(predictions))
    annotations = saturation_points(ServerHardware(), figure15_configurations())
    print(f"\n  one SCSI controller saturates at {annotations.one_controller_saturates_at_disks} disks")
    print(f"  SQL's record processing saturates the CPUs at "
          f"{annotations.sql_cpu_saturates_at_disks} disks (~331 MB/s, 75% CPU)")
    print("\n  (the paper's goal was 50 MB/s; the measured system exceeded it by 500%)")


if __name__ == "__main__":
    main()
