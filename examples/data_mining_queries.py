"""Run the 20 astronomy data-mining queries and print the Figure 13 timing table.

Run with::

    python examples/data_mining_queries.py [scale]

``scale`` is the fraction of the Early Data Release to synthesise
(default 0.001, about 17 000 catalog rows).
"""

from __future__ import annotations

import sys

from repro.bench import QueryTimingTable, Timing, ascii_series
from repro.pipeline import SurveyConfig
from repro.skyserver import SkyServer


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.001
    print(f"Building a synthetic SkyServer at scale {scale} of the Early Data Release...")
    server, _output = SkyServer.from_survey(SurveyConfig(scale=scale, seed=2002))

    print("Running the 20 data-mining queries (plus the Q10A/Q15A/Q15B variants)...\n")
    executions = server.run_all_data_mining_queries()

    timing_table = QueryTimingTable()
    for execution in executions:
        timing_table.add(execution.query_id,
                         Timing(execution.elapsed_seconds, execution.cpu_seconds),
                         execution.row_count)
        print(f"{execution.query_id:>5s}  {execution.query.category:<16s} "
              f"rows={execution.row_count:<7d} elapsed={execution.elapsed_seconds:8.3f}s   "
              f"{execution.query.title[:60]}")

    print("\nFigure 13 (reproduction): per-query CPU and elapsed time, fastest first")
    print(timing_table.render())

    print("\nElapsed-time series (log bars):")
    print(ascii_series([execution.query_id for execution in executions],
                       [execution.elapsed_seconds for execution in executions]))

    print("\nThe three queries the paper works through in detail:")
    for query_id in ("Q1", "Q15A", "Q15B"):
        execution = next(e for e in executions if e.query_id == query_id)
        print(f"\n--- {query_id}: {execution.query.title} ---")
        print(execution.plan_text())


if __name__ == "__main__":
    main()
