"""The Personal SkyServer: carve out a laptop-sized subset and query it (paper §10).

Run with::

    python examples/personal_skyserver.py
"""

from __future__ import annotations

from repro.pipeline import SurveyConfig
from repro.skyserver import SkyServer, extract_personal_skyserver, render_grid


def main() -> None:
    print("Building the full (reproduction-scale) public SkyServer ...")
    public, _output = SkyServer.from_survey(
        SurveyConfig(scale=0.0006, seed=4, density_per_sq_deg=9000.0))
    full_stats = public.site_statistics()
    print(f"  total size: {full_stats['total_bytes'] / 1e6:.1f} MB")

    print("\nExtracting the Personal SkyServer: everything inside a small square "
          "around (185, -0.5) ...")
    personal, summary = extract_personal_skyserver(
        public.database, center_ra=185.0, center_dec=-0.5, size_degrees=0.15)
    print(f"  PhotoObj subset: {summary.row_counts['PhotoObj']} of "
          f"{summary.source_row_counts['PhotoObj']} rows "
          f"({summary.subset_fraction('PhotoObj'):.1%})")
    print(f"  personal database size: {summary.bytes_total / 1e6:.1f} MB "
          "(the paper's subset fits on a CD)")
    for table, count in sorted(summary.row_counts.items()):
        print(f"    {table:<14s} {count:>7d} rows")

    print("\nThe personal copy answers the same queries as the public server:")
    laptop = SkyServer(personal)
    result = laptop.query("""
        select top 5 objID, modelMag_r, petroRad_r
        from Galaxy
        order by modelMag_r
    """)
    print(render_grid(result))

    print("A cone search on the laptop copy:")
    for row in laptop.cone_search(185.0, -0.5, 0.5)[:5]:
        print(f"  objID {row['objID']}  distance {row['distance']:.3f}'")

    print("\nEvery classroom can have a mini-SkyServer per student.")


if __name__ == "__main__":
    main()
