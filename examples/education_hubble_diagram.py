"""The education projects: the student Hubble diagram and Old-Time Astronomy (paper §6).

Run with::

    python examples/education_hubble_diagram.py
"""

from __future__ import annotations

from repro.pipeline import SurveyConfig
from repro.skyserver import (SkyServer, hubble_diagram, old_time_astronomy_targets,
                             project_catalog)


def main() -> None:
    print("Building the classroom SkyServer ...")
    server, _output = SkyServer.from_survey(
        SurveyConfig(scale=0.0006, seed=6, density_per_sq_deg=9000.0))

    print("\nThe education project catalog (audience ladder of §6):")
    for entry in project_catalog():
        teacher = "teacher site" if entry.teacher_site else "no teacher site"
        print(f"  [{entry.level:<22s}] {entry.name:<22s} ({teacher})")
        print(f"      {entry.description}")

    print("\nThe student Hubble diagram (Figure 4, right): redshift vs magnitude "
          "for nine galaxies with spectra")
    diagram = hubble_diagram(server, count=9)
    print(f"  {'objID':>16s} {'redshift':>9s} {'magnitude':>10s} {'velocity km/s':>14s}")
    for point in diagram.points:
        print(f"  {point.obj_id:16d} {point.redshift:9.4f} {point.magnitude:10.2f} "
              f"{point.velocity_km_s:14.0f}")
    slope = diagram.slope_mag_per_dex()
    print(f"\n  least-squares slope: {slope:.2f} magnitudes per decade of redshift")
    print("  fainter galaxies recede faster -> the universe is expanding: "
          f"{'yes' if diagram.is_expanding() else 'not detected'}")

    print("\nOld-Time Astronomy sketching targets (bright, extended galaxies):")
    for target in old_time_astronomy_targets(server, count=5):
        print(f"  objID {target.obj_id}  r={target.magnitude:.2f}  "
              f"radius={target.petro_radius:.1f}\"  {target.explorer_url}")

    print("\nStudents examine exactly the same data as professional astronomers.")


if __name__ == "__main__":
    main()
