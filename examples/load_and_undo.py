"""The loader workflow: CSV export, load steps, a failure, UNDO, fix, reload.

Run with::

    python examples/load_and_undo.py

This reproduces the operations workflow of §9.4 / Figure 9: the
pipeline writes CSV files, the loader runs one DTS-style step per table
while writing loadEvents records, a deliberately corrupted file makes
one step fail, and the operator undoes the step, fixes the file and
re-executes it.
"""

from __future__ import annotations

import csv
import tempfile
from pathlib import Path

from repro.loader import LoadStep, SkyServerLoader
from repro.pipeline import SurveyConfig, SyntheticSurvey
from repro.schema import create_skyserver_database


def corrupt_field_csv(path: Path) -> None:
    """Duplicate the first data row so the Field load step violates its primary key."""
    rows = list(csv.reader(path.open()))
    rows.append(rows[1])
    with path.open("w", newline="") as handle:
        csv.writer(handle).writerows(rows)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="skyserver_load_"))
    print("Generating a small synthetic survey and exporting CSV files "
          f"(the pipeline -> loader hand-off) to {workdir} ...")
    output = SyntheticSurvey(SurveyConfig(scale=0.0004, seed=9,
                                          density_per_sq_deg=6000.0)).run()
    paths = output.export_csv(workdir)
    print(f"  wrote {len(paths)} CSV files")

    print("\nCorrupting Field.csv so its load step fails ...")
    corrupt_field_csv(paths["Field"])

    database = create_skyserver_database(with_indices=False)
    loader = SkyServerLoader(database)

    print("Loading the corrupted Field step:")
    bad_result, bad_event = loader.run_step(LoadStep.from_csv("Field", paths["Field"]))
    print(f"  status: {'OK' if bad_result.succeeded else 'FAILED'} — {bad_result.error}")

    print("\nThe loadEvents table (what the Figure 9 web page shows):")
    for event in loader.load_events():
        print(f"  event {event.event_id}: {event.table_name:<10s} {event.status:<8s} "
              f"{event.inserted_rows}/{event.source_rows} rows  {event.message[:60]}")

    print("\nPressing UNDO on the failed step ...")
    removed = loader.undo(bad_event)
    print(f"  removed {removed} rows; Field now has {database.table('Field').row_count} rows")

    print("\nFixing the data (regenerating the CSV) and re-running the whole load ...")
    output.export_csv(workdir)        # re-export clean files
    report = loader.load_directory(workdir)
    print("  " + report.summary())
    if report.validation is not None:
        print("  validation: " + report.validation.summary())

    print("\nFinal loadEvents trail:")
    for event in loader.load_events():
        print(f"  event {event.event_id}: {event.table_name:<14s} {event.status:<8s} "
              f"{event.inserted_rows} rows")


if __name__ == "__main__":
    main()
