"""Quickstart: generate a synthetic sky, load it, and query it like the SkyServer.

Run with::

    python examples/quickstart.py

The script walks the full path of the reproduction: the survey pipeline
produces the catalog, the loader builds the database (schema, indices,
Neighbors), and the SkyServer layer answers SQL — including the paper's
own Query 1 — and renders results in the public output formats.
"""

from __future__ import annotations

from repro.pipeline import SurveyConfig
from repro.skyserver import SkyServer, render_grid
from repro.skyserver.queries import QUERY_1_SQL


def main() -> None:
    print("Generating and loading a synthetic SDSS data release "
          "(about 1/2000 of the real Early Data Release)...")
    server, output = SkyServer.from_survey(
        SurveyConfig(scale=0.0005, seed=1, density_per_sq_deg=8000.0))
    summary = output.summary()
    print(f"  fields: {summary['fields']}, photo objects: {summary['photo_objects']}, "
          f"spectra: {summary['spectra']}, primary fraction: {summary['primary_fraction']:.1%}")

    print("\nTable sizes (the reproduction's Table 1):")
    for entry in server.database.size_report():
        if entry["records"]:
            print(f"  {entry['table']:<14s} {entry['records']:>9,d} rows "
                  f"{entry['total_bytes'] / 1e6:>8.1f} MB")

    print("\nThe paper's Query 1 — galaxies within 1' of (185, -0.5) without saturated pixels:")
    result = server.query(QUERY_1_SQL)
    print(render_grid(result))

    print("\nIts query plan (Figure 10's shape — the spatial function drives an "
          "index nested-loop join):")
    print(result.plan.explain())

    print("\nA cone search through the HTM index:")
    for row in server.cone_search(185.0, -0.5, 0.5)[:5]:
        print(f"  objID {row['objID']}  distance {row['distance']:.3f}'  type {row['type']}")

    print("\nAn aggregate over the whole catalog:")
    print(render_grid(server.query(
        "select type, count(*) as n, avg(modelMag_r) as meanMag "
        "from PhotoObj group by type order by n desc")))

    print("Done.  See examples/data_mining_queries.py for the full 20-query suite.")


if __name__ == "__main__":
    main()
