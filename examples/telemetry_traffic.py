"""Serve a Zipf-weighted query mix and print the telemetry report.

Boots a pooled SkyServer with tracing and the durable query log on,
replays a skewed mix of the paper's data-mining queries through the
serving pool (popularity ~ 1/rank, the shape real SkyServer traffic
had), then prints what the observability layer saw: latency
percentiles, pool queue-wait, the slow-query log, the full trace of
the last query, and the Figure-5-style traffic analysis computed by
SQL over our own ``QueryLog`` table.

Run with::

    python examples/telemetry_traffic.py [scale] [queries]

``scale`` defaults to 0.001 of the Early Data Release; ``queries`` to
60 pool submissions.
"""

from __future__ import annotations

import random
import sys

from repro.pipeline import SurveyConfig
from repro.skyserver import SkyServer, query_by_id, all_query_ids
from repro.telemetry import TRACER, render_trace


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.001
    total = int(sys.argv[2]) if len(sys.argv) > 2 else 60

    print(f"Building a synthetic SkyServer at scale {scale}...")
    server, _output = SkyServer.from_survey(SurveyConfig(scale=scale, seed=2002))
    pool = server.start_pool(workers=4)

    # A Zipf mix over the queries that need no placeholder substitution:
    # rank r is submitted with weight 1/r, so a handful of hot queries
    # dominate — exactly the regime the result cache and the slow-query
    # log are for.
    queries = [query_by_id(query_id) for query_id in all_query_ids()]
    queries = [query for query in queries if "{" not in query.sql]
    weights = [1.0 / rank for rank in range(1, len(queries) + 1)]
    rng = random.Random(2002)

    print(f"Replaying {total} Zipf-weighted submissions through the pool...")
    tickets = [pool.submit(rng.choices(queries, weights)[0].sql)
               for _ in range(total)]
    done = failed = 0
    for ticket in tickets:
        try:
            ticket.result()
            done += 1
        except Exception:
            failed += 1
    print(f"  completed={done} failed={failed}")

    report = server.telemetry_report()
    telemetry = report["telemetry"]
    print("\n-- server latency ----------------------------------------")
    for key, value in telemetry["latency"].items():
        print(f"  {key:<10} {value}")
    print("\n-- pool ---------------------------------------------------")
    pool_stats = report["pool"]
    print(f"  submitted={pool_stats['submitted']} "
          f"completed={pool_stats['completed']} "
          f"cache={pool_stats['result_cache']['hits']} hits")
    for section, snapshot in pool_stats["latency"].items():
        print(f"  {section:<12} p50={snapshot['p50_ms']}ms "
              f"p95={snapshot['p95_ms']}ms p99={snapshot['p99_ms']}ms")
    slow = telemetry.get("slow_queries") or []
    print(f"\n-- slow queries ({len(slow)}) ------------------------------")
    for entry in slow[-5:]:
        print(f"  {entry['elapsedMs']:.1f}ms  {entry['sql'][:70]}")

    print("\n-- last trace ---------------------------------------------")
    print(render_trace(TRACER.last_trace()))

    print("\n-- traffic analysis over QueryLog (via SQL) ---------------")
    for label, value in report["traffic"]:
        print(f"  {label:<28} {value}")

    pool.shutdown()


if __name__ == "__main__":
    main()
