"""Always-on metrics: counters, gauges and fixed-bucket latency histograms.

The registry is deliberately tiny — a dict of named instruments behind
one lock — so every subsystem can afford to record into it on the hot
path.  The histogram uses fixed log-spaced bucket bounds (16us .. 64s)
and estimates p50/p95/p99 by linear interpolation inside the winning
bucket, which keeps ``observe()`` at one bisect + two adds and makes
the percentile error bounded by the bucket ratio (2x).

This module must not import anything from ``repro.engine`` — engine
modules import it.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "METRICS",
    "get_metrics",
]


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (queue depth, cache size, ...)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> float:
        return self._value


def _default_bounds() -> Tuple[float, ...]:
    # 16us doubling up to ~64s: 23 finite bounds + implicit overflow.
    bounds = []
    edge = 16e-6
    while edge <= 64.0:
        bounds.append(edge)
        edge *= 2.0
    return tuple(bounds)


#: Shared bucket bounds (seconds) for every latency histogram.
DEFAULT_BOUNDS: Tuple[float, ...] = _default_bounds()


class LatencyHistogram:
    """Fixed-bucket histogram of durations in seconds.

    ``observe`` is O(log buckets); percentiles are estimated by linear
    interpolation within the bucket that crosses the requested rank.
    """

    __slots__ = ("name", "bounds", "_lock", "_counts", "_count", "_sum",
                 "_min", "_max")

    def __init__(self, name: str = "",
                 bounds: Optional[Tuple[float, ...]] = None) -> None:
        self.name = name
        self.bounds = tuple(bounds) if bounds is not None else DEFAULT_BOUNDS
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0.0:
            seconds = 0.0
        index = bisect.bisect_left(self.bounds, seconds)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += seconds
            if seconds < self._min:
                self._min = seconds
            if seconds > self._max:
                self._max = seconds

    @property
    def count(self) -> int:
        return self._count

    @property
    def total_seconds(self) -> float:
        return self._sum

    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the q-th percentile (q in [0, 100]) in seconds."""
        with self._lock:
            count = self._count
            if count == 0:
                return 0.0
            rank = max(1.0, (q / 100.0) * count)
            seen = 0
            for index, bucket_count in enumerate(self._counts):
                if bucket_count == 0:
                    continue
                if seen + bucket_count >= rank:
                    lower = self.bounds[index - 1] if index > 0 else 0.0
                    upper = (self.bounds[index]
                             if index < len(self.bounds) else self._max)
                    if upper < lower:
                        upper = lower
                    fraction = (rank - seen) / bucket_count
                    value = lower + (upper - lower) * fraction
                    return min(max(value, self._min), self._max)
                seen += bucket_count
            return self._max

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = 0.0

    def snapshot(self) -> Dict[str, float]:
        """Count, mean and the headline percentiles, in milliseconds."""
        count = self._count
        if count == 0:
            return {"count": 0, "mean_ms": 0.0, "p50_ms": 0.0,
                    "p95_ms": 0.0, "p99_ms": 0.0, "max_ms": 0.0}
        return {
            "count": count,
            "mean_ms": round(self.mean() * 1000.0, 3),
            "p50_ms": round(self.percentile(50.0) * 1000.0, 3),
            "p95_ms": round(self.percentile(95.0) * 1000.0, 3),
            "p99_ms": round(self.percentile(99.0) * 1000.0, 3),
            "max_ms": round(self._max * 1000.0, 3),
        }


class MetricsRegistry:
    """Named instruments, created on first use and stable thereafter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str) -> LatencyHistogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = LatencyHistogram(name)
            return instrument

    def snapshot(self) -> Dict[str, object]:
        """All instruments as plain values, sorted by name."""
        with self._lock:
            counters = sorted(self._counters.values(), key=lambda c: c.name)
            gauges = sorted(self._gauges.values(), key=lambda g: g.name)
            histograms = sorted(self._histograms.values(),
                                key=lambda h: h.name)
        return {
            "counters": {c.name: c.snapshot() for c in counters},
            "gauges": {g.name: g.snapshot() for g in gauges},
            "histograms": {h.name: h.snapshot() for h in histograms},
        }

    def reset(self) -> None:
        """Zero every instrument in place (handles to them stay valid)."""
        with self._lock:
            instruments: List[object] = [*self._counters.values(),
                                         *self._gauges.values(),
                                         *self._histograms.values()]
        for instrument in instruments:
            instrument.reset()  # type: ignore[attr-defined]


#: Process-wide registry; subsystems cache instrument handles from it.
METRICS = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    return METRICS
