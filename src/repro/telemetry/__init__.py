"""Observability for the SkyServer reproduction.

Three always-available pieces (ISSUE 10):

* :mod:`repro.telemetry.metrics` — counters, gauges and fixed-bucket
  latency histograms with p50/p95/p99, behind one process-wide
  :data:`METRICS` registry.  Cheap enough to stay on.
* :mod:`repro.telemetry.trace` — per-query spans (query id + parent id,
  ``perf_counter`` timings) collected by the process-wide
  :data:`TRACER`.  Tracing **off ⇒ byte-identical plans and results**;
  tracing on changes only counters — spans observe, never steer.
* :mod:`repro.telemetry.querylog` — the durable ``QueryLog`` table:
  every served statement appended through the ordinary engine/storage
  write path, queryable with SQL and analyzable by
  :func:`repro.traffic.analyze_query_log` (the paper's Figure 5, run
  over our own log).

:class:`Telemetry` bundles the three per server, driven by the
``ServerConfig.telemetry`` section.
"""

from .metrics import (Counter, Gauge, LatencyHistogram, METRICS,
                      MetricsRegistry, get_metrics)
from .querylog import QUERY_LOG_TABLE, QueryLogger
from .runtime import Telemetry
from .trace import Span, TRACER, Tracer, get_tracer, render_trace

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "METRICS",
    "get_metrics",
    "Span",
    "Tracer",
    "TRACER",
    "get_tracer",
    "render_trace",
    "QueryLogger",
    "QUERY_LOG_TABLE",
    "Telemetry",
]
