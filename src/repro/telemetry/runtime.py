"""The per-server telemetry bundle.

One :class:`Telemetry` object per :class:`~repro.skyserver.server.SkyServer`
ties the three tentpole pieces together: it flips the process-wide
tracer on/off from the server's config, owns the server-level latency
histogram, and hosts the durable :class:`~repro.telemetry.querylog.QueryLogger`
on the serving database.  The pool and the direct ``SkyServer.query``
path both report finished statements here.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Dict, Optional

from .metrics import METRICS, LatencyHistogram, MetricsRegistry
from .querylog import QueryLogger
from .trace import TRACER, Tracer, clip as _clip

__all__ = ["Telemetry"]


class Telemetry:
    """Tracing + metrics + query log for one server."""

    def __init__(self, database: Any, *,
                 tracing: bool = True,
                 query_log: bool = True,
                 slow_query_seconds: float = 1.0,
                 trace_capacity: int = 128) -> None:
        self.database = database
        self.tracing = bool(tracing)
        self.tracer: Tracer = TRACER
        self.metrics: MetricsRegistry = METRICS
        # The tracer is process-wide; the most recently configured
        # server decides (a single-process reproduction serves one
        # site at a time — last writer wins, deterministically).
        self.tracer.enabled = self.tracing
        if trace_capacity > 0:
            self.tracer.capacity = trace_capacity
        #: Wall-clock latency of every statement served through this
        #: server (pool and direct path alike); always on.
        self.query_latency = LatencyHistogram("server.query_seconds")
        self.logger: Optional[QueryLogger] = (
            QueryLogger(database, slow_query_seconds=slow_query_seconds)
            if query_log else None)
        self._fallback_ids = itertools.count(1)
        self.queries = 0
        self.failures = 0

    # -- the direct (non-pooled) query path --------------------------------

    def run_query(self, fn: Callable[[], Any], sql: str, *,
                  user_class: str = "session",
                  session: Any = None) -> Any:
        """Run ``fn`` under a root span; observe + log the outcome."""
        tracer = self.tracer
        started = time.perf_counter()
        if tracer.enabled:
            with tracer.span("query", sql=_clip(sql),
                             user_class=user_class) as root:
                query_id = root.query_id
                try:
                    result = fn()
                except Exception as error:
                    root.attributes["status"] = "failed"
                    self._observe(sql, user_class, "failed", 0,
                                  time.perf_counter() - started,
                                  query_id=query_id, session=session,
                                  error=f"{type(error).__name__}: {error}")
                    raise
                rows = len(getattr(result, "rows", ()))
                root.attributes["status"] = "done"
                root.attributes["rows"] = rows
        else:
            query_id = next(self._fallback_ids)
            try:
                result = fn()
            except Exception as error:
                self._observe(sql, user_class, "failed", 0,
                              time.perf_counter() - started,
                              query_id=query_id, session=session,
                              error=f"{type(error).__name__}: {error}")
                raise
            rows = len(getattr(result, "rows", ()))
        self._observe(sql, user_class, "done", rows,
                      time.perf_counter() - started,
                      query_id=query_id, session=session)
        return result

    def _observe(self, sql: str, user_class: str, status: str, rows: int,
                 elapsed: float, *, query_id: int, session: Any = None,
                 error: Optional[str] = None,
                 cache_hit: bool = False) -> None:
        self.query_latency.observe(elapsed)
        self.queries += 1
        if status != "done":
            self.failures += 1
        if self.logger is not None:
            source = getattr(session, "last_plan_source", "") if session \
                else ""
            self.logger.record(
                sql=sql, user_class=user_class, status=status, rows=rows,
                elapsed_seconds=elapsed, cache_hit=cache_hit,
                plan_cached=source in ("cache", "fragment-cache"),
                query_id=query_id, error=error)

    # -- the pooled path ---------------------------------------------------

    def record_pool_query(self, ticket: Any, *,
                          plan_source: str = "") -> None:
        """Observe + log one finished :class:`QueryTicket`."""
        if ticket.finished_at is None:
            return
        reference = (ticket.started_at if ticket.started_at is not None
                     else ticket.submitted_at)
        elapsed = max(0.0, ticket.finished_at - reference)
        self.query_latency.observe(elapsed)
        self.queries += 1
        if ticket.status != "done":
            self.failures += 1
        if self.logger is None:
            return
        result = getattr(ticket, "_result", None)
        error = getattr(ticket, "_error", None)
        self.logger.record(
            sql=ticket.sql, user_class=ticket.user_class,
            status=ticket.status,
            rows=len(result.rows) if result is not None else 0,
            elapsed_seconds=elapsed, cache_hit=ticket.cache_hit,
            plan_cached=plan_source in ("cache", "fragment-cache"),
            query_id=getattr(ticket, "query_id", 0) or 0,
            error=f"{type(error).__name__}: {error}" if error is not None
            else None)

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        return {
            "queries": self.queries,
            "failures": self.failures,
            "latency": self.query_latency.snapshot(),
            "tracing": self.tracer.statistics(),
            "metrics": self.metrics.snapshot(),
            "query_log": (self.logger.statistics()
                          if self.logger is not None else None),
            "slow_queries": (self.logger.slow_queries()
                             if self.logger is not None else []),
        }
