"""Per-query trace spans with monotonic timings.

A trace is identified by a query id; every span carries that id, its
own span id, and its parent's span id, so a whole request —
pool admission → plan → execution → per-shard fragments → WAL
appends — reconstructs into one tree.

Design constraints, in order:

1. **Tracing off ⇒ zero work.**  ``TRACER.enabled`` is a plain bool;
   hot paths check it before building spans, and ``span()`` itself
   short-circuits to a shared no-op span.
2. **Tracing on changes only counters.**  Spans observe, never steer:
   nothing in the engine may branch on a span's contents.
3. **Cross-thread parenting is explicit.**  Thread-locals do not follow
   work onto the shared worker pool, so dispatch sites capture
   ``TRACER.current()`` and pass it as ``parent=`` on the far side.

This module must not import anything from ``repro.engine`` — engine
modules import it.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer", "TRACER", "get_tracer", "clip"]


def clip(sql: str, limit: int = 200) -> str:
    """Whitespace-collapse and truncate SQL for span/log attributes."""
    sql = " ".join(sql.split())
    return sql if len(sql) <= limit else sql[:limit - 1] + "…"


class Span:
    """One timed step of a query, linked to its parent by span id."""

    __slots__ = ("name", "query_id", "span_id", "parent_id",
                 "started", "ended", "attributes")

    def __init__(self, name: str, query_id: int, span_id: int,
                 parent_id: Optional[int], started: float) -> None:
        self.name = name
        self.query_id = query_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.started = started
        self.ended = started
        self.attributes: Dict[str, object] = {}

    @property
    def duration_seconds(self) -> float:
        return max(0.0, self.ended - self.started)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "query_id": self.query_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started": self.started,
            "duration_ms": round(self.duration_seconds * 1000.0, 3),
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, query={self.query_id}, "
                f"span={self.span_id}, parent={self.parent_id}, "
                f"{self.duration_seconds * 1000.0:.3f}ms)")


class _NoopSpan:
    """Shared placeholder yielded while tracing is disabled.

    It exposes one throwaway ``attributes`` dict; nothing reads it, and
    writes to it are dead stores by design.
    """

    __slots__ = ()
    attributes: Dict[str, object] = {}

    @property
    def duration_seconds(self) -> float:
        return 0.0


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects spans per query id into a bounded in-memory store."""

    def __init__(self, capacity: int = 128) -> None:
        self.enabled = False
        self.capacity = capacity
        self._lock = threading.Lock()
        self._local = threading.local()
        self._traces: "OrderedDict[int, List[Span]]" = OrderedDict()
        self._system: deque = deque(maxlen=256)
        self._next_query = itertools.count(1)
        self._next_span = itertools.count(1)
        self.spans_recorded = 0
        self.traces_evicted = 0

    # -- ids and the per-thread span stack --------------------------------

    def new_query_id(self) -> int:
        return next(self._next_query)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(self, name: str, *, query_id: Optional[int] = None,
             parent: Optional[Span] = None,
             started: Optional[float] = None,
             **attributes: object) -> Iterator[Span]:
        """Open a span around a block; times it with ``perf_counter``.

        ``parent`` overrides the thread-local parent (for work handed to
        another thread); ``started`` backdates the span (for waits that
        ended before the span could be opened, e.g. queue time measured
        from a ticket's ``submitted_at``).
        """
        if not self.enabled:
            yield _NOOP_SPAN  # type: ignore[misc]
            return
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        if query_id is None:
            query_id = parent.query_id if parent is not None \
                else self.new_query_id()
        span = Span(name, query_id, next(self._next_span),
                    parent.span_id if parent is not None else None,
                    started if started is not None else time.perf_counter())
        if attributes:
            span.attributes.update(attributes)
        stack.append(span)
        try:
            yield span
        finally:
            span.ended = time.perf_counter()
            stack.pop()
            self._store(span)

    def record(self, name: str, *, started: float, ended: float,
               query_id: Optional[int] = None,
               parent: Optional[Span] = None,
               **attributes: object) -> Optional[Span]:
        """Record an already-finished interval as a span (retroactive)."""
        if not self.enabled:
            return None
        if parent is None:
            parent = self.current()
        if query_id is None:
            query_id = parent.query_id if parent is not None \
                else self.new_query_id()
        span = Span(name, query_id, next(self._next_span),
                    parent.span_id if parent is not None else None, started)
        span.ended = ended
        if attributes:
            span.attributes.update(attributes)
        self._store(span)
        return span

    def _store(self, span: Span) -> None:
        with self._lock:
            self.spans_recorded += 1
            spans = self._traces.get(span.query_id)
            if spans is None:
                spans = self._traces[span.query_id] = []
                while len(self._traces) > self.capacity:
                    self._traces.popitem(last=False)
                    self.traces_evicted += 1
            spans.append(span)

    # -- reading back ------------------------------------------------------

    def trace(self, query_id: int) -> List[Span]:
        """All spans of one query, ordered by start time."""
        with self._lock:
            spans = list(self._traces.get(query_id, ()))
        return sorted(spans, key=lambda s: (s.started, s.span_id))

    def query_ids(self) -> List[int]:
        with self._lock:
            return list(self._traces.keys())

    def last_trace(self) -> List[Span]:
        with self._lock:
            if not self._traces:
                return []
            query_id = next(reversed(self._traces))
        return self.trace(query_id)

    def statistics(self) -> Dict[str, object]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "traces": len(self._traces),
                "spans_recorded": self.spans_recorded,
                "traces_evicted": self.traces_evicted,
            }

    def reset(self) -> None:
        with self._lock:
            self._traces.clear()
            self._system.clear()
            self.spans_recorded = 0
            self.traces_evicted = 0


def render_trace(spans: List[Span]) -> str:
    """An indented one-line-per-span rendering of a trace."""
    by_parent: Dict[Optional[int], List[Span]] = {}
    for span in spans:
        by_parent.setdefault(span.parent_id, []).append(span)
    known = {span.span_id for span in spans}
    lines: List[str] = []

    def walk(parent_id: Optional[int], depth: int) -> None:
        for span in sorted(by_parent.get(parent_id, ()),
                           key=lambda s: (s.started, s.span_id)):
            attrs = " ".join(f"{key}={value}" for key, value in
                             sorted(span.attributes.items()))
            suffix = f"  [{attrs}]" if attrs else ""
            lines.append(f"{'  ' * depth}{span.name} "
                         f"{span.duration_seconds * 1000.0:.3f}ms{suffix}")
            walk(span.span_id, depth + 1)

    roots = sorted(key for key in by_parent
                   if key is None or key not in known)
    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


#: Process-wide tracer; ``Telemetry`` flips ``enabled`` from config.
TRACER = Tracer()


def get_tracer() -> Tracer:
    return TRACER
