"""The durable query log: every statement, as data.

The real SkyServer logged every SQL query, and the logs *became* the
dataset behind the paper's Figure 5 traffic analysis and the follow-up
"Data Mining the SDSS SkyServer Database" study.  We do the same,
dogfooding the engine: the log is an ordinary ``QueryLog`` table on the
serving database, appended through ``Table.insert`` so the existing
``repro.storage`` machinery (WAL on single-node durable servers,
checkpoints everywhere) makes it survive restarts — and so it is
queryable with plain SQL.

Engine imports happen lazily inside functions: engine modules import
``repro.telemetry`` for metrics/tracing, and importing the engine at
module scope here would be circular.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from typing import Any, Dict, List, Optional

from .trace import clip

__all__ = ["QueryLogger", "QUERY_LOG_TABLE"]

#: Name of the log table created on the serving database.
QUERY_LOG_TABLE = "QueryLog"


def _query_log_columns():
    from ..engine import bigint, boolean, floating, text, timestamp

    return [
        bigint("logID"),
        bigint("queryID"),
        timestamp("loggedAt"),
        text("userClass"),
        text("status"),
        text("sqlText"),
        bigint("rowCount"),
        floating("elapsedMs"),
        boolean("cacheHit"),
        boolean("planCached"),
        boolean("slow"),
        text("error", nullable=True),
    ]


class QueryLogger:
    """Appends one ``QueryLog`` row per finished statement."""

    def __init__(self, database: Any, *,
                 slow_query_seconds: float = 1.0,
                 slow_log_capacity: int = 64) -> None:
        self.database = database
        self.slow_query_seconds = slow_query_seconds
        self._lock = threading.Lock()
        self._table = self._ensure_table()
        self._next_id = itertools.count(self._seed_log_id())
        self._slow: deque = deque(maxlen=slow_log_capacity)
        self.recorded = 0
        self.slow_count = 0
        self.failed_count = 0
        self.dropped = 0

    # -- setup -------------------------------------------------------------

    def _ensure_table(self):
        from ..engine import PrimaryKey

        if self.database.has_table(QUERY_LOG_TABLE):
            return self.database.table(QUERY_LOG_TABLE)
        return self.database.create_table(
            QUERY_LOG_TABLE, _query_log_columns(),
            primary_key=PrimaryKey(("logID",)),
            description="Telemetry: one row per statement served "
                        "(the paper's query log, self-hosted).",
        )

    def _seed_log_id(self) -> int:
        """Continue log ids past whatever a reopened log already holds."""
        high = 0
        for _slot, row in self._table.storage.iter_rows():
            log_id = row.get("logID")
            if isinstance(log_id, int) and log_id > high:
                high = log_id
        return high + 1

    # -- recording ---------------------------------------------------------

    def record(self, *, sql: str, user_class: str, status: str,
               rows: int, elapsed_seconds: float,
               cache_hit: bool = False, plan_cached: bool = False,
               query_id: int = 0, error: Optional[str] = None) -> None:
        slow = (status == "done"
                and elapsed_seconds >= self.slow_query_seconds)
        with self._lock:
            log_id = next(self._next_id)
        row = {
            "logID": log_id,
            "queryID": int(query_id),
            "loggedAt": self.database.now(),
            "userClass": user_class,
            "status": status,
            "sqlText": sql,
            "rowCount": int(rows),
            "elapsedMs": elapsed_seconds * 1000.0,
            "cacheHit": bool(cache_hit),
            "planCached": bool(plan_cached),
            "slow": slow,
            "error": error,
        }
        try:
            self._table.insert(row)
        except Exception:
            # The log must never take a query down with it (e.g. a
            # server shutting down mid-flight).  Count and move on.
            self.dropped += 1
            return
        self.recorded += 1
        if slow:
            self.slow_count += 1
            with self._lock:
                self._slow.append({
                    "queryID": row["queryID"],
                    "sql": clip(sql),
                    "userClass": user_class,
                    "elapsedMs": round(row["elapsedMs"], 3),
                    "rows": row["rowCount"],
                })
        if status != "done":
            self.failed_count += 1

    # -- reading back ------------------------------------------------------

    def slow_queries(self) -> List[Dict[str, Any]]:
        """The most recent slow statements (in-memory, newest last)."""
        with self._lock:
            return list(self._slow)

    def statistics(self) -> Dict[str, Any]:
        return {
            "table": QUERY_LOG_TABLE,
            "entries": self._table.row_count,
            "recorded": self.recorded,
            "slow": self.slow_count,
            "failed": self.failed_count,
            "dropped": self.dropped,
            "slow_query_seconds": self.slow_query_seconds,
        }
