"""Image pyramid construction.

"The sky color images were built specially for the website.  The
original 5-color 80-bit deep images were converted using a nonlinear
intensity mapping to reduce the brightness dynamic range to screen
quality.  The augmented-color images are 24bit RGB, stored as JPEGs.
An image pyramid was built at 4 zoom levels." (paper §2)

The reproduction renders synthetic 5-band pixel frames for a field from
the objects it contains, applies an asinh-style nonlinear stretch to
map the g/r/i bands onto 8-bit RGB, and builds the 4-level pyramid by
2x2 block averaging.  Tiles are stored as zlib-compressed raw RGB
(a stand-in for JPEG encoding, which needs no external library).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

#: Number of zoom levels below the full-resolution image (paper: 4 levels).
PYRAMID_LEVELS = 4

#: Softening parameter of the asinh stretch (controls where the nonlinear
#: compression of bright pixels kicks in).
ASINH_SOFTENING = 0.02


@dataclass
class Tile:
    """One encoded tile of the pyramid."""

    zoom: int
    width: int
    height: int
    data: bytes

    @property
    def encoded_bytes(self) -> int:
        return len(self.data)


def render_field_image(objects: Sequence[dict], *, ra_min: float, ra_max: float,
                       dec_min: float, dec_max: float, width: int = 128,
                       height: int = 96, seeing_pixels: float = 1.5,
                       rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Render a synthetic 5-band image of a field from its PhotoObj rows.

    Returns a float array of shape (5, height, width) in linear flux
    units.  Each object contributes a circular Gaussian of total flux
    10**(-0.4 (m - 22.5)) in each band.
    """
    rng = rng or np.random.default_rng(0)
    image = rng.normal(loc=0.5, scale=0.05, size=(5, height, width)).astype(float)
    bands = ("u", "g", "r", "i", "z")
    ys, xs = np.mgrid[0:height, 0:width]
    for row in objects:
        x = (row["ra"] - ra_min) / max(1e-9, (ra_max - ra_min)) * (width - 1)
        y = (row["dec"] - dec_min) / max(1e-9, (dec_max - dec_min)) * (height - 1)
        if not (0 <= x < width and 0 <= y < height):
            continue
        radius = max(seeing_pixels, row.get("petrorad_r", row.get("petroRad_r", 1.5)))
        footprint = np.exp(-((xs - x) ** 2 + (ys - y) ** 2) / (2.0 * radius ** 2))
        footprint /= footprint.sum() or 1.0
        for band_index, band in enumerate(bands):
            magnitude = row.get(f"modelmag_{band}", row.get(f"modelMag_{band}", 22.5))
            flux = 10.0 ** (-0.4 * (magnitude - 22.5)) * 100.0
            image[band_index] += flux * footprint
    return image


def nonlinear_rgb(image: np.ndarray, *, softening: float = ASINH_SOFTENING,
                  scale: float = 0.8) -> np.ndarray:
    """Map a 5-band linear image onto 8-bit RGB with an asinh stretch.

    The g, r and i bands drive blue, green and red respectively (the
    SkyServer's augmented-colour convention); the asinh compression
    keeps faint structure visible while bright stars stop saturating the
    display range.
    """
    blue, green, red = image[1], image[2], image[3]
    total = (red + green + blue) / 3.0
    stretched = np.arcsinh(total / softening) / np.arcsinh(scale / softening)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(total > 0, stretched / total, 0.0)
    rgb = np.stack([red * ratio, green * ratio, blue * ratio], axis=-1)
    rgb = np.clip(rgb, 0.0, 1.0)
    return (rgb * 255.0).astype(np.uint8)


def downsample(rgb: np.ndarray) -> np.ndarray:
    """Halve an RGB image by 2x2 block averaging (one pyramid level)."""
    height, width = rgb.shape[0] & ~1, rgb.shape[1] & ~1
    trimmed = rgb[:height, :width].astype(np.uint16)
    pooled = (trimmed[0::2, 0::2] + trimmed[1::2, 0::2]
              + trimmed[0::2, 1::2] + trimmed[1::2, 1::2]) // 4
    return pooled.astype(np.uint8)


def encode_tile(rgb: np.ndarray, zoom: int) -> Tile:
    """Encode an RGB array as a compressed tile (the JPEG stand-in)."""
    payload = zlib.compress(rgb.tobytes(), 6)
    header = b"TILE" + bytes([zoom]) + rgb.shape[1].to_bytes(2, "big") + \
        rgb.shape[0].to_bytes(2, "big")
    return Tile(zoom=zoom, width=rgb.shape[1], height=rgb.shape[0], data=header + payload)


def decode_tile(tile: Tile) -> np.ndarray:
    """Decode a tile back to its RGB array (round-trip used by tests)."""
    header, payload = tile.data[:9], tile.data[9:]
    width = int.from_bytes(header[5:7], "big")
    height = int.from_bytes(header[7:9], "big")
    raw = zlib.decompress(payload)
    return np.frombuffer(raw, dtype=np.uint8).reshape(height, width, 3)


def build_pyramid(image: np.ndarray, *, levels: int = PYRAMID_LEVELS) -> list[Tile]:
    """Build the full pyramid: zoom 0 (full resolution) through ``levels``."""
    rgb = nonlinear_rgb(image)
    tiles = [encode_tile(rgb, 0)]
    current = rgb
    for zoom in range(1, levels + 1):
        if min(current.shape[0], current.shape[1]) < 2:
            break
        current = downsample(current)
        tiles.append(encode_tile(current, zoom))
    return tiles


def pyramid_for_field(objects: Sequence[dict], field_row: dict, *,
                      levels: int = PYRAMID_LEVELS,
                      width: int = 128, height: int = 96) -> list[Tile]:
    """Convenience wrapper: render a field's image and build its pyramid."""
    image = render_field_image(
        objects,
        ra_min=field_row.get("ramin", field_row.get("raMin")),
        ra_max=field_row.get("ramax", field_row.get("raMax")),
        dec_min=field_row.get("decmin", field_row.get("decMin")),
        dec_max=field_row.get("decmax", field_row.get("decMax")),
        width=width, height=height)
    return build_pyramid(image, levels=levels)
