"""The loadEvents audit table.

"In addition to loading the data, these DTS scripts write records in a
loadEvents table recording the load time, the number of records in the
source file, and the number of inserted records.  The DTS steps also
write trace files indicating the success or errors in the load step."
(paper §9.4)

The web operations interface of Figure 9 is a thin view over this
table: each row is one load step, carries its time window (the handle
UNDO needs), its source/inserted row counts and its status.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Any, Optional

from ..engine import Database, PrimaryKey, bigint, integer, text, timestamp

#: Status values a load event can be in.
STATUS_RUNNING = "running"
STATUS_SUCCESS = "success"
STATUS_FAILED = "failed"
STATUS_UNDONE = "undone"

LOAD_EVENTS_TABLE = "loadEvents"


@dataclass
class LoadEvent:
    """One row of the loadEvents table, as a convenient object."""

    event_id: int
    table_name: str
    source: str
    start_time: _dt.datetime
    end_time: Optional[_dt.datetime]
    source_rows: int
    inserted_rows: int
    status: str
    message: str = ""

    @property
    def succeeded(self) -> bool:
        return self.status == STATUS_SUCCESS


def ensure_load_events_table(database: Database) -> None:
    """Create the loadEvents table if the catalog does not have it yet."""
    if database.has_table(LOAD_EVENTS_TABLE):
        return
    database.create_table(LOAD_EVENTS_TABLE, [
        bigint("eventID", description="Load-event sequence number"),
        text("tableName", description="Table the step loaded"),
        text("source", description="CSV file (or in-memory batch) the step read"),
        timestamp("startTime", description="When the step started"),
        timestamp("endTime", nullable=True, description="When the step finished"),
        integer("sourceRows", description="Rows present in the source file"),
        integer("insertedRows", description="Rows actually inserted"),
        text("status", description="running / success / failed / undone"),
        text("message", nullable=True, description="Error text for failed steps"),
    ], primary_key=PrimaryKey(["eventID"]),
        description="Audit trail of data-load steps (drives the UNDO button)")


class LoadEventLog:
    """Records and queries load events for one database."""

    def __init__(self, database: Database):
        self.database = database
        ensure_load_events_table(database)

    def _table(self):
        return self.database.table(LOAD_EVENTS_TABLE)

    def _next_event_id(self) -> int:
        table = self._table()
        return max((row["eventid"] for _rid, row in table.iter_rows()), default=0) + 1

    def start(self, table_name: str, source: str, source_rows: int) -> int:
        """Record the start of a load step; returns the event id."""
        event_id = self._next_event_id()
        self._table().insert({
            "eventID": event_id,
            "tableName": table_name,
            "source": source,
            "startTime": self.database.now(),
            "endTime": None,
            "sourceRows": source_rows,
            "insertedRows": 0,
            "status": STATUS_RUNNING,
            "message": "",
        }, database=self.database)
        return event_id

    def finish(self, event_id: int, *, inserted_rows: int, status: str,
               message: str = "") -> None:
        """Record the completion (or failure) of a load step."""
        table = self._table()
        # Close the (read-locked) scan before mutating: delete/insert
        # take the table's write lock, which a held read lock may not
        # upgrade into.
        iterator = table.iter_rows()
        found = None
        for row_id, row in iterator:
            if row["eventid"] == event_id:
                found = (row_id, dict(row))
                break
        iterator.close()
        if found is None:
            raise KeyError(f"no load event {event_id}")
        row_id, updated = found
        updated["endtime"] = self.database.now()
        updated["insertedrows"] = inserted_rows
        updated["status"] = status
        updated["message"] = message
        table.delete_row(row_id)
        table.insert(updated, database=self.database)

    def mark_undone(self, event_id: int, message: str = "") -> None:
        self.finish(event_id, inserted_rows=0, status=STATUS_UNDONE,
                    message=message or "undone by operator")

    def get(self, event_id: int) -> LoadEvent:
        for _row_id, row in self._table().iter_rows():
            if row["eventid"] == event_id:
                return self._to_event(row)
        raise KeyError(f"no load event {event_id}")

    def events(self, *, table_name: Optional[str] = None) -> list[LoadEvent]:
        found = []
        for _row_id, row in self._table().iter_rows():
            if table_name is not None and row["tablename"].lower() != table_name.lower():
                continue
            found.append(self._to_event(row))
        found.sort(key=lambda event: event.event_id)
        return found

    @staticmethod
    def _to_event(row: dict[str, Any]) -> LoadEvent:
        return LoadEvent(
            event_id=row["eventid"],
            table_name=row["tablename"],
            source=row["source"],
            start_time=row["starttime"],
            end_time=row["endtime"],
            source_rows=row["sourcerows"],
            inserted_rows=row["insertedrows"],
            status=row["status"],
            message=row["message"] or "",
        )
