"""The DTS-style load / validate / undo pipeline."""

from .events import (LOAD_EVENTS_TABLE, LoadEvent, LoadEventLog, STATUS_FAILED,
                     STATUS_RUNNING, STATUS_SUCCESS, STATUS_UNDONE,
                     ensure_load_events_table)
from .imagepyramid import (PYRAMID_LEVELS, Tile, build_pyramid, decode_tile,
                           downsample, encode_tile, nonlinear_rgb,
                           pyramid_for_field, render_field_image)
from .loader import LoadReport, SkyServerLoader, load_release_database
from .steps import LoadStep, LoadStepResult, steps_from_directory, steps_from_tables
from .undo import undo_last_failed, undo_load_event, undo_time_window
from .validate import ValidationIssue, ValidationReport, validate_database

__all__ = [
    "SkyServerLoader",
    "LoadReport",
    "load_release_database",
    "LoadStep",
    "LoadStepResult",
    "steps_from_directory",
    "steps_from_tables",
    "LoadEvent",
    "LoadEventLog",
    "ensure_load_events_table",
    "LOAD_EVENTS_TABLE",
    "STATUS_RUNNING",
    "STATUS_SUCCESS",
    "STATUS_FAILED",
    "STATUS_UNDONE",
    "undo_load_event",
    "undo_time_window",
    "undo_last_failed",
    "validate_database",
    "ValidationReport",
    "ValidationIssue",
    "Tile",
    "build_pyramid",
    "pyramid_for_field",
    "render_field_image",
    "nonlinear_rgb",
    "downsample",
    "encode_tile",
    "decode_tile",
    "PYRAMID_LEVELS",
]
