"""Post-load validation.

Beyond the engine's row-at-a-time constraint checks, a completed load
is validated as a whole: every declared foreign key and NOT NULL
constraint is re-verified (the engine's integrity pass), and a set of
astronomy sanity checks guards against unit mix-ups and pipeline bugs —
coordinates in range, magnitudes physical, unit vectors normalised,
HTM ids at the storage depth, primary fraction in the expected band.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..engine import Database
from ..htm import DEFAULT_DEPTH, htm_level
from ..pipeline.deblend import primary_fraction
from ..schema.flags import BANDS


@dataclass
class ValidationIssue:
    """One problem found by the validation pass."""

    table: str
    check: str
    detail: str


@dataclass
class ValidationReport:
    """Outcome of a full post-load validation."""

    tables_checked: int = 0
    rows_checked: int = 0
    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def add(self, table: str, check: str, detail: str) -> None:
        self.issues.append(ValidationIssue(table, check, detail))

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.issues)} issue(s)"
        return (f"validated {self.tables_checked} tables / {self.rows_checked} rows: {status}")


def validate_database(database: Database, *, max_issues_per_check: int = 20,
                      expect_primary_fraction: Optional[tuple[float, float]] = (0.70, 0.92)
                      ) -> ValidationReport:
    """Run the full validation pass and return its report."""
    report = ValidationReport()

    # Declared constraints (NOT NULL, foreign keys) on every table.
    for constraint_report in database.validate():
        report.tables_checked += 1
        report.rows_checked += constraint_report.rows_checked
        for violation in constraint_report.violations[:max_issues_per_check]:
            report.add(constraint_report.table, "constraint", violation)

    if database.has_table("PhotoObj"):
        _validate_photoobj(database, report, max_issues_per_check, expect_primary_fraction)
    if database.has_table("SpecObj"):
        _validate_specobj(database, report, max_issues_per_check)
    return report


def _validate_photoobj(database: Database, report: ValidationReport,
                       max_issues: int, expect_primary_fraction) -> None:
    photo = database.table("PhotoObj")
    issues = 0
    for _row_id, row in photo.iter_rows():
        problems = []
        if not (0.0 <= row["ra"] < 360.0):
            problems.append(f"ra out of range: {row['ra']}")
        if not (-90.0 <= row["dec"] <= 90.0):
            problems.append(f"dec out of range: {row['dec']}")
        norm = math.sqrt(row["cx"] ** 2 + row["cy"] ** 2 + row["cz"] ** 2)
        if abs(norm - 1.0) > 1.0e-6:
            problems.append(f"unit vector not normalised (|v|={norm:.8f})")
        try:
            if htm_level(row["htmid"]) != DEFAULT_DEPTH:
                problems.append(f"htmID not at depth {DEFAULT_DEPTH}")
        except ValueError as exc:
            problems.append(f"invalid htmID: {exc}")
        for band in BANDS:
            magnitude = row[f"modelmag_{band}"]
            if not (5.0 < magnitude < 40.0):
                problems.append(f"modelMag_{band} unphysical: {magnitude}")
                break
        if problems and issues < max_issues:
            issues += 1
            report.add("PhotoObj", "sanity", f"objID {row['objid']}: " + "; ".join(problems))
    if photo.row_count and expect_primary_fraction is not None:
        fraction = primary_fraction(row for _rid, row in photo.iter_rows())
        low, high = expect_primary_fraction
        if not (low <= fraction <= high):
            report.add("PhotoObj", "primary_fraction",
                       f"primary fraction {fraction:.2%} outside [{low:.0%}, {high:.0%}]")


def _validate_specobj(database: Database, report: ValidationReport, max_issues: int) -> None:
    spec = database.table("SpecObj")
    issues = 0
    for _row_id, row in spec.iter_rows():
        problems = []
        if row["z"] < -0.02 or row["z"] > 8.0:
            problems.append(f"redshift unphysical: {row['z']}")
        if not (0.0 <= row["zconf"] <= 1.0):
            problems.append(f"zConf out of range: {row['zconf']}")
        if problems and issues < max_issues:
            issues += 1
            report.add("SpecObj", "sanity", f"specObjID {row['specobjid']}: " + "; ".join(problems))
