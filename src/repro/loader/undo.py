"""UNDO of a load step via the per-row insert timestamp.

"The UNDO function works as follows: Each table in the database has a
timestamp field that tells when the record was inserted (the field has
Current_Timestamp as its default value.)  The load event record tells
the table name and the start and stop time of the load step.  Undo
consists of deleting all records of that table with an insert time
between the bad load step start and stop times." (paper §9.4)
"""

from __future__ import annotations

import datetime as _dt
from typing import Optional

from ..engine import Database
from ..engine.errors import LoadError
from .events import LoadEvent, LoadEventLog, STATUS_UNDONE

#: Name of the insert-timestamp column every SkyServer table carries.
TIMESTAMP_COLUMN = "inserttime"


def undo_time_window(database: Database, table_name: str,
                     start: _dt.datetime, end: Optional[_dt.datetime]) -> int:
    """Delete every row of ``table_name`` inserted within [start, end].

    Returns the number of rows deleted.  ``end`` may be None for a step
    that never finished; in that case everything at or after ``start``
    goes.
    """
    table = database.table(table_name)
    if not table.has_column(TIMESTAMP_COLUMN):
        raise LoadError(f"table {table_name!r} has no insert-timestamp column; cannot UNDO")

    def inserted_in_window(row: dict) -> bool:
        inserted_at = row.get(TIMESTAMP_COLUMN)
        if inserted_at is None:
            return False
        if inserted_at < start:
            return False
        return end is None or inserted_at <= end

    deleted = table.delete_where(inserted_in_window)
    # A failed bulk step can tombstone a large fraction of the table;
    # compact so subsequent scans stop skipping dead slots.
    table.maybe_vacuum()
    return deleted


def undo_load_event(database: Database, log: LoadEventLog, event_id: int, *,
                    message: str = "") -> int:
    """The operations-interface UNDO button: revert one load step.

    Looks up the event's table and time window, deletes the rows that
    window inserted, and marks the event as undone.  Returns the number
    of rows removed.
    """
    event = log.get(event_id)
    if event.status == STATUS_UNDONE:
        return 0
    deleted = undo_time_window(database, event.table_name,
                               event.start_time, event.end_time)
    log.mark_undone(event_id, message or f"undo removed {deleted} rows")
    return deleted


def undo_last_failed(database: Database, log: LoadEventLog) -> Optional[LoadEvent]:
    """Convenience: undo the most recent failed step, if any; returns it."""
    failed = [event for event in log.events() if event.status == "failed"]
    if not failed:
        return None
    latest = failed[-1]
    undo_load_event(database, log, latest.event_id)
    return latest
