"""Individual load steps: CSV (or in-memory batch) to one table.

"There is a DTS script for each table load step ... A particular load
step may fail because the data violates foreign key constraints, or
because the data is invalid (violates integrity constraints)."
(paper §9.4)

A :class:`LoadStep` performs data conversion (CSV text to the declared
column types), resolves ``file:`` references in blob columns to the
contents of the referenced file (the DTS behaviour of placing the JPEG
into the record), enforces NOT NULL / primary-key / foreign-key
constraints row by row, and reports precisely which row broke the step
so the operator can fix the input and re-execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

from ..engine import Database
from ..engine.concurrency import lock_tables
from ..engine.errors import ConstraintViolation, EngineError, LoadError
from ..pipeline.csvexport import read_csv


@dataclass
class LoadStepResult:
    """Outcome of one executed load step."""

    table_name: str
    source: str
    source_rows: int
    inserted_rows: int
    succeeded: bool
    error: str = ""
    failed_row_number: Optional[int] = None
    data_bytes: int = 0


@dataclass
class LoadStep:
    """One table's worth of data waiting to be loaded."""

    table_name: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    source: str = "(memory)"
    base_directory: Optional[Path] = None

    @classmethod
    def from_csv(cls, table_name: str, path: Path) -> "LoadStep":
        """Build a step from a pipeline CSV export."""
        path = Path(path)
        if not path.exists():
            raise LoadError(f"load step for {table_name!r}: missing file {path}")
        _columns, rows = read_csv(path)
        return cls(table_name=table_name, rows=rows, source=str(path),
                   base_directory=path.parent)

    def execute(self, database: Database, *, enforce_foreign_keys: bool = True) -> LoadStepResult:
        """Insert every row; stops (and reports) at the first bad row.

        On failure no partial clean-up is attempted here — that is the
        operator's UNDO decision, exactly as in the paper's workflow
        (undo, fix the data, re-execute).
        """
        table = database.table(self.table_name)
        bytes_before = table.data_bytes
        inserted = 0
        error = ""
        failed_row_number: Optional[int] = None
        # One exclusive section for the whole step (FK parents shared,
        # all acquired upfront in global order): concurrent readers see
        # the table before or after the bulk, never mid-load, and the
        # per-row lock overhead is paid once instead of per insert.
        with lock_tables(table.insert_lock_specs(
                database, skip_fk=not enforce_foreign_keys)):
            for row_number, raw_row in enumerate(self.rows, start=1):
                row = self._convert_row(raw_row)
                try:
                    table.insert(row, database=database, defer_index_sort=True,
                                 skip_fk=not enforce_foreign_keys)
                except (ConstraintViolation, EngineError) as exc:
                    error = str(exc)
                    failed_row_number = row_number
                    break
                inserted += 1
            try:
                table.rebuild_indexes()
            except (ConstraintViolation, EngineError) as exc:
                # Deferred uniqueness checks (bulk loads) surface here; the whole
                # step is reported as failed and the operator UNDOes it.
                if not error:
                    error = f"index rebuild after load failed: {exc}"
        return LoadStepResult(
            table_name=self.table_name, source=self.source,
            source_rows=len(self.rows), inserted_rows=inserted,
            succeeded=not error, error=error, failed_row_number=failed_row_number,
            data_bytes=table.data_bytes - bytes_before)

    # -- data conversion -------------------------------------------------------

    def _convert_row(self, raw_row: Mapping[str, Any]) -> dict[str, Any]:
        """Resolve file references; the engine's column coercion does the rest."""
        converted: dict[str, Any] = {}
        for key, value in raw_row.items():
            if isinstance(value, str) and value.startswith("file:"):
                converted[key] = self._read_referenced_file(value[len("file:"):])
            else:
                converted[key] = value
        return converted

    def _read_referenced_file(self, relative: str) -> bytes:
        """DTS-style blob placement: replace a file name with the file's bytes."""
        base = self.base_directory or Path(".")
        path = (base / relative).resolve()
        if not path.exists():
            raise LoadError(f"referenced image file {relative!r} not found under {base}")
        return path.read_bytes()


def steps_from_directory(directory: Path, table_order: Sequence[str]) -> list[LoadStep]:
    """Build load steps for every ``<table>.csv`` present, in dependency order."""
    directory = Path(directory)
    steps = []
    for table_name in table_order:
        path = directory / f"{table_name}.csv"
        if path.exists():
            steps.append(LoadStep.from_csv(table_name, path))
    return steps


def steps_from_tables(tables: Mapping[str, Sequence[Mapping[str, Any]]],
                      table_order: Sequence[str]) -> list[LoadStep]:
    """Build in-memory load steps from pipeline output, in dependency order."""
    steps = []
    for table_name in table_order:
        if table_name in tables:
            steps.append(LoadStep(table_name=table_name,
                                  rows=[dict(row) for row in tables[table_name]],
                                  source=f"(pipeline) {table_name}"))
    return steps
