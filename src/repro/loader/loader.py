"""The SkyServer loader: orchestrates load steps, events, validation and UNDO.

"From the SkyServer administrator's perspective, the main task is data
loading — which includes data validation ... we wanted this loading
process to be as automatic as possible." (paper §9.4)

``SkyServerLoader`` loads a pipeline output (in-memory tables or a CSV
directory) into a schema database in dependency order, records one
loadEvents row per step, optionally rebuilds the standard index set and
the Neighbors materialised view, runs the validation pass, and exposes
UNDO for any step.  Timing of the steps feeds the load-throughput
benchmark (the paper reports ≈5 GB/hour, conversion-bound).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from ..engine import Database
from ..pipeline.survey import PipelineOutput
from ..schema.build import table_load_order
from ..schema.indices import create_indices
from ..schema.neighbors import compute_neighbors
from .events import (LoadEventLog, STATUS_FAILED, STATUS_SUCCESS)
from .steps import LoadStep, LoadStepResult, steps_from_directory, steps_from_tables
from .undo import undo_load_event
from .validate import ValidationReport, validate_database


@dataclass
class LoadReport:
    """Summary of one full load run."""

    step_results: list[LoadStepResult] = field(default_factory=list)
    event_ids: list[int] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    indices_created: int = 0
    neighbor_pairs: int = 0
    #: Tables converted to column-oriented storage after the load.
    columnar_tables: int = 0
    #: Tables whose optimizer statistics were collected after the load.
    tables_analyzed: int = 0
    #: Shard count and partition scheme when the load built a cluster.
    shards: int = 1
    partition: Optional[str] = None
    #: The built :class:`~repro.cluster.ShardCluster` (``shards > 1``).
    cluster: Optional[object] = None
    validation: Optional[ValidationReport] = None

    @property
    def succeeded(self) -> bool:
        steps_ok = all(result.succeeded for result in self.step_results)
        validation_ok = self.validation.ok if self.validation is not None else True
        return steps_ok and validation_ok

    @property
    def rows_loaded(self) -> int:
        return sum(result.inserted_rows for result in self.step_results)

    @property
    def bytes_loaded(self) -> int:
        return sum(result.data_bytes for result in self.step_results)

    def throughput_mb_per_s(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.bytes_loaded / 1.0e6 / self.elapsed_seconds

    def summary(self) -> str:
        status = "OK" if self.succeeded else "FAILED"
        return (f"load {status}: {self.rows_loaded} rows / "
                f"{self.bytes_loaded / 1.0e6:.1f} MB in {self.elapsed_seconds:.2f} s "
                f"({self.throughput_mb_per_s():.1f} MB/s), "
                f"{self.indices_created} indices, {self.neighbor_pairs} neighbour pairs")


class SkyServerLoader:
    """Loads survey pipeline output into a SkyServer schema database.

    With ``columnar=True`` the loaded tables (and the derived Neighbors
    table) are converted to column-oriented storage at the very end of
    the run — after index builds, the neighbor computation and
    validation, which are point-lookup/row-iteration heavy — so the
    scan-heavy query workload that follows runs through the engine's
    vectorized batch pipeline.  Loading itself stays row-at-a-time —
    the row store is the write-optimised path.
    """

    def __init__(self, database: Database, *, columnar: bool = False,
                 analyze: bool = True, shards: int = 1,
                 partition: str = "hash"):
        self.database = database
        self.columnar = columnar
        #: Collect optimizer statistics (ANALYZE) for every loaded table
        #: — including the derived Neighbors table — once the load
        #: succeeds, so the cost-based planner never sees a freshly
        #: loaded table without statistics.
        self.analyze = analyze
        #: With ``shards > 1`` the fully loaded (indexed, neighbor-built,
        #: validated, analyzed) database is partitioned across that many
        #: in-process shard nodes at the very end of the run; the
        #: resulting :class:`~repro.cluster.ShardCluster` is exposed on
        #: the load report (and on :attr:`cluster`).
        self.shards = shards
        self.partition = partition
        self.cluster = None
        self.events = LoadEventLog(database)

    # -- entry points --------------------------------------------------------

    def load_pipeline_output(self, output: PipelineOutput, *,
                             build_indices: bool = True,
                             build_neighbors: bool = True,
                             validate: bool = True,
                             enforce_foreign_keys: bool = True) -> LoadReport:
        """Load a pipeline run directly from memory."""
        steps = steps_from_tables(output.tables, table_load_order())
        return self.run_steps(steps, build_indices=build_indices,
                              build_neighbors=build_neighbors, validate=validate,
                              enforce_foreign_keys=enforce_foreign_keys)

    def load_directory(self, directory: Path, *,
                       build_indices: bool = True,
                       build_neighbors: bool = True,
                       validate: bool = True,
                       enforce_foreign_keys: bool = True) -> LoadReport:
        """Load from a directory of ``<table>.csv`` files (the DTS hand-off)."""
        steps = steps_from_directory(Path(directory), table_load_order())
        return self.run_steps(steps, build_indices=build_indices,
                              build_neighbors=build_neighbors, validate=validate,
                              enforce_foreign_keys=enforce_foreign_keys)

    # -- the load loop ----------------------------------------------------------

    def run_steps(self, steps: Sequence[LoadStep], *,
                  build_indices: bool = True,
                  build_neighbors: bool = True,
                  validate: bool = True,
                  stop_on_failure: bool = True,
                  enforce_foreign_keys: bool = True) -> LoadReport:
        report = LoadReport()
        started = time.perf_counter()
        for step in steps:
            result, event_id = self.run_step(step, enforce_foreign_keys=enforce_foreign_keys)
            report.step_results.append(result)
            report.event_ids.append(event_id)
            if not result.succeeded and stop_on_failure:
                break
        if all(result.succeeded for result in report.step_results):
            if build_indices:
                report.indices_created = create_indices(self.database)
            if build_neighbors and self.database.has_table("Neighbors"):
                report.neighbor_pairs = compute_neighbors(self.database)
            if validate:
                report.validation = validate_database(self.database)
            loaded_names = [result.table_name for result in report.step_results]
            if build_neighbors and self.database.has_table("Neighbors"):
                loaded_names.append("Neighbors")
            loaded_names = list(dict.fromkeys(loaded_names))
            if self.columnar and self.shards <= 1:
                # Convert last: index builds, the neighbor computation and
                # validation are point-lookup/row-iteration heavy — the row
                # store's strength — while everything after the load is
                # scan-heavy query traffic.  The derived Neighbors table
                # converts too.  (A sharded load converts the shard
                # copies instead, below.)
                for name in loaded_names:
                    self.database.table(name).convert_storage("column")
                    report.columnar_tables += 1
            if self.analyze:
                # Statistics come last so they see the final storage
                # layout (after neighbours, UNDO-free data and any
                # columnar conversion).  A sharded load keeps these
                # full-data snapshots: the distributed planner costs
                # against them after the rows move to the shards.
                for name in loaded_names:
                    self.database.analyze_table(name)
                    report.tables_analyzed += 1
            if self.shards > 1:
                from ..cluster import ShardCluster

                self.cluster = ShardCluster.from_database(
                    self.database, shards=self.shards,
                    partition=self.partition, columnar=self.columnar,
                    analyze=self.analyze)
                report.cluster = self.cluster
                report.shards = self.shards
                report.partition = self.partition
                if self.columnar:
                    report.columnar_tables = len(loaded_names)
        report.elapsed_seconds = time.perf_counter() - started
        return report

    def run_step(self, step: LoadStep, *,
                 enforce_foreign_keys: bool = True) -> tuple[LoadStepResult, int]:
        """Execute one load step under a loadEvents record."""
        event_id = self.events.start(step.table_name, step.source, len(step.rows))
        result = step.execute(self.database, enforce_foreign_keys=enforce_foreign_keys)
        self.events.finish(
            event_id,
            inserted_rows=result.inserted_rows,
            status=STATUS_SUCCESS if result.succeeded else STATUS_FAILED,
            message=result.error,
        )
        return result, event_id

    # -- operator actions ----------------------------------------------------------

    def undo(self, event_id: int) -> int:
        """The operations-interface UNDO button for one load step."""
        return undo_load_event(self.database, self.events, event_id)

    def undo_failed_steps(self) -> int:
        """Undo every failed step (most recent first); returns rows removed."""
        removed = 0
        for event in reversed(self.events.events()):
            if event.status == STATUS_FAILED:
                removed += self.undo(event.event_id)
        return removed

    def load_events(self) -> list:
        """The loadEvents view the web operations page displays."""
        return self.events.events()


def load_release_database(output: PipelineOutput, *,
                          columnar: bool = False,
                          shards: int = 1,
                          partition: str = "hash",
                          analyze: bool = True,
                          build_neighbors: bool = True
                          ) -> tuple[Database, LoadReport]:
    """Load one pipeline release into a brand-new schema database.

    The standalone ingest behind online data releases: a fresh catalog
    with the full SkyServer schema, populated, indexed, validated and
    (optionally) analyzed, without touching any serving database.  The
    report's ``cluster`` is set when ``shards > 1``.
    """
    from ..schema.build import create_skyserver_database

    database = create_skyserver_database(with_indices=False)
    loader = SkyServerLoader(database, columnar=columnar, analyze=analyze,
                             shards=shards, partition=partition)
    report = loader.load_pipeline_output(output,
                                         build_neighbors=build_neighbors)
    if not report.succeeded:
        failures = [result.error for result in report.step_results
                    if not result.succeeded]
        raise RuntimeError("release load failed: " + "; ".join(failures))
    return database, report
