"""Logical query description and the programmatic query-builder API.

A :class:`LogicalQuery` is the engine's internal, declarative statement
of *what* to compute: select list, relations, join conditions, filters,
grouping, ordering, TOP and SELECT INTO target.  It is produced either
by the SQL binder (:mod:`repro.engine.sql`) or directly through the
fluent :class:`Query` builder, and consumed by the planner which decides
*how* to compute it (access paths, join order, join algorithms).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, Union

from .expressions import (AggregateCall, ColumnRef, Expression, Literal, Star,
                          Variable, combine_conjuncts)


@dataclass
class SelectItem:
    """One output column: an expression and an optional alias."""

    expression: Expression
    alias: Optional[str] = None

    def output_name(self, position: int) -> str:
        if self.alias:
            return self.alias
        if isinstance(self.expression, ColumnRef):
            return self.expression.name
        if isinstance(self.expression, AggregateCall):
            return self.expression.result_key()
        return f"col{position + 1}"


@dataclass
class TableRef:
    """A reference to a table or view in the FROM clause."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return (self.alias or self.name).lower()


@dataclass
class FunctionRef:
    """A table-valued function in the FROM clause, e.g. fGetNearbyObjEq(185, -0.5, 1)."""

    name: str
    args: Sequence[Expression]
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return (self.alias or self.name).lower()


RelationRef = Union[TableRef, FunctionRef]


@dataclass
class Join:
    """An explicit JOIN clause (INNER joins only, as used by the paper's queries)."""

    relation: RelationRef
    condition: Optional[Expression] = None
    kind: str = "inner"


@dataclass
class OrderItem:
    """One ORDER BY key."""

    expression: Expression
    descending: bool = False


@dataclass
class LogicalQuery:
    """A complete logical SELECT statement."""

    select: list[SelectItem] = field(default_factory=list)
    relations: list[RelationRef] = field(default_factory=list)
    joins: list[Join] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: list[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    order_by: list[OrderItem] = field(default_factory=list)
    top: Optional[int] = None
    distinct: bool = False
    into: Optional[str] = None

    def all_relations(self) -> list[RelationRef]:
        return list(self.relations) + [join.relation for join in self.joins]

    def has_aggregates(self) -> bool:
        if self.group_by:
            return True
        return any(_contains_aggregate(item.expression) for item in self.select) or (
            self.having is not None and _contains_aggregate(self.having))

    def output_names(self) -> list[str]:
        return [item.output_name(position) for position, item in enumerate(self.select)]


def _contains_aggregate(expression: Expression) -> bool:
    if isinstance(expression, AggregateCall):
        return True
    return any(_contains_aggregate(child) for child in expression.children())


def _iter_expressions(query: LogicalQuery):
    for item in query.select:
        yield item.expression
    for relation in query.all_relations():
        if isinstance(relation, FunctionRef):
            yield from relation.args
    for join in query.joins:
        if join.condition is not None:
            yield join.condition
    if query.where is not None:
        yield query.where
    yield from query.group_by
    if query.having is not None:
        yield query.having
    for order in query.order_by:
        yield order.expression


def referenced_tables(query: LogicalQuery) -> set[str]:
    """Names of every table or view the FROM/JOIN clauses reference.

    Names are returned as written (not resolved through views, not
    case-folded); table-valued functions are excluded — what they read
    internally is opaque at the logical level.  The serving layer uses
    this set to decide which table locks a query must hold and which
    modification counters its cached result depends on.
    """
    return {relation.name for relation in query.all_relations()
            if isinstance(relation, TableRef)}


def contains_variables(query: LogicalQuery) -> bool:
    """True when any expression of the query references a ``@variable``.

    Such a query's result depends on session state beyond the SQL text,
    so the shared result cache refuses to serve it across sessions.
    """

    def walk(expression: Expression) -> bool:
        if isinstance(expression, Variable):
            return True
        return any(walk(child) for child in expression.children())

    return any(walk(expression) for expression in _iter_expressions(query))


class Query:
    """Fluent builder for :class:`LogicalQuery`.

    Example
    -------
    >>> query = (Query()
    ...          .select(ColumnRef("objID"), (ColumnRef("distance", "GN"), "distance"))
    ...          .from_table("Galaxy", "G")
    ...          .join_function("fGetNearbyObjEq", [Literal(185.0), Literal(-0.5), Literal(1.0)],
    ...                         alias="GN", on=BinaryOp("=", ColumnRef("objID", "G"),
    ...                                                  ColumnRef("objID", "GN")))
    ...          .where(...)
    ...          .order_by(ColumnRef("distance"))
    ...          .build())
    """

    def __init__(self) -> None:
        self._query = LogicalQuery()

    def select(self, *items: Union[Expression, tuple[Expression, str], str]) -> "Query":
        for item in items:
            if isinstance(item, tuple):
                expression, alias = item
                self._query.select.append(SelectItem(expression, alias))
            elif isinstance(item, str):
                if item == "*":
                    self._query.select.append(SelectItem(Star()))
                else:
                    self._query.select.append(SelectItem(ColumnRef(item)))
            else:
                self._query.select.append(SelectItem(item))
        return self

    def select_star(self) -> "Query":
        self._query.select.append(SelectItem(Star()))
        return self

    def distinct(self) -> "Query":
        self._query.distinct = True
        return self

    def top(self, count: int) -> "Query":
        self._query.top = int(count)
        return self

    def from_table(self, name: str, alias: Optional[str] = None) -> "Query":
        self._query.relations.append(TableRef(name, alias))
        return self

    def from_function(self, name: str, args: Sequence[Union[Expression, Any]],
                      alias: Optional[str] = None) -> "Query":
        self._query.relations.append(FunctionRef(name, [_as_expression(a) for a in args], alias))
        return self

    def join(self, name: str, alias: Optional[str] = None, *,
             on: Optional[Expression] = None) -> "Query":
        self._query.joins.append(Join(TableRef(name, alias), on))
        return self

    def join_function(self, name: str, args: Sequence[Union[Expression, Any]],
                      alias: Optional[str] = None, *,
                      on: Optional[Expression] = None) -> "Query":
        self._query.joins.append(
            Join(FunctionRef(name, [_as_expression(a) for a in args], alias), on))
        return self

    def where(self, *predicates: Expression) -> "Query":
        combined = combine_conjuncts(
            ([self._query.where] if self._query.where is not None else []) + list(predicates))
        self._query.where = combined
        return self

    def group_by(self, *expressions: Union[Expression, str]) -> "Query":
        for expression in expressions:
            self._query.group_by.append(_as_expression(expression, column=True))
        return self

    def having(self, predicate: Expression) -> "Query":
        self._query.having = predicate
        return self

    def order_by(self, *keys: Union[Expression, str, tuple[Union[Expression, str], bool]]) -> "Query":
        for key in keys:
            if isinstance(key, tuple):
                expression, descending = key
                self._query.order_by.append(
                    OrderItem(_as_expression(expression, column=True), descending))
            else:
                self._query.order_by.append(OrderItem(_as_expression(key, column=True)))
        return self

    def into(self, table_name: str) -> "Query":
        self._query.into = table_name
        return self

    def build(self) -> LogicalQuery:
        return self._query


def _as_expression(value: Any, *, column: bool = False) -> Expression:
    if isinstance(value, Expression):
        return value
    if column and isinstance(value, str):
        return ColumnRef(value)
    return Literal(value)
