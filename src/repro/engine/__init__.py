"""An in-memory relational engine: the SQL Server 2000 stand-in.

The engine provides everything the SkyServer design of the paper relies
on from its commercial substrate: typed tables with integrity
constraints, B-tree indices (unique, composite, covering), views folded
into base-table queries, scalar and table-valued functions, a planner
that chooses between table scans, covering-index scans, index seeks and
index/hash/nested-loop joins, execution statistics, EXPLAIN output, and
a SQL subset front-end so the paper's query text runs verbatim.
"""

from .batch import BATCH_ROWS, ColumnBatch
from .catalog import Database
from .concurrency import LockUpgradeError, ReadWriteLock, lock_tables, read_locks
from .compile import (VectorCompileError, compile_expression,
                      compile_join_vector_predicate,
                      compile_join_vector_projection, compile_row_expression,
                      compile_vector_predicate, compile_vector_projection,
                      supports_row_mode)
from .constraints import CheckConstraint, ForeignKey, PrimaryKey
from .errors import (BindError, CatalogError, CheckViolation, ConstraintViolation,
                     EngineError, ExpressionError, ForeignKeyViolation, LoadError,
                     NotNullViolation, PlanError, PrimaryKeyViolation,
                     QueryLimitExceeded, SchemaError, SQLSyntaxError,
                     TypeMismatchError, UnknownColumnError, UnknownFunctionError)
from .expressions import (AggregateCall, Between, BinaryOp, CaseWhen, ColumnRef,
                          EvaluationContext, Expression, FunctionCall, InList,
                          Like, Literal, RowScope, Star, UnaryOp, Variable)
from .index import BTreeIndex
from .logical import (FunctionRef, Join, LogicalQuery, OrderItem, Query,
                      SelectItem, TableRef, contains_variables,
                      referenced_tables)
from .operators import (ExecutionStatistics, PhysicalPlan, QueryResult,
                        SortMergeJoin)
from .parallel import WorkerPool, get_worker_pool
from .planner import Planner
from .session import Session, make_session
from .sql import PlanCache, SqlSession, parse_batch, parse_expression, parse_select
from .stats import (ColumnStatistics, TableStatistics, collect_table_statistics)
from .storage import ColumnStore, RowStore, TableStorage, make_storage
from .table import Table
from .types import (CURRENT_TIMESTAMP, Column, DataType, NULL, bigint, blob,
                    boolean, floating, integer, text, timestamp)
from .view import View

__all__ = [
    "Database",
    "WorkerPool",
    "get_worker_pool",
    "SortMergeJoin",
    "Table",
    "TableStorage",
    "RowStore",
    "ColumnStore",
    "make_storage",
    "ColumnBatch",
    "BATCH_ROWS",
    "Column",
    "DataType",
    "NULL",
    "CURRENT_TIMESTAMP",
    "integer",
    "bigint",
    "floating",
    "text",
    "boolean",
    "timestamp",
    "blob",
    "PrimaryKey",
    "ForeignKey",
    "CheckConstraint",
    "BTreeIndex",
    "View",
    "Query",
    "LogicalQuery",
    "SelectItem",
    "TableRef",
    "FunctionRef",
    "Join",
    "OrderItem",
    "referenced_tables",
    "contains_variables",
    "ReadWriteLock",
    "LockUpgradeError",
    "read_locks",
    "lock_tables",
    "Planner",
    "PhysicalPlan",
    "QueryResult",
    "ExecutionStatistics",
    "SqlSession",
    "Session",
    "make_session",
    "PlanCache",
    "parse_batch",
    "parse_select",
    "parse_expression",
    "compile_expression",
    "compile_row_expression",
    "compile_vector_predicate",
    "compile_vector_projection",
    "compile_join_vector_predicate",
    "compile_join_vector_projection",
    "ColumnStatistics",
    "TableStatistics",
    "collect_table_statistics",
    "supports_row_mode",
    "VectorCompileError",
    "Expression",
    "Literal",
    "ColumnRef",
    "Variable",
    "Star",
    "BinaryOp",
    "UnaryOp",
    "Between",
    "InList",
    "Like",
    "FunctionCall",
    "CaseWhen",
    "AggregateCall",
    "RowScope",
    "EvaluationContext",
    "EngineError",
    "CatalogError",
    "SchemaError",
    "TypeMismatchError",
    "ConstraintViolation",
    "NotNullViolation",
    "PrimaryKeyViolation",
    "ForeignKeyViolation",
    "CheckViolation",
    "ExpressionError",
    "UnknownColumnError",
    "UnknownFunctionError",
    "SQLSyntaxError",
    "BindError",
    "PlanError",
    "QueryLimitExceeded",
    "LoadError",
]
