"""The shared intra-query worker pool: morsel-driven parallelism.

One process-global :class:`WorkerPool` serves every parallel consumer —
morsel-parallel scans inside a single-node plan, the cluster executor's
shard fragments, and the serving pool's worker sessions all submit to
the same bounded set of threads, so a 4-shard cluster running 4-worker
queries under an 8-worker serving pool can never oversubscribe the
machine: total thread demand is capped by the pool's capacity, full
stop.

Fairness is lease-based.  A parallel operator asks for N workers
(:meth:`WorkerPool.lease`) and is *granted* anywhere between 0 and N
slots depending on how many are already leased out; a grant of 0 (or 1)
degrades that operator to inline serial execution.  Because a grant
only bounds the in-flight window of the ordered morsel scheduler — it
never changes morsel boundaries or gather order — the *results* of a
query are byte-identical whatever the grant turns out to be.

The ordered gather (:meth:`_Lease.ordered_map`) is the correctness
backbone of the whole layer: morsels are submitted in scan order with a
bounded in-flight window and their results are yielded strictly in
submission order, so every downstream consumer observes exactly the
batch stream the serial path would have produced.

Since the segment layer landed, a columnar scan's morsels are its
storage **scan units** — one per sealed segment (``SEGMENT_ROWS`` =
``BATCH_ROWS``) plus the append tail — and the coordinator consults
each unit's zone maps *before* submission: a provably-empty segment is
dropped from the task list entirely, so skipping composes with
parallelism instead of wasting a worker on an empty morsel.  Runtime
join filters prune at the same point: a hash join's build-key range is
checked against each segment's zones during dispatch, so a morsel a
sibling's build side rules out is never submitted (and never charged
simulated I/O), while the Bloom row filter runs inside the workers —
only its counters fold back on the coordinator, keeping every
statistics mutation single-threaded.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Any, Callable, Iterable, Iterator, Optional, TypeVar

from ..telemetry.metrics import METRICS

_T = TypeVar("_T")

#: Upper bound on threads the global pool will ever run.  Sized so the
#: default serving pool (8 workers) times the default intra-query
#: grant stays within it; the lease accounting enforces the rest.
DEFAULT_CAPACITY = max(8, min(32, (os.cpu_count() or 8) * 2))

# Cached handles: lease/submit are per-morsel hot paths, so skip the
# registry lookup (``MetricsRegistry.reset`` zeroes in place).
_TASKS = METRICS.counter("workers.tasks_submitted")
_LEASES = METRICS.counter("workers.leases_granted")
_LEASES_DEGRADED = METRICS.counter("workers.leases_degraded")
_LEASED_GAUGE = METRICS.gauge("workers.leased")


class _Lease:
    """A grant of worker slots, released on context exit.

    ``workers`` is the granted slot count (possibly less than asked,
    possibly 0).  With fewer than 2 granted workers,
    :meth:`ordered_map` runs inline — same results, no threads.
    """

    def __init__(self, pool: "WorkerPool", workers: int):
        self.pool = pool
        self.workers = workers

    def __enter__(self) -> "_Lease":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def release(self) -> None:
        if self.workers:
            self.pool._release(self.workers)
            self.workers = 0

    def ordered_map(self, fn: Callable[[Any], _T],
                    items: Iterable[Any]) -> Iterator[_T]:
        """Apply ``fn`` to every item on the pool, yielding **in order**.

        Submissions run ahead of consumption by a bounded window
        (``2 × workers``) so workers pipeline I/O and compute while the
        coordinator drains results in submission order — the property
        that keeps parallel execution byte-identical to serial.
        """
        if self.workers < 2:
            for item in items:
                yield fn(item)
            return
        window = self.workers * 2
        pending: list[Future] = []
        iterator = iter(items)
        exhausted = False
        while True:
            while not exhausted and len(pending) < window:
                try:
                    item = next(iterator)
                except StopIteration:
                    exhausted = True
                    break
                pending.append(self.pool.submit(fn, item))
            if not pending:
                return
            yield pending.pop(0).result()


class WorkerPool:
    """A bounded thread pool with lease-based fairness accounting."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        self.capacity = max(1, capacity)
        self._mutex = threading.Lock()
        self._executor: Optional[ThreadPoolExecutor] = None
        self._leased = 0
        #: Introspection counters (the serving/cluster statistics pages).
        self.leases_granted = 0
        self.leases_degraded = 0
        self.tasks_submitted = 0

    # -- execution ---------------------------------------------------------

    def submit(self, fn: Callable[..., _T], *args: Any, **kwargs: Any
               ) -> "Future[_T]":
        """Run ``fn`` on the pool (threads start lazily on first use)."""
        with self._mutex:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.capacity,
                    thread_name_prefix="repro-worker")
            self.tasks_submitted += 1
            executor = self._executor
        _TASKS.inc()
        return executor.submit(fn, *args, **kwargs)

    # -- fairness ----------------------------------------------------------

    def lease(self, requested: int) -> _Lease:
        """Grant up to ``requested`` worker slots (never more than free).

        Leases are advisory concurrency budgets, not thread
        reservations: a holder bounds its in-flight submissions by the
        grant, so the sum of grants bounds total thread demand.  When
        everything is spoken for the grant is 0 and the caller runs
        inline — intra-query parallelism degrades before it queues.
        """
        requested = max(0, requested)
        with self._mutex:
            granted = min(requested, self.capacity - self._leased)
            granted = max(0, granted)
            self._leased += granted
            self.leases_granted += 1
            if granted < requested:
                self.leases_degraded += 1
            leased_now = self._leased
        _LEASES.inc()
        if granted < requested:
            _LEASES_DEGRADED.inc()
        _LEASED_GAUGE.set(leased_now)
        return _Lease(self, granted)

    def _release(self, workers: int) -> None:
        with self._mutex:
            self._leased = max(0, self._leased - workers)
            leased_now = self._leased
        _LEASED_GAUGE.set(leased_now)

    @property
    def leased(self) -> int:
        with self._mutex:
            return self._leased

    def statistics(self) -> dict[str, int]:
        with self._mutex:
            return {
                "capacity": self.capacity,
                "leased": self._leased,
                "leases_granted": self.leases_granted,
                "leases_degraded": self.leases_degraded,
                "tasks_submitted": self.tasks_submitted,
            }

    def shutdown(self) -> None:
        """Stop the underlying threads (tests only — the pool is global)."""
        with self._mutex:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False)


_global_pool: Optional[WorkerPool] = None
_global_mutex = threading.Lock()


def get_worker_pool() -> WorkerPool:
    """The process-wide shared pool (created on first use)."""
    global _global_pool
    with _global_mutex:
        if _global_pool is None:
            _global_pool = WorkerPool()
        return _global_pool
