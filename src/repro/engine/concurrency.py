"""Concurrency primitives: reader–writer locks and snapshot epochs.

The public SkyServer is a *concurrent* service — "about 500 people
accessing about 4,000 pages per day" with sharp TV-show peaks (paper
§7) — while the loader keeps publishing new data behind it.  The
engine therefore follows the classic shared-nothing-reads /
exclusive-writes discipline of the SQL Server substrate:

* every :class:`~repro.engine.table.Table` owns a
  :class:`ReadWriteLock`; any number of SELECTs scan a table
  concurrently, while DML (INSERT/DELETE/TRUNCATE), VACUUM, storage
  conversion and index DDL take exclusive access;
* the :class:`~repro.engine.catalog.Database` keeps a monotonically
  increasing **epoch**: every completed exclusive (write) section and
  every DDL bump advances it.  A reader that records the epoch under
  its read locks has a consistent snapshot identifier — if the epoch is
  unchanged, nothing in the database has changed;
* :func:`read_locks` acquires a whole set of table locks in a single
  global order (lower-cased table name), which is what the serving
  pool (:mod:`repro.skyserver.pool`) uses to pin every table of a query
  for the duration of its execution without risking lock-order
  deadlocks.

The lock is reentrant: a thread may nest read sections, nest write
sections, and read while it writes (the FK checker reads referenced
tables from inside an INSERT's exclusive section).  Upgrading — asking
for the write lock while holding only the read lock — deadlocks two
upgraders against each other, so it raises :class:`LockUpgradeError`
immediately instead.

Writers are preferred: once a writer is waiting, new first-entry
readers queue behind it, so a steady SELECT stream cannot starve the
loader.  All counters (acquisitions and contentions per side) are
surfaced through ``site_statistics()["serving"]["locks"]``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Optional, Protocol


class LockUpgradeError(RuntimeError):
    """Raised when a thread holding a read lock asks for the write lock."""


class ReadWriteLock:
    """A reentrant many-readers / one-writer lock with contention counters."""

    __slots__ = ("name", "_cond", "_readers", "_writer", "_writer_depth",
                 "_waiting_writers", "on_exclusive_release",
                 "read_acquisitions", "write_acquisitions",
                 "read_contentions", "write_contentions")

    def __init__(self, name: str = "",
                 on_exclusive_release: Optional[Callable[[], None]] = None):
        self.name = name
        self._cond = threading.Condition(threading.Lock())
        #: thread ident -> nested read depth (writers may appear here too
        #: when they read inside their own exclusive section).
        self._readers: dict[int, int] = {}
        self._writer: Optional[int] = None
        self._writer_depth = 0
        self._waiting_writers = 0
        #: Fired (outside the internal mutex) when the outermost write
        #: section ends; the catalog hooks the database epoch bump here.
        self.on_exclusive_release = on_exclusive_release
        self.read_acquisitions = 0
        self.write_acquisitions = 0
        self.read_contentions = 0
        self.write_contentions = 0

    # -- read side ---------------------------------------------------------

    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            self.read_acquisitions += 1
            if self._writer == me or me in self._readers:
                # Nested read, or a read inside our own write section.
                self._readers[me] = self._readers.get(me, 0) + 1
                return
            if self._writer is not None or self._waiting_writers:
                self.read_contentions += 1
                while self._writer is not None or self._waiting_writers:
                    self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            depth = self._readers.get(me, 0)
            if depth <= 0:
                raise RuntimeError(f"release_read without acquire_read on {self.name!r}")
            if depth == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    @contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- write side --------------------------------------------------------

    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            self.write_acquisitions += 1
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                raise LockUpgradeError(
                    f"thread holds the read lock on {self.name!r}; "
                    "read->write upgrades deadlock and are not supported")
            self._waiting_writers += 1
            try:
                if self._writer is not None or self._readers:
                    self.write_contentions += 1
                    while self._writer is not None or self._readers:
                        self._cond.wait()
                self._writer = me
                self._writer_depth = 1
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError(f"release_write by a non-owner on {self.name!r}")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                # The hook fires while the internal mutex is still held:
                # no reader can acquire the lock before the epoch has
                # advanced, so "same epoch" really does mean "same data".
                # Hooks must therefore be cheap and take no other locks
                # beyond leaf mutexes (the catalog's epoch counter is).
                if self.on_exclusive_release is not None:
                    self.on_exclusive_release()
                self._writer = None
                self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- introspection -----------------------------------------------------

    def held_exclusively_by_me(self) -> bool:
        return self._writer == threading.get_ident()

    def statistics(self) -> dict[str, int]:
        return {
            "read_acquisitions": self.read_acquisitions,
            "write_acquisitions": self.write_acquisitions,
            "read_contentions": self.read_contentions,
            "write_contentions": self.write_contentions,
        }


class _Lockable(Protocol):  # pragma: no cover - typing only
    name: str
    lock: ReadWriteLock


@contextmanager
def read_locks(tables: Iterable[_Lockable]) -> Iterator[None]:
    """Hold the read lock of every table for the duration of the block.

    Locks are acquired in one global order (lower-cased table name, with
    duplicates collapsed) so two queries locking overlapping table sets
    can never deadlock each other, and released in reverse order.
    """
    with lock_tables((table, "read") for table in tables):
        yield


@contextmanager
def lock_tables(specs: Iterable[tuple[_Lockable, str]]) -> Iterator[None]:
    """Acquire a mixed set of table locks in one global order.

    ``specs`` pairs each table with ``"read"`` or ``"write"``.  All
    locks a code path needs must be requested through one call —
    acquiring incrementally (taking a lock while already holding
    another out of name order) is what creates deadlock cycles.  A
    table requested in both modes is taken in ``"write"`` (the owner of
    the exclusive side may freely read).  Acquisition follows the
    lower-cased table-name order; release is reversed.
    """
    modes: dict[int, tuple[_Lockable, str]] = {}
    for table, mode in specs:
        if mode not in ("read", "write"):
            raise ValueError(f"unknown lock mode {mode!r}")
        previous = modes.get(id(table))
        if previous is None or (previous[1] == "read" and mode == "write"):
            modes[id(table)] = (table, mode)
    ordered = sorted(modes.values(), key=lambda spec: spec[0].name.lower())
    acquired: list[tuple[_Lockable, str]] = []
    try:
        for table, mode in ordered:
            if mode == "write":
                table.lock.acquire_write()
            else:
                table.lock.acquire_read()
            acquired.append((table, mode))
        yield
    finally:
        for table, mode in reversed(acquired):
            if mode == "write":
                table.lock.release_write()
            else:
                table.lock.release_read()
