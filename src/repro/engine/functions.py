"""Scalar and table-valued function registry.

The SkyServer exposes its spatial machinery through functions:
``fPhotoFlags('saturated')`` returns a flag bit mask, while
``fGetNearbyObjEq(ra, dec, radius)`` is a *table-valued* function whose
result is joined against PhotoObj (paper §9.1.4 and the Query 1 plan of
Figure 10).  The engine keeps both kinds in per-database registries so
the planner can build FunctionScan operators and the expression
evaluator can call scalar functions (including the ``dbo.`` prefix used
in T-SQL).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from .errors import CatalogError, UnknownFunctionError
from .types import Column


@dataclass
class ScalarFunction:
    """A registered scalar function."""

    name: str
    implementation: Callable[..., Any]
    description: str = ""

    def __call__(self, *args: Any) -> Any:
        return self.implementation(*args)


@dataclass
class TableValuedFunction:
    """A registered table-valued function.

    ``implementation`` receives the evaluated argument values and
    returns an iterable of row dictionaries whose keys match
    ``columns``.  ``row_estimate`` lets the planner guess cardinality
    (the HTM cover of a 1-arcminute circle returns a handful of rows,
    which is why Figure 10's plan nested-loop-joins it against the
    indexed PhotoObj table).
    """

    name: str
    columns: Sequence[Column]
    implementation: Callable[..., Iterable[Mapping[str, Any]]]
    description: str = ""
    row_estimate: int = 10

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def __call__(self, *args: Any) -> list[dict[str, Any]]:
        declared = {column.name.lower(): column.name for column in self.columns}
        rows = []
        for raw in self.implementation(*args):
            row = {}
            for key, value in dict(raw).items():
                row[declared.get(key.lower(), key)] = value
            rows.append(row)
        return rows


def normalize_function_name(name: str) -> str:
    """Strip the T-SQL ``dbo.`` schema prefix and lower-case the name."""
    lowered = name.lower()
    if lowered.startswith("dbo."):
        lowered = lowered[len("dbo."):]
    return lowered


class FunctionRegistry:
    """Holds the scalar and table-valued functions of one database."""

    def __init__(self) -> None:
        self._scalar: dict[str, ScalarFunction] = {}
        self._table_valued: dict[str, TableValuedFunction] = {}

    # -- registration ------------------------------------------------------

    def register_scalar(self, name: str, implementation: Callable[..., Any], *,
                        description: str = "", replace: bool = False) -> ScalarFunction:
        key = normalize_function_name(name)
        if key in self._scalar and not replace:
            raise CatalogError(f"scalar function {name!r} already registered")
        function = ScalarFunction(name, implementation, description)
        self._scalar[key] = function
        return function

    def register_table_valued(self, name: str, columns: Sequence[Column],
                              implementation: Callable[..., Iterable[Mapping[str, Any]]], *,
                              description: str = "", row_estimate: int = 10,
                              replace: bool = False) -> TableValuedFunction:
        key = normalize_function_name(name)
        if key in self._table_valued and not replace:
            raise CatalogError(f"table-valued function {name!r} already registered")
        function = TableValuedFunction(name, list(columns), implementation,
                                       description, row_estimate)
        self._table_valued[key] = function
        return function

    # -- lookup --------------------------------------------------------------

    def scalar(self, name: str) -> ScalarFunction:
        key = normalize_function_name(name)
        if key not in self._scalar:
            raise UnknownFunctionError(f"unknown scalar function {name!r}")
        return self._scalar[key]

    def has_scalar(self, name: str) -> bool:
        return normalize_function_name(name) in self._scalar

    def table_valued(self, name: str) -> TableValuedFunction:
        key = normalize_function_name(name)
        if key not in self._table_valued:
            raise UnknownFunctionError(f"unknown table-valued function {name!r}")
        return self._table_valued[key]

    def has_table_valued(self, name: str) -> bool:
        return normalize_function_name(name) in self._table_valued

    def scalar_callables(self) -> dict[str, Callable[..., Any]]:
        """Mapping used to build :class:`~repro.engine.expressions.EvaluationContext`."""
        callables: dict[str, Callable[..., Any]] = {}
        for key, function in self._scalar.items():
            callables[key] = function.implementation
            callables[f"dbo.{key}"] = function.implementation
        return callables

    def describe(self) -> dict[str, list[dict[str, str]]]:
        """Schema-browser metadata for the functions pane."""
        return {
            "scalar": [
                {"name": function.name, "description": function.description}
                for function in sorted(self._scalar.values(), key=lambda f: f.name.lower())
            ],
            "table_valued": [
                {
                    "name": function.name,
                    "description": function.description,
                    "columns": ", ".join(function.column_names()),
                }
                for function in sorted(self._table_valued.values(), key=lambda f: f.name.lower())
            ],
        }
