"""Table and column statistics: the optimizer's view of the data.

SQL Server's optimizer (the substrate the paper's plans come from —
Figures 10-12 all show *chosen* plans) estimates predicate selectivity
from per-column statistics collected by ``UPDATE STATISTICS`` /
auto-stats.  This module reproduces that subsystem for the engine:

* :func:`collect_table_statistics` scans one table and builds a
  :class:`TableStatistics` — the live row count plus, per column, a
  :class:`ColumnStatistics` carrying a distinct-count estimate, the
  min/max, the null fraction, an **equi-depth histogram** and the
  **most-common values** (MCVs) with their frequencies.
* The SQL statement ``ANALYZE [table]`` (and the loader, automatically,
  after a load) stores the result in the catalog
  (:meth:`repro.engine.catalog.Database.analyze_table`).
* The planner's cost-based optimizer asks :class:`ColumnStatistics`
  for equality and range selectivities; when a column (or the whole
  table) has no statistics the planner falls back to its fixed
  selectivity constants, exactly as before.

Statistics are **staleness-tracked**: each snapshot records the owning
table's modification counter (bumped by every INSERT/DELETE/TRUNCATE),
so ``SkyServer.site_statistics()`` can report how far out of date each
table's statistics have drifted.
"""

from __future__ import annotations

import bisect
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, TYPE_CHECKING

from .types import NULL, DataType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .table import Table

#: Equi-depth histogram resolution (buckets per column).
HISTOGRAM_BUCKETS = 64

#: Most-common values kept per column.
MCV_COUNT = 8

#: Selectivities never collapse below this (protects against a histogram
#: claiming literally zero rows for a bound just outside the data).
MIN_SELECTIVITY = 1e-6

#: A cardinality estimate whose q-error reaches this bound is considered
#: a misestimate: the session feedback cache invalidates the cached plan
#: and re-plans with the observed row counts as overrides.
FEEDBACK_QERROR_THRESHOLD = 4.0


def q_error(estimated: int, actual: int) -> float:
    """The symmetric ratio error ``max(est/actual, actual/est)``.

    Both sides are clamped to one row first, so a zero on either side
    (a filter that matched nothing, or an estimate rounded down) yields
    a finite ratio instead of a division error.  1.0 means the estimate
    was exact; the value is always >= 1.0.
    """
    est = max(1, int(estimated))
    act = max(1, int(actual))
    return est / act if est >= act else act / est


@dataclass
class ColumnStatistics:
    """One column's statistics snapshot.

    ``histogram_bounds`` is a sorted list of ``bucket_count + 1``
    boundary values taken at equi-depth quantiles of the non-NULL
    values (so each bucket holds roughly the same number of rows);
    it is empty when the column's values do not sort (mixed types) or
    the column was empty.  ``mcvs`` maps the most common values to
    their occurrence counts (only values occurring more than once).
    """

    column: str
    dtype: DataType
    row_count: int
    null_count: int
    distinct_count: int
    minimum: Any = None
    maximum: Any = None
    histogram_bounds: list = field(default_factory=list)
    mcvs: dict = field(default_factory=dict)

    @property
    def non_null_count(self) -> int:
        return self.row_count - self.null_count

    @property
    def null_fraction(self) -> float:
        return self.null_count / self.row_count if self.row_count else 0.0

    # -- selectivity estimation ------------------------------------------

    def equality_selectivity(self, value: Any) -> Optional[float]:
        """Estimated fraction of the table's rows with ``column = value``.

        MCVs answer exactly; other values get the uniform share of the
        non-MCV remainder.  Returns None when the column has no usable
        statistics (the planner then falls back to its constant).
        """
        if self.row_count == 0:
            return MIN_SELECTIVITY
        try:
            hit = self.mcvs.get(value)
        except TypeError:
            return None
        if hit is not None:
            return max(hit / self.row_count, MIN_SELECTIVITY)
        if self.distinct_count <= 0:
            return None
        rest_rows = max(0, self.non_null_count - sum(self.mcvs.values()))
        rest_distinct = max(1, self.distinct_count - len(self.mcvs))
        return max(rest_rows / rest_distinct / self.row_count, MIN_SELECTIVITY)

    def range_selectivity(self, low: Any = None, high: Any = None) -> Optional[float]:
        """Estimated fraction of rows with ``low <= column <= high``.

        Open bounds are passed as None.  Uses the equi-depth histogram
        with linear interpolation inside numeric buckets.  Returns None
        without a histogram or when the bounds do not compare to the
        boundary values.
        """
        if self.row_count == 0:
            return MIN_SELECTIVITY
        if not self.histogram_bounds:
            return None
        try:
            fraction_high = (1.0 if high is None
                             else self._fraction_at_most(high))
            fraction_low = (0.0 if low is None
                            else self._fraction_at_most(low, before=True))
        except TypeError:
            return None
        inside = max(0.0, min(1.0, fraction_high - fraction_low))
        rows = inside * self.non_null_count
        # Point or narrow ranges interpolate to near-zero bucket width
        # even when they bracket a heavy duplicate; the MCV frequencies
        # inside the range are an exact lower bound.
        try:
            mcv_rows = sum(count for value, count in self.mcvs.items()
                           if (low is None or value >= low)
                           and (high is None or value <= high))
        except TypeError:
            mcv_rows = 0
        selectivity = max(rows, mcv_rows) / self.row_count
        return max(selectivity, MIN_SELECTIVITY)

    def _fraction_at_most(self, value: Any, *, before: bool = False) -> float:
        """Fraction of non-NULL values ``<= value`` (``< value`` with before).

        Duplicate-heavy columns repeat a value across several boundary
        entries; bisecting to the last (``<=``) or first (``<``)
        occurrence counts every bucket the value spans, so a point
        range over a frequent value keeps its real mass.
        """
        bounds = self.histogram_bounds
        buckets = len(bounds) - 1
        if buckets <= 0:
            # Single-value histogram: everything equals bounds[0].
            if value > bounds[0] or (not before and value == bounds[0]):
                return 1.0
            return 0.0
        position = (bisect.bisect_left(bounds, value) if before
                    else bisect.bisect_right(bounds, value))
        if position == 0:
            return 0.0
        if position > buckets:
            return 1.0
        lower, upper = bounds[position - 1], bounds[position]
        if isinstance(value, (int, float)) and not isinstance(value, bool) \
                and isinstance(lower, (int, float)) and isinstance(upper, (int, float)) \
                and upper > lower:
            within = (value - lower) / (upper - lower)
        else:
            within = 0.5
        return (position - 1 + max(0.0, min(1.0, within))) / buckets

    def describe(self) -> dict[str, Any]:
        return {
            "column": self.column,
            "distinct": self.distinct_count,
            "null_fraction": round(self.null_fraction, 4),
            "min": self.minimum,
            "max": self.maximum,
            "histogram_buckets": max(0, len(self.histogram_bounds) - 1),
            "mcvs": len(self.mcvs),
        }


@dataclass
class TableStatistics:
    """One table's statistics snapshot, as stored in the catalog."""

    table: str
    row_count: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)
    #: The table's modification counter at collection time; comparing it
    #: against the live counter measures staleness.
    modification_counter: int = 0

    def column(self, name: str) -> Optional[ColumnStatistics]:
        return self.columns.get(name.lower())

    def modifications_since(self, table: "Table") -> int:
        return max(0, table.modification_counter - self.modification_counter)

    def is_stale(self, table: "Table") -> bool:
        return table.modification_counter != self.modification_counter

    def describe(self) -> dict[str, Any]:
        return {
            "table": self.table,
            "row_count": self.row_count,
            "analyzed_at_modification": self.modification_counter,
            "columns": {name: stats.describe() for name, stats in self.columns.items()},
        }


# ---------------------------------------------------------------------------
# Collection
# ---------------------------------------------------------------------------

def collect_table_statistics(table: "Table", *,
                             bucket_count: int = HISTOGRAM_BUCKETS,
                             mcv_count: int = MCV_COUNT) -> TableStatistics:
    """One-pass ANALYZE of ``table``: statistics for every column."""
    values_by_column = _column_values(table)
    row_count = table.row_count
    columns: dict[str, ColumnStatistics] = {}
    for column in table.columns:
        name = column.name.lower()
        values = values_by_column.get(name, [])
        columns[name] = _column_statistics(name, column.dtype, values, row_count,
                                           bucket_count=bucket_count,
                                           mcv_count=mcv_count)
    return TableStatistics(table=table.name, row_count=row_count, columns=columns,
                           modification_counter=table.modification_counter)


def _column_values(table: "Table") -> dict[str, list]:
    """Non-NULL values per column, reading column buffers directly when possible."""
    storage = table.storage
    collected: dict[str, list] = {column.name.lower(): [] for column in table.columns}
    if storage.kind == "column":
        buffers, masks = storage.batch_columns()
        live = storage.live_positions(0, len(storage))
        for name, values in collected.items():
            buffer = buffers[name]
            mask = masks.get(name)
            if mask is None:
                values.extend(buffer[i] for i in live)
            else:
                values.extend(buffer[i] for i in live if not mask[i])
        return collected
    for row in storage.iter_dicts():
        for name, values in collected.items():
            value = row.get(name, NULL)
            if value is not NULL and value is not None:
                values.append(value)
    return collected


def _column_statistics(name: str, dtype: DataType, values: list, row_count: int, *,
                       bucket_count: int, mcv_count: int) -> ColumnStatistics:
    null_count = row_count - len(values)
    distinct = 0
    mcvs: dict = {}
    try:
        counter = Counter(values)
        distinct = len(counter)
        mcvs = {value: count for value, count
                in counter.most_common(mcv_count) if count > 1}
    except TypeError:
        # Unhashable values: no distinct estimate, no MCVs.
        pass
    minimum = maximum = None
    bounds: list = []
    if values:
        try:
            ordered = sorted(values)
        except TypeError:
            ordered = None
        if ordered is not None:
            minimum, maximum = ordered[0], ordered[-1]
            bounds = _equi_depth_bounds(ordered, bucket_count)
    return ColumnStatistics(column=name, dtype=dtype, row_count=row_count,
                            null_count=null_count, distinct_count=distinct,
                            minimum=minimum, maximum=maximum,
                            histogram_bounds=bounds, mcvs=mcvs)


def _equi_depth_bounds(ordered: Sequence, bucket_count: int) -> list:
    """Boundary values at equi-depth quantiles of an already-sorted sample."""
    n = len(ordered)
    buckets = max(1, min(bucket_count, n - 1)) if n > 1 else 0
    if buckets == 0:
        return [ordered[0]]
    bounds = [ordered[round(i * (n - 1) / buckets)] for i in range(buckets + 1)]
    return bounds
