"""Durable databases: checkpoints, write-ahead logging and recovery.

This module is the orchestration layer over :mod:`repro.storage`: it
owns a database's on-disk directory, hooks every table's mutation
events into a write-ahead log, writes atomic checkpoints, and rebuilds
a :class:`~repro.engine.catalog.Database` from disk — replaying the WAL
tail so a process killed mid-write reopens to exactly the state whose
bytes reached the log.

Directory layout (one directory per database; a sharded cluster keeps
one per shard plus one for the coordinator — see
:mod:`repro.cluster.shard`)::

    <path>/
      MANIFEST.json       # the commit point: schema + pointers, renamed into place
      wal-<N>.log         # the WAL named by the manifest (per-checkpoint file)
      data-<N>/           # the checkpoint the manifest points to
        t0000.tbl ...     # per-table storage state (repro.storage.format codec)
        statistics.bin    # ANALYZE snapshots, serialized (never re-derived on open)
        extra-<name>.bin  # component state (e.g. a shard's sequence spine)

Crash-safety argument, in full:

1.  Every DML/DDL mutation appends one WAL frame *inside* the mutating
    lock section, so per-table WAL order equals row-id assignment
    order; replaying the frames in order through the same code paths
    (``insert(skip_fk=True)`` with the already-prepared row, real
    ``vacuum()``/``convert_storage()`` calls) reassigns identical row
    ids.  Recovery is bit-for-bit, not merely logically equivalent.
2.  A checkpoint freezes the database under **read locks on every
    table** (writers drain, readers keep flowing), serializes storage
    state while frozen, then commits with a single atomic
    ``os.replace`` of ``MANIFEST.json``.  The new manifest names a
    *new, empty* WAL file created before the rename; the old WAL and
    old data directory are deleted only after the rename.  Whatever
    instant the process dies, the manifest on disk names one complete
    (checkpoint, WAL) pair: before the rename that is the old pair
    (old WAL intact — nothing lost), after it the new pair (new WAL
    empty — nothing replayed twice).  There is no window where stale
    WAL frames can be applied on top of a checkpoint that already
    contains them.
3.  WAL frames are CRC-framed; replay stops at the first torn frame
    (:mod:`repro.storage.wal`).  Mutations whose frames did not fully
    reach disk are the *suffix* of the log, so the reopened state is
    always a prefix of history — never a gap.

What recovery may assume (and what it may not) is written down in
CONTRIBUTING.md; the format itself in ``engine/README.md``.

Sealing is intentionally *not* logged: segment boundaries are a pure
function of the append sequence (every ``SEGMENT_ROWS`` rows), so
replaying inserts re-seals identically.  ANALYZE is durable as of the
last checkpoint only — statistics are advisory and re-derivable.
Python-level CHECK-constraint callables cannot be serialized; replay
re-applies prepared rows with checks already passed, and reopened
tables keep declarative constraints (NOT NULL, PK, FK) only.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import threading
import time
from typing import Any, Callable, Optional

from ..storage import decode_value, encode_value
from ..storage.wal import WriteAheadLog, replay_file
from ..telemetry.metrics import METRICS
from ..telemetry.trace import TRACER
from .catalog import Database
from .concurrency import lock_tables
from .constraints import ForeignKey, PrimaryKey
from .errors import CatalogError
from .table import Table
from .types import Column, DataType
from .view import View

FORMAT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"

#: Default auto-checkpoint thresholds for :meth:`DurabilityManager.
#: maybe_checkpoint` — records appended since the last checkpoint, or
#: seconds elapsed with at least one record pending.
CHECKPOINT_RECORD_LIMIT = 50_000
CHECKPOINT_AGE_LIMIT = 300.0

# Cached instrument handles: the WAL append path is per-mutation hot,
# so skip the registry lookup (registry ``reset()`` zeroes in place,
# keeping these handles valid).
_WAL_APPENDS = METRICS.counter("wal.appends")
_WAL_BYTES = METRICS.counter("wal.bytes")
_CHECKPOINTS = METRICS.counter("durability.checkpoints")
_CHECKPOINT_SECONDS = METRICS.histogram("durability.checkpoint_seconds")


class RecoveryError(CatalogError):
    """The on-disk directory is not a readable database."""


def _fsync_directory(path: str) -> None:
    handle = os.open(path, os.O_RDONLY)
    try:
        os.fsync(handle)
    finally:
        os.close(handle)


_GENERATION_RE = re.compile(r"^(?:data-(\d+)|wal-(\d+)\.log)$")


def _generation_of(name: str) -> Optional[int]:
    """The checkpoint generation a ``data-N`` / ``wal-N.log`` entry
    belongs to (None for anything else, including the manifest)."""
    match = _GENERATION_RE.match(name)
    if match is None:
        return None
    return int(match.group(1) or match.group(2))


def _highest_generation(path: str) -> int:
    """The largest checkpoint generation already present at ``path``."""
    highest = 0
    try:
        names = os.listdir(path)
    except FileNotFoundError:
        return 0
    for name in names:
        generation = _generation_of(name)
        if generation is not None:
            highest = max(highest, generation)
    return highest


def _write_file(path: str, payload: bytes, *, fsync: bool) -> None:
    with open(path, "wb") as handle:
        handle.write(payload)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())


# -- schema <-> manifest JSON -------------------------------------------------

def _column_entry(column: Column) -> dict[str, Any]:
    return {"name": column.name, "dtype": column.dtype.value,
            "nullable": column.nullable, "default": column.default,
            "description": column.description, "unit": column.unit}


def _column_from_entry(entry: dict[str, Any]) -> Column:
    return Column(entry["name"], DataType(entry["dtype"]),
                  nullable=entry["nullable"], default=entry["default"],
                  description=entry["description"], unit=entry["unit"])


def _table_schema(table: Table) -> dict[str, Any]:
    pk = table.primary_key
    return {
        "name": table.name,
        "description": table.description,
        "storage": table.storage.kind,
        "columns": [_column_entry(column) for column in table.columns],
        "primary_key": ({"columns": list(pk.columns), "name": pk.name}
                        if pk is not None else None),
        "foreign_keys": [
            {"columns": list(fk.columns),
             "referenced_table": fk.referenced_table,
             "referenced_columns": list(fk.referenced_columns),
             "name": fk.name, "allow_null": fk.allow_null,
             "treat_zero_as_null": fk.treat_zero_as_null}
            for fk in table.foreign_keys],
        "indexes": [
            {"name": index.name, "columns": list(index.columns),
             "unique": index.unique,
             "included_columns": list(index.included_columns)}
            for index in table.indexes.values()],
    }


def _create_from_schema(database: Database, schema: dict[str, Any]) -> Table:
    pk = schema.get("primary_key")
    table = database.create_table(
        schema["name"],
        [_column_from_entry(entry) for entry in schema["columns"]],
        primary_key=(PrimaryKey(columns=pk["columns"], name=pk.get("name", ""))
                     if pk else None),
        foreign_keys=[
            ForeignKey(columns=entry["columns"],
                       referenced_table=entry["referenced_table"],
                       referenced_columns=entry["referenced_columns"],
                       name=entry.get("name", ""),
                       allow_null=entry.get("allow_null", True),
                       treat_zero_as_null=entry.get("treat_zero_as_null", False))
            for entry in schema.get("foreign_keys", ())],
        description=schema.get("description", ""),
        replace=True,
        storage=schema.get("storage", "row"))
    existing = {name.lower() for name in table.indexes}
    for index in schema.get("indexes", ()):
        if index["name"].lower() in existing:
            continue                      # the PK index auto-created above
        table.create_index(index["name"], index["columns"],
                           unique=index["unique"],
                           included_columns=index.get("included_columns", ()))
    return table


class DurabilityManager:
    """Owns one database directory: WAL, checkpoints, recovery.

    Create with :meth:`attach` (wrap a live database and write its
    first checkpoint) or :meth:`open` (rebuild a database from disk,
    replaying the WAL tail).  ``log_dml=False`` produces a
    checkpoint-only attachment with no WAL hooks — used for a cluster's
    coordinator, whose gather traffic (truncate/refill of routed
    tables, ``##temp`` results) would flood a log for state that is
    reconstructed from the shards anyway.
    """

    def __init__(self, database: Database, path: str | os.PathLike, *,
                 fsync: bool = False, log_dml: bool = True):
        self.database = database
        self.path = os.fspath(path)
        self.fsync = fsync
        self.log_dml = log_dml
        self.wal: Optional[WriteAheadLog] = None
        #: Innermost lock: serializes WAL appends and the WAL swap at
        #: checkpoint.  Never acquire a table lock while holding it.
        self._append_lock = threading.Lock()
        self._checkpoint_lock = threading.RLock()
        self._replaying = False
        self._staged_sequence: Optional[int] = None
        self._checkpoint_id = 0
        self.checkpoints_written = 0
        self.records_since_checkpoint = 0
        self.last_checkpoint_at: Optional[float] = None
        #: Extra component state serialized with every checkpoint
        #: (name -> zero-arg callable returning a codec-encodable value).
        #: A shard node registers its sequence spine here.
        self.state_providers: dict[str, Callable[[], Any]] = {}
        #: Recovery delegate for components that wrap table ops (a shard
        #: node remaps its sequence spine on vacuum/convert).  Optional
        #: methods: ``replay_insert(table, row, sequence)``,
        #: ``replay_vacuum(table)``, ``replay_convert(table, layout)``.
        self.replay_delegate: Any = None

    # -- lifecycle --------------------------------------------------------

    @classmethod
    def attach(cls, database: Database, path: str | os.PathLike, *,
               fsync: bool = False, log_dml: bool = True,
               checkpoint: bool = True) -> "DurabilityManager":
        """Make a live in-memory database durable at ``path``."""
        manager = cls(database, path, fsync=fsync, log_dml=log_dml)
        os.makedirs(manager.path, exist_ok=True)
        # Resume the generation counter past anything already on disk:
        # re-attaching into a previously-used directory (a data-release
        # flip re-homes the new release at the same path) must write its
        # first checkpoint to a *fresh* generation, never into the
        # directory the existing manifest still points at.
        manager._checkpoint_id = _highest_generation(manager.path)
        database.durability = manager
        if checkpoint:
            manager.checkpoint()
        else:
            # No checkpoint yet: open an initial WAL so mutations are
            # logged from the very first attach (bulk-load callers
            # checkpoint once the load settles).  ``wal-0.log`` is never
            # referenced by any manifest (checkpoint generations start
            # at 1), so truncating a stale leftover is always safe.
            initial = WriteAheadLog(
                os.path.join(manager.path, "wal-0.log"), fsync=fsync)
            initial.truncate()
            manager.wal = initial
        manager._attach_hooks()
        return manager

    @classmethod
    def open(cls, path: str | os.PathLike, *,
             fsync: bool = False, log_dml: bool = True,
             prepare: Optional[Callable[["DurabilityManager"], None]] = None,
             ) -> "DurabilityManager":
        """Rebuild the database stored at ``path`` and replay its WAL tail.

        ``prepare`` runs after the checkpoint is restored but before the
        WAL replays — the hook where a wrapping component (a shard node)
        loads its extra checkpoint state and installs a replay delegate.
        """
        root = os.fspath(path)
        manifest_path = os.path.join(root, MANIFEST_NAME)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise RecoveryError(f"no database at {root!r} (missing {MANIFEST_NAME})")
        except json.JSONDecodeError as error:
            raise RecoveryError(f"corrupt manifest at {manifest_path!r}: {error}")
        if manifest.get("format_version") != FORMAT_VERSION:
            raise RecoveryError(
                f"unsupported format version {manifest.get('format_version')!r}")

        database = Database(manifest["database"],
                            description=manifest.get("description", ""))
        manager = cls(database, root, fsync=fsync, log_dml=log_dml)
        manager._checkpoint_id = manifest["checkpoint_id"]
        manager.last_checkpoint_at = manifest.get("checkpoint_at")
        data_dir = os.path.join(root, manifest["data_dir"])

        for schema in manifest["tables"]:
            table = _create_from_schema(database, schema)
            with open(os.path.join(data_dir, schema["file"]), "rb") as handle:
                snapshot = decode_value(handle.read())
            table.storage.restore_state(snapshot["state"])
            table._data_bytes = snapshot["data_bytes"]
            table.modification_counter = snapshot["modification_counter"]
            index_states = snapshot.get("indexes")
            if (index_states is not None
                    and set(index_states) == set(table.indexes)):
                for name, index in table.indexes.items():
                    index.restore_entries(index_states[name])
            else:                       # pre-index-snapshot checkpoint
                table._rebuild_indexes_from_storage()

        for entry in manifest.get("views", ()):
            predicate = None
            if entry["predicate"]:
                from .sql.parser import parse_expression
                predicate = parse_expression(entry["predicate"])
            database.create_view(View(entry["name"], entry["base"], predicate,
                                      tuple(entry["columns"]),
                                      entry.get("description", "")),
                                 replace=True)

        statistics_path = os.path.join(data_dir, "statistics.bin")
        if os.path.exists(statistics_path):
            with open(statistics_path, "rb") as handle:
                database.statistics = decode_value(handle.read())

        manager._wal_path = os.path.join(root, manifest["wal"])
        if prepare is not None:
            prepare(manager)
        replayed = manager._replay_wal()
        manager.wal = WriteAheadLog(manager._wal_path, fsync=fsync)
        manager.records_since_checkpoint = replayed
        database.durability = manager
        manager._attach_hooks()
        return manager

    def close(self) -> None:
        """Release the WAL handle (does **not** checkpoint — callers that
        want a clean, replay-free reopen checkpoint first)."""
        self._detach_hooks()
        if self.database.durability is self:
            self.database.durability = None
        if self.wal is not None:
            self.wal.close()
            self.wal = None

    # -- hooks ------------------------------------------------------------

    def _attach_hooks(self) -> None:
        if not self.log_dml:
            return
        for table in self.database.tables.values():
            self._hook_table(table)

    def _detach_hooks(self) -> None:
        for table in self.database.tables.values():
            table.on_mutation(None)

    def _hook_table(self, table: Table) -> None:
        def hook(op: str, payload: dict, _table: Table = table) -> None:
            self._log(op, _table, payload)
        table.on_mutation(hook)

    def table_created(self, table: Table) -> None:
        """Catalog notification: a table appeared after attach."""
        if not self.log_dml:
            return
        self._hook_table(table)
        self._log("create_table", table, {"schema": _table_schema(table)})

    def table_dropped(self, name: str) -> None:
        if not self.log_dml:
            return
        self._log("drop_table", None, {"table": name})

    def stage_sequence(self, sequence: int) -> None:
        """Bind the cluster's global sequence number to the *next* insert
        record, so the (row, sequence) pair is one atomic WAL frame and
        can never tear apart under truncation.  Caller holds the
        cluster's DML lock, which serializes staged inserts."""
        self._staged_sequence = sequence

    def _log(self, op: str, table: Optional[Table], payload: dict) -> None:
        if self._replaying or self.wal is None:
            return
        record = dict(payload)
        record["op"] = op
        if table is not None:
            record["table"] = table.name
        if op == "insert":
            sequence = self._staged_sequence
            self._staged_sequence = None
            if sequence is not None:
                record["sequence"] = sequence
        frame = encode_value(record)
        tracer = TRACER
        if tracer.enabled and tracer.current() is not None:
            # Only attach WAL spans under an active query trace — bulk
            # loads append thousands of frames and would drown the
            # ring buffer with system noise.  Metrics count always.
            with tracer.span("wal.append", op=op,
                             table=record.get("table", "")):
                with self._append_lock:
                    if self.wal is not None:
                        self.wal.append(frame)
                        self.records_since_checkpoint += 1
        else:
            with self._append_lock:
                if self.wal is not None:
                    self.wal.append(frame)
                    self.records_since_checkpoint += 1
        _WAL_APPENDS.inc()
        _WAL_BYTES.inc(len(frame))

    # -- checkpoint -------------------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        """Write a full checkpoint and swing the manifest to it.

        Freezes the database under read locks on every table (writers
        drain; readers keep flowing), serializes while frozen, then
        commits via atomic manifest rename — see the module docstring
        for why the rename ordering makes every crash instant safe.
        """
        started = time.perf_counter()
        with self._checkpoint_lock:
            database = self.database
            tables = [database.table(name) for name in database.table_names()]
            # Read locks drain DML; the append lock additionally parks
            # catalog-level DDL (create_table takes no existing-table
            # lock), so its WAL record lands in the *new* log and is
            # replayed on top of this checkpoint rather than lost with
            # the old one.
            if TRACER.enabled:
                with TRACER.span("checkpoint", path=self.path,
                                 tables=len(tables)) as span:
                    with lock_tables([(table, "read") for table in tables]):
                        with self._append_lock:
                            report = self._checkpoint_frozen(tables)
                    span.attributes["bytes"] = report.get("bytes", 0)
            else:
                with lock_tables([(table, "read") for table in tables]):
                    with self._append_lock:
                        report = self._checkpoint_frozen(tables)
        _CHECKPOINTS.inc()
        _CHECKPOINT_SECONDS.observe(time.perf_counter() - started)
        return report

    def _checkpoint_frozen(self, tables: list[Table]) -> dict[str, Any]:
        database = self.database
        checkpoint_id = self._checkpoint_id + 1
        data_name = f"data-{checkpoint_id}"
        data_dir = os.path.join(self.path, data_name)
        old_data = (os.path.join(self.path, f"data-{self._checkpoint_id}")
                    if self._checkpoint_id else None)
        os.makedirs(data_dir, exist_ok=True)

        table_entries = []
        on_disk = 0
        for position, table in enumerate(tables):
            file_name = f"t{position:04d}.tbl"
            payload = encode_value({
                "table": table.name,
                "state": table.storage.checkpoint_state(),
                "data_bytes": table._data_bytes,
                "modification_counter": table.modification_counter,
                "indexes": {index.name: index.entries_state()
                            for index in table.indexes.values()},
            })
            _write_file(os.path.join(data_dir, file_name), payload,
                        fsync=self.fsync)
            on_disk += len(payload)
            entry = _table_schema(table)
            entry["file"] = file_name
            table_entries.append(entry)

        payload = encode_value(dict(database.statistics))
        _write_file(os.path.join(data_dir, "statistics.bin"), payload,
                    fsync=self.fsync)
        on_disk += len(payload)

        for name, provider in self.state_providers.items():
            payload = encode_value(provider())
            _write_file(os.path.join(data_dir, f"extra-{name}.bin"), payload,
                        fsync=self.fsync)
            on_disk += len(payload)

        wal_name = f"wal-{checkpoint_id}.log"
        new_wal = WriteAheadLog(os.path.join(self.path, wal_name),
                                fsync=self.fsync)
        if self.fsync:
            _fsync_directory(data_dir)
            _fsync_directory(self.path)

        manifest = {
            "format_version": FORMAT_VERSION,
            "database": database.name,
            "description": database.description,
            "checkpoint_id": checkpoint_id,
            "checkpoint_at": time.time(),
            "data_dir": data_name,
            "wal": wal_name,
            "schema_version": database.schema_version,
            "tables": table_entries,
            "views": [
                {"name": view.name, "base": view.base,
                 "predicate": (view.predicate.sql()
                               if view.predicate is not None else ""),
                 "columns": list(view.columns),
                 "description": view.description}
                for view in database.views.values()],
        }
        manifest_tmp = os.path.join(self.path, MANIFEST_NAME + ".tmp")
        _write_file(manifest_tmp,
                    json.dumps(manifest, indent=1).encode("utf-8"),
                    fsync=self.fsync)
        # The commit point: everything before this rename is invisible
        # to recovery; everything after it is the new truth.
        os.replace(manifest_tmp, os.path.join(self.path, MANIFEST_NAME))
        if self.fsync:
            _fsync_directory(self.path)

        old_wal = self.wal                 # append lock held by checkpoint()
        self.wal = new_wal
        self.records_since_checkpoint = 0
        if old_wal is not None:
            old_wal.close()
            try:
                os.remove(old_wal.path)
            except FileNotFoundError:
                pass
        if old_data and os.path.isdir(old_data):
            shutil.rmtree(old_data, ignore_errors=True)
        # Sweep generations from any previous tenancy of this directory
        # (a re-attach after a release flip): the manifest now points at
        # ``checkpoint_id`` only, so every other generation is garbage.
        for name in os.listdir(self.path):
            generation = _generation_of(name)
            if generation is None or generation == checkpoint_id:
                continue
            stale = os.path.join(self.path, name)
            if os.path.isdir(stale):
                shutil.rmtree(stale, ignore_errors=True)
            else:
                try:
                    os.remove(stale)
                except FileNotFoundError:
                    pass

        self._checkpoint_id = checkpoint_id
        self.checkpoints_written += 1
        self.last_checkpoint_at = manifest["checkpoint_at"]
        return {"checkpoint_id": checkpoint_id, "tables": len(table_entries),
                "bytes": on_disk}

    def maybe_checkpoint(self, *, record_limit: int = CHECKPOINT_RECORD_LIMIT,
                         age_limit: float = CHECKPOINT_AGE_LIMIT) -> bool:
        """Checkpoint when the WAL tail has grown past ``record_limit``
        records or is older than ``age_limit`` seconds (the periodic
        policy; cheap to call after any write)."""
        pending = self.records_since_checkpoint
        if not pending:
            return False
        age = (time.time() - self.last_checkpoint_at
               if self.last_checkpoint_at is not None else 0.0)
        if pending < record_limit and age < age_limit:
            return False
        self.checkpoint()
        return True

    # -- recovery ---------------------------------------------------------

    def _replay_wal(self) -> int:
        self._replaying = True
        count = 0
        try:
            for record in replay_file(self._wal_path):
                self._apply(decode_value(record.payload))
                count += 1
        finally:
            self._replaying = False
        return count

    def _apply(self, record: dict[str, Any]) -> None:
        op = record["op"]
        database = self.database
        if op == "create_table":
            _create_from_schema(database, record["schema"])
            return
        if op == "drop_table":
            database.drop_table(record["table"], if_exists=True)
            return
        table = database.table(record["table"])
        delegate = self.replay_delegate
        if op == "insert":
            if delegate is not None and hasattr(delegate, "replay_insert"):
                delegate.replay_insert(table, record["row"],
                                       record.get("sequence"))
            else:
                table.insert(record["row"], skip_fk=True)
        elif op == "delete":
            table.delete_row(record["row_id"])
        elif op == "truncate":
            table.truncate()
        elif op == "vacuum":
            if delegate is not None and hasattr(delegate, "replay_vacuum"):
                delegate.replay_vacuum(table)
            else:
                table.vacuum()
        elif op == "convert":
            if delegate is not None and hasattr(delegate, "replay_convert"):
                delegate.replay_convert(table, record["layout"])
            else:
                table.convert_storage(record["layout"])
        elif op == "create_index":
            if record["index"].lower() not in {n.lower() for n in table.indexes}:
                table.create_index(record["index"], record["columns"],
                                   unique=record["unique"],
                                   included_columns=record["included_columns"])
        elif op == "drop_index":
            try:
                table.drop_index(record["index"])
            except Exception:
                pass
        else:
            raise RecoveryError(f"unknown WAL op {op!r}")

    def read_extra(self, name: str) -> Any:
        """Decode a component's ``extra-<name>.bin`` from the checkpoint
        the manifest currently points to (None when absent)."""
        path = os.path.join(self.path, f"data-{self._checkpoint_id}",
                            f"extra-{name}.bin")
        if not os.path.exists(path):
            return None
        with open(path, "rb") as handle:
            return decode_value(handle.read())

    # -- reporting --------------------------------------------------------

    def statistics(self) -> dict[str, Any]:
        """The durability slice of ``site_statistics()["storage"]``."""
        on_disk = 0
        data_dir = os.path.join(self.path, f"data-{self._checkpoint_id}")
        if os.path.isdir(data_dir):
            for entry in os.scandir(data_dir):
                on_disk += entry.stat().st_size
        manifest = os.path.join(self.path, MANIFEST_NAME)
        if os.path.exists(manifest):
            on_disk += os.path.getsize(manifest)
        wal_bytes = self.wal.size() if self.wal is not None else 0
        age = (time.time() - self.last_checkpoint_at
               if self.last_checkpoint_at is not None else None)
        return {
            "path": self.path,
            "on_disk_bytes": on_disk,
            "wal_bytes": wal_bytes,
            "wal_records_since_checkpoint": self.records_since_checkpoint,
            "checkpoint_id": self._checkpoint_id,
            "checkpoints_written": self.checkpoints_written,
            "last_checkpoint_age_seconds": age,
            "fsync": self.fsync,
        }
