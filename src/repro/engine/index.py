"""B-tree style indices.

The paper's design replaces ObjectivityDB "tag tables" with ordinary
B-tree indices: an index on columns (A, B, C) acts as an automatically
maintained vertical slice of the table that the optimizer uses whenever
a query is *covered* by those columns, and it also supports range
seeks on a prefix of the key (section 9.1.3).  This module provides a
sorted-array index with the same observable behaviour: composite keys,
optional uniqueness, prefix range scans, covered-column accounting and
per-entry byte widths used by the size accounting of Table 1 ("indices
approximately double the space").
"""

from __future__ import annotations

import bisect
from array import array
from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Optional, Sequence, TYPE_CHECKING

from .errors import PrimaryKeyViolation, SchemaError
from .types import NULL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .table import Table


class _MinSentinel:
    """Pads short range bounds so they sort before every real value."""


class _MaxSentinel:
    """Pads short range bounds so they sort after every real value."""


_MIN = _MinSentinel()
_MAX = _MaxSentinel()


def _pack_key_column(values: list) -> Any:
    """Pack one key column for a checkpoint: an ``array`` when every
    value is a plain int64/float (bools and NULL force the list form —
    an array would come back as a different type)."""
    if all(type(value) is int and -(1 << 63) <= value < (1 << 63)
           for value in values):
        return array("q", values)
    if all(type(value) is float for value in values):
        return array("d", values)
    return values


class _KeyWrapper:
    """Total ordering over heterogeneous, possibly-NULL key tuples.

    NULLs sort first (as in SQL Server index ordering); values of
    different types are ordered by a type rank to keep the order total;
    the two sentinels bracket every real value for open-ended ranges.
    """

    __slots__ = ("_ranked", "key")

    def __init__(self, key: tuple):
        self.key = key
        ranked = []
        for part in key:
            if isinstance(part, _MinSentinel):
                ranked.append((-1, 0, ""))
            elif isinstance(part, _MaxSentinel):
                ranked.append((9, 0, ""))
            elif part is NULL:
                ranked.append((0, 0, ""))
            elif isinstance(part, bool):
                ranked.append((1, int(part), ""))
            elif isinstance(part, (int, float)):
                ranked.append((1, part, ""))
            elif isinstance(part, str):
                ranked.append((2, 0, part.lower()))
            else:
                ranked.append((3, 0, str(part)))
        self._ranked = tuple(ranked)

    def __lt__(self, other: "_KeyWrapper") -> bool:
        return self._ranked < other._ranked

    def __le__(self, other: "_KeyWrapper") -> bool:
        return self._ranked <= other._ranked

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _KeyWrapper) and self._ranked == other._ranked

    def __hash__(self) -> int:
        return hash(self._ranked)


@dataclass
class IndexStatistics:
    """Book-keeping counters exposed to the planner and the benchmarks."""

    seeks: int = 0
    range_scans: int = 0
    full_scans: int = 0
    entries_read: int = 0

    def reset(self) -> None:
        self.seeks = 0
        self.range_scans = 0
        self.full_scans = 0
        self.entries_read = 0


class BTreeIndex:
    """A composite-key ordered index over a table.

    The implementation keeps a sorted array of ``(key, row_id)`` pairs
    (equivalent to the leaf level of a B-tree) and uses binary search
    for seeks.  Insertion into the sorted array is O(n) in the worst
    case, but the loader performs bulk inserts with ``defer_sort=True``
    followed by a single :meth:`rebuild`, the way warehouse loads build
    indices in practice.
    """

    def __init__(self, name: str, table: "Table", columns: Sequence[str], *,
                 unique: bool = False, included_columns: Sequence[str] = ()):
        if not columns:
            raise SchemaError(f"index {name!r} must have at least one key column")
        self.name = name
        self.table = table
        self.columns = [column.lower() for column in columns]
        self.included_columns = [column.lower() for column in included_columns]
        self.unique = unique
        self.statistics = IndexStatistics()
        self._entries: list[tuple[_KeyWrapper, int]] = []
        self._sorted = True

    # -- construction and maintenance ------------------------------------

    def key_for_row(self, row: dict[str, Any]) -> tuple:
        return tuple(row.get(column, NULL) for column in self.columns)

    def insert(self, row_id: int, row: dict[str, Any], *, defer_sort: bool = False) -> None:
        """Add an entry for ``row``; ``defer_sort`` supports bulk loads."""
        wrapper = _KeyWrapper(self.key_for_row(row))
        if defer_sort or not self._sorted:
            self._entries.append((wrapper, row_id))
            self._sorted = False
            return
        if self.unique:
            position = bisect.bisect_left(self._entries, (wrapper, -1))
            if position < len(self._entries) and self._entries[position][0] == wrapper:
                raise PrimaryKeyViolation(
                    f"duplicate key {wrapper.key!r} in unique index {self.name!r}",
                    table=self.table.name, constraint=self.name)
        bisect.insort(self._entries, (wrapper, row_id))

    def remove(self, row_id: int, row: dict[str, Any]) -> None:
        wrapper = _KeyWrapper(self.key_for_row(row))
        self._ensure_sorted()
        position = bisect.bisect_left(self._entries, (wrapper, -1))
        while position < len(self._entries) and self._entries[position][0] == wrapper:
            if self._entries[position][1] == row_id:
                del self._entries[position]
                return
            position += 1

    def entries_state(self) -> dict:
        """The sorted leaf level in columnar form, for checkpointing.

        One vector per key column plus a row-id vector: homogeneous
        int64/float columns pack as ``array`` (decoded in one
        ``frombytes``), anything else falls back to a value list.
        """
        self._ensure_sorted()
        columns = []
        for position in range(len(self.columns)):
            values = [wrapper.key[position]
                      for wrapper, _row_id in self._entries]
            columns.append(_pack_key_column(values))
        return {
            "count": len(self._entries),
            "columns": columns,
            "row_ids": array("q", (row_id for _wrapper, row_id
                                   in self._entries)),
        }

    def restore_entries(self, state: dict) -> None:
        """Adopt a checkpointed leaf level verbatim.

        The entries were sorted (and uniqueness-checked) when the
        checkpoint was taken, so restoring skips both the sort and the
        per-row key extraction a rebuild would pay.
        """
        columns = state["columns"]
        row_ids = state["row_ids"]
        self._entries = [
            (_KeyWrapper(tuple(column[position] for column in columns)),
             row_ids[position])
            for position in range(state["count"])]
        self._sorted = True

    def rebuild(self) -> None:
        """Re-sort after deferred bulk inserts and re-check uniqueness."""
        self._entries.sort(key=lambda entry: (entry[0], entry[1]))
        self._sorted = True
        if self.unique:
            previous: Optional[_KeyWrapper] = None
            for wrapper, _row_id in self._entries:
                if previous is not None and wrapper == previous:
                    raise PrimaryKeyViolation(
                        f"duplicate key {wrapper.key!r} in unique index {self.name!r}",
                        table=self.table.name, constraint=self.name)
                previous = wrapper

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self.rebuild()

    def clear(self) -> None:
        self._entries.clear()
        self._sorted = True

    # -- lookups ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def contains_key(self, key: Sequence[Any]) -> bool:
        return next(self.seek(tuple(key)), None) is not None

    def seek(self, key: Sequence[Any]) -> Iterator[int]:
        """Row ids whose leading index columns equal ``key`` (a prefix seek)."""
        self._ensure_sorted()
        self.statistics.seeks += 1
        prefix = tuple(key)
        padding = len(self.columns) - len(prefix)
        low = _KeyWrapper(prefix + (_MIN,) * padding)
        high = _KeyWrapper(prefix + (_MAX,) * padding)
        start = bisect.bisect_left(self._entries, (low, -1))
        for position in range(start, len(self._entries)):
            wrapper, row_id = self._entries[position]
            if high < wrapper:
                break
            self.statistics.entries_read += 1
            yield row_id

    def range(self, low: Optional[Sequence[Any]] = None,
              high: Optional[Sequence[Any]] = None) -> Iterator[int]:
        """Row ids whose key lies in [low, high] on the leading columns (inclusive)."""
        self._ensure_sorted()
        self.statistics.range_scans += 1
        if low is None:
            start = 0
        else:
            padding = len(self.columns) - len(tuple(low))
            low_key = _KeyWrapper(tuple(low) + (_MIN,) * padding)
            start = bisect.bisect_left(self._entries, (low_key, -1))
        if high is None:
            end = len(self._entries)
        else:
            padding = len(self.columns) - len(tuple(high))
            high_key = _KeyWrapper(tuple(high) + (_MAX,) * padding)
            end = bisect.bisect_right(self._entries, (high_key, 2 ** 63))
        for position in range(start, end):
            self.statistics.entries_read += 1
            yield self._entries[position][1]

    def scan(self) -> Iterator[int]:
        """All row ids in key order (an ordered index scan)."""
        self._ensure_sorted()
        self.statistics.full_scans += 1
        for _wrapper, row_id in self._entries:
            self.statistics.entries_read += 1
            yield row_id

    # -- planner metadata --------------------------------------------------

    def covered_columns(self) -> set[str]:
        """Columns available directly from the index (key + included + PK)."""
        covered = set(self.columns) | set(self.included_columns)
        covered.update(column.lower() for column in self.table.primary_key_columns())
        return covered

    def covers(self, needed_columns: Iterable[str]) -> bool:
        """True when every needed column can be read from the index alone."""
        covered = self.covered_columns()
        return all(column.lower() in covered for column in needed_columns)

    def entry_byte_width(self) -> int:
        """Approximate bytes per index entry, used for space accounting."""
        width = 8  # row pointer
        for column in self.columns + self.included_columns:
            column_def = self.table.column(column)
            if column_def is not None:
                width += column_def.byte_width
        return width

    def byte_size(self) -> int:
        return self.entry_byte_width() * len(self._entries)

    def describe(self) -> dict[str, Any]:
        """Metadata surfaced by the schema browser (SkyServerQA object browser)."""
        return {
            "name": self.name,
            "table": self.table.name,
            "columns": list(self.columns),
            "included_columns": list(self.included_columns),
            "unique": self.unique,
            "entries": len(self._entries),
            "bytes": self.byte_size(),
        }
