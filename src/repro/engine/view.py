"""Views used as sub-classes.

The SkyServer replaces the object-oriented design's Star/Galaxy
sub-classes with relational views over the PhotoObj base table
(paper §9.1.3):

    photoPrimary: PhotoObj with flags('primary' & 'OK run')
    Star:         photoPrimary with type='star'
    Galaxy:       photoPrimary with type='galaxy'

"The SQL query optimizer rewrites such queries so that they map down to
the base photoObj table with the additional qualifiers" — the engine's
planner does exactly that rewrite: a view is a base table name plus an
additional predicate (and optionally a column subset), and view
references are folded into the referencing query before access-path
selection, so base-table indices benefit the views too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .expressions import BinaryOp, Expression


@dataclass
class View:
    """A filtered (and optionally projected) window over a base table or view."""

    name: str
    base: str
    predicate: Optional[Expression] = None
    columns: Sequence[str] = ()
    description: str = ""

    def describe(self) -> dict[str, object]:
        return {
            "name": self.name,
            "base": self.base,
            "predicate": self.predicate.sql() if self.predicate is not None else "",
            "columns": list(self.columns),
            "description": self.description,
        }


@dataclass
class ResolvedRelation:
    """The result of resolving a relation name through any chain of views."""

    table_name: str
    predicate: Optional[Expression]
    columns: Sequence[str]
    view_chain: list[str] = field(default_factory=list)

    @property
    def via_view(self) -> bool:
        return bool(self.view_chain)


def fold_view_chain(name: str, views: dict[str, View]) -> ResolvedRelation:
    """Resolve ``name`` through nested views down to a base table.

    Returns the base-table name, the AND of every predicate along the
    chain, and the narrowest declared column subset.  Names not found in
    ``views`` are returned unchanged with no predicate (the caller then
    treats them as base tables or raises if they do not exist).
    """
    chain: list[str] = []
    predicate: Optional[Expression] = None
    columns: Sequence[str] = ()
    current = name
    lowered_views = {key.lower(): value for key, value in views.items()}
    seen: set[str] = set()
    while current.lower() in lowered_views:
        if current.lower() in seen:
            raise ValueError(f"cyclic view definition involving {current!r}")
        seen.add(current.lower())
        view = lowered_views[current.lower()]
        chain.append(view.name)
        if view.predicate is not None:
            predicate = view.predicate if predicate is None else BinaryOp(
                "and", predicate, view.predicate)
        if view.columns:
            columns = view.columns if not columns else [
                column for column in view.columns if column.lower() in
                {existing.lower() for existing in columns}
            ]
        current = view.base
    return ResolvedRelation(current, predicate, columns, chain)
