"""Table storage engines: row-oriented and column-oriented row stores.

The paper's workload (and the 20-query suite of §11) is dominated by
sequential scans over a few wide numeric tables, which is exactly the
shape column-oriented storage accelerates: per-column ``array.array``
buffers keep magnitudes, flags and htmIDs as unboxed machine values the
vectorized execution path (:mod:`repro.engine.batch`,
:func:`repro.engine.compile.compile_vector_predicate`) can sweep with
tight generated loops.

Two interchangeable implementations of :class:`TableStorage` exist:

* :class:`RowStore` — the original list-of-dicts layout.  It remains
  the default (and the write-optimised path): one dict per row, ``None``
  tombstones for deletes.
* :class:`ColumnStore` — one buffer per column plus a null mask and a
  live (non-tombstone) mask.  INTEGER/BIGINT columns use ``array('q')``
  (promoted to a plain list on 64-bit overflow), FLOAT uses
  ``array('d')``, everything else a plain Python list.

Both stores share the same row-id contract the indices rely on: ids are
assigned densely on append, survive deletes (tombstones), and are only
reassigned by :meth:`TableStorage.vacuum`, after which the owning
:class:`~repro.engine.table.Table` rebuilds every index.

Concurrency contract (see :mod:`repro.engine.concurrency`): compacting
operations (``vacuum``/``clear``) run only inside the owning table's
exclusive lock section.  Appends publish a row's *live* flag strictly
after every column value is stored, so a reader that iterates without a
lock can never observe a torn (half-appended) row — it either sees the
whole row or not at all.  :meth:`ColumnStore.iter_rows` additionally
snapshots the live mask up front, so one scan observes one consistent
set of row ids even while appends land behind it.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterator, Mapping, Optional, Sequence

from .errors import SchemaError
from .types import Column, DataType, NULL


class TableStorage:
    """Abstract row container behind a :class:`~repro.engine.table.Table`.

    Row ids are dense append positions; a delete leaves a tombstone (the
    id is never reused) and :meth:`vacuum` compacts the store,
    reassigning ids.  ``len(storage)`` counts *slots* (live rows plus
    tombstones); :attr:`live_count` counts live rows only.
    """

    #: ``"row"`` or ``"column"`` — the planner keys vectorization off this.
    kind = "abstract"

    def next_row_id(self) -> int:
        """The id the next :meth:`append` will assign."""
        raise NotImplementedError

    def append(self, row: dict[str, Any]) -> int:
        """Store one prepared row (lower-cased keys); returns its row id."""
        raise NotImplementedError

    def get(self, row_id: int) -> Optional[dict[str, Any]]:
        """The row dict for ``row_id``, or None for tombstones / bad ids."""
        raise NotImplementedError

    def delete(self, row_id: int) -> bool:
        """Tombstone ``row_id``; False when it was already dead or invalid."""
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def vacuum(self) -> int:
        """Drop tombstones, compacting ids; returns slots reclaimed."""
        raise NotImplementedError

    @property
    def live_count(self) -> int:
        raise NotImplementedError

    @property
    def tombstone_count(self) -> int:
        return len(self) - self.live_count

    def __len__(self) -> int:
        raise NotImplementedError

    def iter_rows(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """(row_id, row dict) for every live row, in id order."""
        raise NotImplementedError

    def iter_dicts(self) -> Iterator[dict[str, Any]]:
        """Live row dicts in id order (the sequential-scan entry point)."""
        for _row_id, row in self.iter_rows():
            yield row

    def slots(self) -> list[Optional[dict[str, Any]]]:
        """The full slot array (``None`` for tombstones) — compat/debug view."""
        raise NotImplementedError


class RowStore(TableStorage):
    """List-of-dicts storage: one dict per row, ``None`` tombstones."""

    kind = "row"

    def __init__(self) -> None:
        self._slots: list[Optional[dict[str, Any]]] = []
        self._live = 0

    def next_row_id(self) -> int:
        return len(self._slots)

    def append(self, row: dict[str, Any]) -> int:
        row_id = len(self._slots)
        self._slots.append(row)
        self._live += 1
        return row_id

    def get(self, row_id: int) -> Optional[dict[str, Any]]:
        if 0 <= row_id < len(self._slots):
            return self._slots[row_id]
        return None

    def delete(self, row_id: int) -> bool:
        if 0 <= row_id < len(self._slots) and self._slots[row_id] is not None:
            self._slots[row_id] = None
            self._live -= 1
            return True
        return False

    def clear(self) -> None:
        self._slots.clear()
        self._live = 0

    def vacuum(self) -> int:
        dead = len(self._slots) - self._live
        if dead:
            self._slots = [row for row in self._slots if row is not None]
        return dead

    @property
    def live_count(self) -> int:
        return self._live

    def __len__(self) -> int:
        return len(self._slots)

    def iter_rows(self) -> Iterator[tuple[int, dict[str, Any]]]:
        for row_id, row in enumerate(self._slots):
            if row is not None:
                yield row_id, row

    def iter_dicts(self) -> Iterator[dict[str, Any]]:
        for row in self._slots:
            if row is not None:
                yield row

    def slots(self) -> list[Optional[dict[str, Any]]]:
        return self._slots


class _ColumnData:
    """One column's buffer: values, null mask and null count.

    Numeric columns keep unboxed values in an ``array.array`` (``'q'``
    for integers, ``'d'`` for floats); an integer that overflows 64 bits
    promotes the whole column to a plain list.  NULLs store a zero
    placeholder in the buffer and a 1 in the mask.
    """

    __slots__ = ("name", "dtype", "values", "mask", "null_count")

    _TYPECODES = {DataType.INTEGER: "q", DataType.BIGINT: "q", DataType.FLOAT: "d"}

    def __init__(self, column: Column):
        self.name = column.name.lower()
        self.dtype = column.dtype
        typecode = self._TYPECODES.get(column.dtype)
        self.values: Any = array(typecode) if typecode else []
        self.mask = bytearray()
        self.null_count = 0

    def append(self, value: Any) -> None:
        if value is NULL:
            self.mask.append(1)
            self.null_count += 1
            if isinstance(self.values, array):
                self.values.append(0 if self.values.typecode == "q" else 0.0)
            else:
                self.values.append(NULL)
            return
        self.mask.append(0)
        try:
            self.values.append(value)
        except (OverflowError, TypeError):
            # An int outside 64 bits (or an unexpected type from a lenient
            # coercion): demote this column to a plain list and retry.
            self.values = list(self.values)
            self.values.append(value)

    def get(self, position: int) -> Any:
        if self.mask[position]:
            return NULL
        return self.values[position]

    def compact(self, keep: Sequence[int]) -> None:
        """Rebuild the buffer with only the positions in ``keep``."""
        old_values, old_mask = self.values, self.mask
        if isinstance(old_values, array):
            self.values = array(old_values.typecode,
                                (old_values[i] for i in keep))
        else:
            self.values = [old_values[i] for i in keep]
        self.mask = bytearray(old_mask[i] for i in keep)
        self.null_count = sum(self.mask)

    def clear(self) -> None:
        if isinstance(self.values, array):
            self.values = array(self.values.typecode)
        else:
            self.values = []
        self.mask = bytearray()
        self.null_count = 0


class ColumnStore(TableStorage):
    """Column-oriented storage: one buffer per column plus a live mask.

    Dict materialisation (``get``/``iter_rows``) is the compatibility
    adapter for row-at-a-time operators; the vectorized execution path
    reads the buffers directly through :meth:`batch_columns` and
    :meth:`live_positions`.
    """

    kind = "column"

    def __init__(self, columns: Sequence[Column]):
        if not columns:
            raise SchemaError("a column store needs at least one column")
        self._columns: dict[str, _ColumnData] = {}
        for column in columns:
            self._columns[column.name.lower()] = _ColumnData(column)
        self._names: list[str] = list(self._columns)
        self._live = bytearray()
        self._live_count = 0

    def next_row_id(self) -> int:
        return len(self._live)

    def append(self, row: dict[str, Any]) -> int:
        row_id = len(self._live)
        for name, data in self._columns.items():
            data.append(row.get(name, NULL))
        # The live flag is published last: a lock-free reader that sees
        # it set is guaranteed every column buffer already holds the row.
        self._live.append(1)
        self._live_count += 1
        return row_id

    def get(self, row_id: int) -> Optional[dict[str, Any]]:
        if not (0 <= row_id < len(self._live)) or not self._live[row_id]:
            return None
        return {name: self._columns[name].get(row_id) for name in self._names}

    def delete(self, row_id: int) -> bool:
        if 0 <= row_id < len(self._live) and self._live[row_id]:
            self._live[row_id] = 0
            self._live_count -= 1
            return True
        return False

    def clear(self) -> None:
        for data in self._columns.values():
            data.clear()
        self._live = bytearray()
        self._live_count = 0

    def vacuum(self) -> int:
        dead = len(self._live) - self._live_count
        if dead:
            keep = [i for i, live in enumerate(self._live) if live]
            for data in self._columns.values():
                data.compact(keep)
            self._live = bytearray(b"\x01" * len(keep))
        return dead

    @property
    def live_count(self) -> int:
        return self._live_count

    def __len__(self) -> int:
        return len(self._live)

    def iter_rows(self) -> Iterator[tuple[int, dict[str, Any]]]:
        columns = [(name, self._columns[name]) for name in self._names]
        # Snapshot the live mask: one scan sees one consistent row-id
        # set even if appends extend the store while it runs.
        for row_id, live in enumerate(bytes(self._live)):
            if live:
                yield row_id, {name: data.get(row_id) for name, data in columns}

    def slots(self) -> list[Optional[dict[str, Any]]]:
        return [self.get(row_id) for row_id in range(len(self._live))]

    # -- the vectorized read interface -----------------------------------

    def batch_columns(self) -> tuple[Mapping[str, Sequence], Mapping[str, bytearray]]:
        """(column buffers, null masks) for batch execution.

        The masks mapping only contains columns that actually hold NULLs;
        the vector codegen treats absent masks as "never NULL".
        """
        buffers = {name: data.values for name, data in self._columns.items()}
        masks = {name: data.mask for name, data in self._columns.items()
                 if data.null_count}
        return buffers, masks

    def column_null_count(self, name: str) -> int:
        return self._columns[name.lower()].null_count

    def column_dtype(self, name: str) -> DataType:
        return self._columns[name.lower()].dtype

    def live_positions(self, start: int, stop: int,
                       mask: Optional[bytes] = None) -> list[int]:
        """Row ids of live rows in [start, stop) — a batch's selection vector.

        With ``mask`` (a :meth:`live_mask_snapshot`), positions come
        from that frozen mask instead of the current one: every morsel
        of a parallel scan reads the same snapshot, so one scan sees
        one consistent row set even while DML lands behind it.
        """
        if mask is not None:
            stop = min(stop, len(mask))
            return [i for i in range(start, stop) if mask[i]]
        stop = min(stop, len(self._live))
        if self._live_count == len(self._live):
            return list(range(start, stop))
        live = self._live
        return [i for i in range(start, stop) if live[i]]

    def live_mask_snapshot(self) -> bytes:
        """An immutable copy of the live mask, frozen at call time.

        The parallel scan driver snapshots once up front and passes the
        copy to every morsel's :meth:`live_positions`; appends that
        publish after the snapshot are invisible to the whole scan
        (vacuum/clear only run under the table's exclusive lock, so the
        buffers behind the snapshot stay position-stable for readers).
        """
        return bytes(self._live)


def make_storage(kind: str, columns: Sequence[Column]) -> TableStorage:
    """Storage factory: ``"row"`` or ``"column"``."""
    if kind == "row":
        return RowStore()
    if kind == "column":
        return ColumnStore(columns)
    raise SchemaError(f"unknown storage kind {kind!r} (expected 'row' or 'column')")
