"""Table storage engines: row-oriented and column-oriented row stores.

The paper's workload (and the 20-query suite of §11) is dominated by
sequential scans over a few wide numeric tables, which is exactly the
shape column-oriented storage accelerates: per-column ``array.array``
buffers keep magnitudes, flags and htmIDs as unboxed machine values the
vectorized execution path (:mod:`repro.engine.batch`,
:func:`repro.engine.compile.compile_vector_predicate`) can sweep with
tight generated loops.

Two interchangeable implementations of :class:`TableStorage` exist:

* :class:`RowStore` — the original list-of-dicts layout.  It remains
  the default (and the write-optimised path): one dict per row, ``None``
  tombstones for deletes.
* :class:`ColumnStore` — sealed, compressed segments plus an append
  tail, with a global live (non-tombstone) mask.  The tail keeps one
  buffer per column (INTEGER/BIGINT use ``array('q')``, promoted to a
  plain list on 64-bit overflow; FLOAT uses ``array('d')``; everything
  else a plain Python list); every :data:`~repro.engine.segments.
  SEGMENT_ROWS` appends it is sealed into an encoded segment with a
  zone map (:mod:`repro.engine.segments`).

Both stores share the same row-id contract the indices rely on: ids are
assigned densely on append, survive deletes (tombstones), and are only
reassigned by :meth:`TableStorage.vacuum`, after which the owning
:class:`~repro.engine.table.Table` rebuilds every index.

Concurrency contract (see :mod:`repro.engine.concurrency`): compacting
operations (``vacuum``/``clear``) run only inside the owning table's
exclusive lock section.  Appends publish a row's *live* flag strictly
after every column value is stored, so a reader that iterates without a
lock can never observe a torn (half-appended) row — it either sees the
whole row or not at all.  :meth:`ColumnStore.iter_rows` additionally
snapshots the live mask up front, so one scan observes one consistent
set of row ids even while appends land behind it.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterator, Mapping, Optional, Sequence

from .errors import SchemaError
from .segments import SEGMENT_ROWS, _logical_bytes, build_segment
from .types import Column, DataType, NULL


class TableStorage:
    """Abstract row container behind a :class:`~repro.engine.table.Table`.

    Row ids are dense append positions; a delete leaves a tombstone (the
    id is never reused) and :meth:`vacuum` compacts the store,
    reassigning ids.  ``len(storage)`` counts *slots* (live rows plus
    tombstones); :attr:`live_count` counts live rows only.
    """

    #: ``"row"`` or ``"column"`` — the planner keys vectorization off this.
    kind = "abstract"

    def next_row_id(self) -> int:
        """The id the next :meth:`append` will assign."""
        raise NotImplementedError

    def append(self, row: dict[str, Any]) -> int:
        """Store one prepared row (lower-cased keys); returns its row id."""
        raise NotImplementedError

    def get(self, row_id: int) -> Optional[dict[str, Any]]:
        """The row dict for ``row_id``, or None for tombstones / bad ids."""
        raise NotImplementedError

    def delete(self, row_id: int) -> bool:
        """Tombstone ``row_id``; False when it was already dead or invalid."""
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError

    def vacuum(self) -> int:
        """Drop tombstones, compacting ids; returns slots reclaimed."""
        raise NotImplementedError

    @property
    def live_count(self) -> int:
        raise NotImplementedError

    @property
    def tombstone_count(self) -> int:
        return len(self) - self.live_count

    def __len__(self) -> int:
        raise NotImplementedError

    def iter_rows(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """(row_id, row dict) for every live row, in id order."""
        raise NotImplementedError

    def iter_dicts(self) -> Iterator[dict[str, Any]]:
        """Live row dicts in id order (the sequential-scan entry point)."""
        for _row_id, row in self.iter_rows():
            yield row

    def slots(self) -> list[Optional[dict[str, Any]]]:
        """The full slot array (``None`` for tombstones) — compat/debug view."""
        raise NotImplementedError

    # -- durability (see repro.storage.format / repro.engine.durable) -----

    def checkpoint_state(self) -> dict[str, Any]:
        """A snapshot of this store as plain codec-encodable values.

        Caller must hold the owning table's write lock; the snapshot may
        share buffers with the live store until it is encoded.
        """
        raise NotImplementedError

    def restore_state(self, state: dict[str, Any]) -> None:
        """Load a :meth:`checkpoint_state` snapshot into this (empty) store."""
        raise NotImplementedError


class RowStore(TableStorage):
    """List-of-dicts storage: one dict per row, ``None`` tombstones."""

    kind = "row"

    def __init__(self) -> None:
        self._slots: list[Optional[dict[str, Any]]] = []
        self._live = 0

    def next_row_id(self) -> int:
        return len(self._slots)

    def append(self, row: dict[str, Any]) -> int:
        row_id = len(self._slots)
        self._slots.append(row)
        self._live += 1
        return row_id

    def get(self, row_id: int) -> Optional[dict[str, Any]]:
        if 0 <= row_id < len(self._slots):
            return self._slots[row_id]
        return None

    def delete(self, row_id: int) -> bool:
        if 0 <= row_id < len(self._slots) and self._slots[row_id] is not None:
            self._slots[row_id] = None
            self._live -= 1
            return True
        return False

    def clear(self) -> None:
        self._slots.clear()
        self._live = 0

    def vacuum(self) -> int:
        dead = len(self._slots) - self._live
        if dead:
            self._slots = [row for row in self._slots if row is not None]
        return dead

    @property
    def live_count(self) -> int:
        return self._live

    def __len__(self) -> int:
        return len(self._slots)

    def iter_rows(self) -> Iterator[tuple[int, dict[str, Any]]]:
        for row_id, row in enumerate(self._slots):
            if row is not None:
                yield row_id, row

    def iter_dicts(self) -> Iterator[dict[str, Any]]:
        for row in self._slots:
            if row is not None:
                yield row

    def slots(self) -> list[Optional[dict[str, Any]]]:
        return self._slots

    def checkpoint_state(self) -> dict[str, Any]:
        # Tombstones serialize as NULL; live rows as their dicts.
        return {"kind": "row", "slots": list(self._slots)}

    def restore_state(self, state: dict[str, Any]) -> None:
        if state.get("kind") != "row":
            raise SchemaError(f"row store cannot restore {state.get('kind')!r} state")
        self._slots = list(state["slots"])
        self._live = sum(1 for row in self._slots if row is not None)


class _ColumnData:
    """One column's buffer: values, null mask and null count.

    Numeric columns keep unboxed values in an ``array.array`` (``'q'``
    for integers, ``'d'`` for floats); an integer that overflows 64 bits
    promotes the whole column to a plain list.  NULLs store a zero
    placeholder in the buffer and a 1 in the mask.
    """

    __slots__ = ("name", "dtype", "values", "mask", "null_count")

    _TYPECODES = {DataType.INTEGER: "q", DataType.BIGINT: "q", DataType.FLOAT: "d"}

    def __init__(self, column: Column):
        self.name = column.name.lower()
        self.dtype = column.dtype
        typecode = self._TYPECODES.get(column.dtype)
        self.values: Any = array(typecode) if typecode else []
        self.mask = bytearray()
        self.null_count = 0

    def append(self, value: Any) -> None:
        if value is NULL:
            self.mask.append(1)
            self.null_count += 1
            if isinstance(self.values, array):
                self.values.append(0 if self.values.typecode == "q" else 0.0)
            else:
                self.values.append(NULL)
            return
        self.mask.append(0)
        try:
            self.values.append(value)
        except (OverflowError, TypeError):
            # An int outside 64 bits (or an unexpected type from a lenient
            # coercion): demote this column to a plain list and retry.
            self.values = list(self.values)
            self.values.append(value)

    def get(self, position: int) -> Any:
        if self.mask[position]:
            return NULL
        return self.values[position]

    def compact(self, keep: Sequence[int]) -> None:
        """Rebuild the buffer with only the positions in ``keep``."""
        old_values, old_mask = self.values, self.mask
        if isinstance(old_values, array):
            self.values = array(old_values.typecode,
                                (old_values[i] for i in keep))
        else:
            self.values = [old_values[i] for i in keep]
        self.mask = bytearray(old_mask[i] for i in keep)
        self.null_count = sum(self.mask)

    def clear(self) -> None:
        if isinstance(self.values, array):
            self.values = array(self.values.typecode)
        else:
            self.values = []
        self.mask = bytearray()
        self.null_count = 0


class _Parts:
    """One atomically-published snapshot of a :class:`ColumnStore`.

    ``segments`` are immutable sealed runs of :data:`SEGMENT_ROWS` rows;
    ``tail`` is the mutable append run (local coordinates, global id =
    ``base`` + local position); ``live`` is the global live mask shared
    across publications — appends extend it in place (prefix-stable),
    deletes zero a byte.  Seal/vacuum/clear publish a *new* triple, so
    a reader that grabbed ``store._parts`` once keeps a position-stable
    view for its whole scan.
    """

    __slots__ = ("segments", "tail", "base", "live")

    def __init__(self, segments: tuple, tail: dict[str, _ColumnData],
                 base: int, live: bytearray):
        self.segments = segments
        self.tail = tail
        self.base = base
        self.live = live


class _ScanUnit:
    """One unit of scan dispatch: a sealed segment or the append tail.

    Positions are *local* (0-based within the unit); ``base`` converts
    back to global row ids.  ``columns()``/``masks()`` give local
    buffers — lazily decoded for sealed segments, the live buffers for
    the tail — so batches built from a unit slot straight into the
    vectorized pipeline.
    """

    __slots__ = ("store", "parts", "segment", "base", "stop")

    def __init__(self, store: "ColumnStore", parts: _Parts,
                 segment, base: int, stop: int):
        self.store = store
        self.parts = parts
        self.segment = segment          # SealedSegment, or None for the tail
        self.base = base
        self.stop = stop

    @property
    def sealed(self) -> bool:
        return self.segment is not None

    def selection(self, mask: Optional[bytes] = None) -> list[int]:
        """Local positions of live rows (optionally from a frozen mask)."""
        live = mask if mask is not None else self.parts.live
        base = self.base
        stop = min(self.stop, len(live))
        if stop <= base:
            return []
        if (self.segment is None or self.segment.tombstones == 0) and \
                mask is None and self.store._live_count == len(live):
            return list(range(stop - base))
        return [i - base for i in range(base, stop) if live[i]]

    def columns(self) -> Mapping[str, Sequence]:
        if self.segment is not None:
            return _LazySegmentColumns(self.segment)
        return {name: data.values for name, data in self.parts.tail.items()}

    def masks(self) -> Mapping[str, Sequence]:
        if self.segment is not None:
            return self.segment.masks
        return {name: data.mask for name, data in self.parts.tail.items()
                if data.null_count}

    def zone(self, name: str):
        if self.segment is None:
            return None
        return self.segment.zone(name)


class _LazySegmentColumns(dict):
    """Column mapping that decodes a sealed column on first access and
    caches the result for the rest of the scan of that unit."""

    __slots__ = ("segment",)

    def __init__(self, segment):
        super().__init__()
        self.segment = segment

    def __missing__(self, name: str) -> Sequence:
        decoded = self.segment.decode_column(name)
        self[name] = decoded
        return decoded


class ColumnStore(TableStorage):
    """Column-oriented storage: sealed, encoded segments plus an append tail.

    Every :data:`~repro.engine.segments.SEGMENT_ROWS` appends, the tail
    is **sealed**: each column picks an encoding (dictionary / RLE /
    delta / plain — see :mod:`repro.engine.segments`) and gets a zone
    map (min/max, null count, exact integer sum) the execution layer
    uses to skip segments, filter by dictionary codes and answer
    aggregates without touching data.  Deletes tombstone the global
    live mask and bump the owning segment's ``tombstones`` counter (the
    DML invalidation: a tombstoned segment still *skips* safely but no
    longer *answers* from its zone map); :meth:`vacuum` re-seals the
    compacted rows into fresh segments with rebuilt zone maps.

    Dict materialisation (``get``/``iter_rows``) remains the
    compatibility adapter for row-at-a-time operators; the vectorized
    path reads per-unit local buffers through :meth:`scan_units` (or
    the global concatenation through :meth:`batch_columns`).
    """

    kind = "column"

    def __init__(self, columns: Sequence[Column]):
        if not columns:
            raise SchemaError("a column store needs at least one column")
        self._column_defs: dict[str, Column] = {
            column.name.lower(): column for column in columns}
        self._names: list[str] = list(self._column_defs)
        self._parts = _Parts((), self._fresh_tail(), 0, bytearray())
        self._live_count = 0
        #: Total segments sealed over this store's lifetime (vacuum
        #: re-seals count too) — reported by :meth:`storage_statistics`.
        self.segments_sealed = 0

    def _fresh_tail(self) -> dict[str, _ColumnData]:
        return {name: _ColumnData(column)
                for name, column in self._column_defs.items()}

    # -- the row-id contract ---------------------------------------------

    def next_row_id(self) -> int:
        return len(self._parts.live)

    def append(self, row: dict[str, Any]) -> int:
        parts = self._parts
        row_id = len(parts.live)
        for name, data in parts.tail.items():
            data.append(row.get(name, NULL))
        # The live flag is published last: a lock-free reader that sees
        # it set is guaranteed every column buffer already holds the row.
        parts.live.append(1)
        self._live_count += 1
        if len(parts.live) - parts.base >= SEGMENT_ROWS:
            self._seal(parts)
        return row_id

    def _seal(self, parts: _Parts) -> None:
        """Seal the (full) tail into an encoded segment + fresh tail.

        Publishes a new parts triple; readers holding the old one keep
        scanning the old tail buffers, which are never touched again.
        """
        base = parts.base
        specs = {name: (data.values, data.mask if data.null_count else None,
                        data.dtype)
                 for name, data in parts.tail.items()}
        dead = SEGMENT_ROWS - sum(parts.live[base:base + SEGMENT_ROWS])
        segment = build_segment(base, specs, tombstones=dead)
        self._parts = _Parts(parts.segments + (segment,), self._fresh_tail(),
                             base + SEGMENT_ROWS, parts.live)
        self.segments_sealed += 1

    def get(self, row_id: int) -> Optional[dict[str, Any]]:
        parts = self._parts
        if not (0 <= row_id < len(parts.live)) or not parts.live[row_id]:
            return None
        if row_id >= parts.base:
            local = row_id - parts.base
            return {name: parts.tail[name].get(local) for name in self._names}
        segment = parts.segments[row_id // SEGMENT_ROWS]
        local = row_id - segment.base
        return {name: segment.value_at(name, local) for name in self._names}

    def delete(self, row_id: int) -> bool:
        parts = self._parts
        if 0 <= row_id < len(parts.live) and parts.live[row_id]:
            parts.live[row_id] = 0
            self._live_count -= 1
            if row_id < parts.base:
                # Invalidate the zone map for answering (skipping stays
                # safe: the zone still bounds a superset of live rows).
                parts.segments[row_id // SEGMENT_ROWS].tombstones += 1
            return True
        return False

    def clear(self) -> None:
        self._parts = _Parts((), self._fresh_tail(), 0, bytearray())
        self._live_count = 0

    def vacuum(self) -> int:
        """Drop tombstones and **re-seal**: compacted rows are packed
        into fresh segments (zone maps rebuilt, tombstone counters back
        to zero) with the remainder as the new tail — never a
        degradation to one big plain append run."""
        parts = self._parts
        dead = len(parts.live) - self._live_count
        if not dead:
            return 0
        keep = [i for i, live in enumerate(parts.live) if live]
        compacted = {name: self._compact_column(parts, name, keep)
                     for name in self._names}
        count = len(keep)
        sealed_rows = (count // SEGMENT_ROWS) * SEGMENT_ROWS
        segments = []
        for start in range(0, sealed_rows, SEGMENT_ROWS):
            specs = {}
            for name, (values, mask) in compacted.items():
                local_mask = mask[start:start + SEGMENT_ROWS]
                specs[name] = (values[start:start + SEGMENT_ROWS],
                               local_mask if any(local_mask) else None,
                               self._column_defs[name].dtype)
            segments.append(build_segment(start, specs))
        self.segments_sealed += len(segments)
        tail = self._fresh_tail()
        for name, (values, mask) in compacted.items():
            data = tail[name]
            for local in range(sealed_rows, count):
                data.append(NULL if mask[local] else values[local])
        self._parts = _Parts(tuple(segments), tail, sealed_rows,
                             bytearray(b"\x01" * count))
        return dead

    def _compact_column(self, parts: _Parts, name: str,
                        keep: Sequence[int]):
        """(values, mask) for the kept positions of one column, global
        order, decoded segment by segment."""
        values: list = []
        mask = bytearray()
        data = parts.tail[name]
        pieces = [(segment.base, segment.base + segment.rows, segment)
                  for segment in parts.segments]
        pieces.append((parts.base, len(parts.live), None))
        index = 0
        total = len(keep)
        for start, stop, segment in pieces:
            if index >= total:
                break
            if keep[index] >= stop:
                continue
            if segment is not None:
                buffer = segment.decode_column(name)
                local_mask = segment.masks.get(name)
            else:
                buffer = data.values
                local_mask = data.mask if data.null_count else None
            while index < total and keep[index] < stop:
                local = keep[index] - start
                values.append(buffer[local])
                mask.append(local_mask[local] if local_mask is not None else 0)
                index += 1
        return values, mask

    @property
    def live_count(self) -> int:
        return self._live_count

    def __len__(self) -> int:
        return len(self._parts.live)

    def iter_rows(self) -> Iterator[tuple[int, dict[str, Any]]]:
        parts = self._parts
        # Snapshot the live mask: one scan sees one consistent row-id
        # set even if appends extend the store while it runs.
        snapshot = bytes(parts.live)
        names = self._names
        for segment in parts.segments:
            decoded = None
            for local in range(segment.rows):
                row_id = segment.base + local
                if row_id >= len(snapshot) or not snapshot[row_id]:
                    continue
                if decoded is None:
                    decoded = {name: segment.decode_column(name)
                               for name in names}
                row = {}
                for name in names:
                    mask = segment.masks.get(name)
                    row[name] = (NULL if mask is not None and mask[local]
                                 else decoded[name][local])
                yield row_id, row
        tail = parts.tail
        for row_id in range(parts.base, len(snapshot)):
            if snapshot[row_id]:
                local = row_id - parts.base
                yield row_id, {name: tail[name].get(local) for name in names}

    def slots(self) -> list[Optional[dict[str, Any]]]:
        return [self.get(row_id) for row_id in range(len(self._parts.live))]

    # -- the vectorized read interface -----------------------------------

    def scan_units(self) -> list[_ScanUnit]:
        """The scan's dispatch units — one per sealed segment plus (when
        non-empty) one for the append tail — from a single consistent
        parts snapshot.  This is both the batch loop and the morsel
        scheduler's work list: sealed units carry zone maps, so a unit
        the zone verdict rules out is skipped without decoding."""
        parts = self._parts
        units = [_ScanUnit(self, parts, segment, segment.base,
                           segment.base + segment.rows)
                 for segment in parts.segments]
        if len(parts.live) > parts.base:
            units.append(_ScanUnit(self, parts, None, parts.base,
                                   parts.base + SEGMENT_ROWS))
        return units

    def segments(self) -> tuple:
        """The sealed segments of the current snapshot (tests/statistics)."""
        return self._parts.segments

    def batch_columns(self) -> tuple[Mapping[str, Sequence], Mapping[str, bytearray]]:
        """(column buffers, null masks) for batch execution — the
        *global* concatenated view (compatibility path; per-unit access
        through :meth:`scan_units` avoids decoding skipped segments).

        The masks mapping only contains columns that actually hold NULLs;
        the vector codegen treats absent masks as "never NULL".
        """
        parts = self._parts
        buffers: dict[str, Sequence] = {}
        masks: dict[str, bytearray] = {}
        for name in self._names:
            if not parts.segments:
                data = parts.tail[name]
                buffers[name] = data.values
                if data.null_count:
                    masks[name] = data.mask
                continue
            values: list = []
            mask = bytearray()
            for segment in parts.segments:
                values.extend(segment.decode_column(name))
                local = segment.masks.get(name)
                mask.extend(local if local is not None else bytes(segment.rows))
            data = parts.tail[name]
            values.extend(data.values)
            mask.extend(data.mask)
            buffers[name] = values
            if any(mask):
                masks[name] = mask
        return buffers, masks

    def column_null_count(self, name: str) -> int:
        parts = self._parts
        key = name.lower()
        total = parts.tail[key].null_count
        for segment in parts.segments:
            total += segment.null_count(key)
        return total

    def column_dtype(self, name: str) -> DataType:
        return self._column_defs[name.lower()].dtype

    def live_positions(self, start: int, stop: int,
                       mask: Optional[bytes] = None) -> list[int]:
        """Row ids of live rows in [start, stop) — a batch's selection vector.

        With ``mask`` (a :meth:`live_mask_snapshot`), positions come
        from that frozen mask instead of the current one: every morsel
        of a parallel scan reads the same snapshot, so one scan sees
        one consistent row set even while DML lands behind it.
        """
        if mask is not None:
            stop = min(stop, len(mask))
            return [i for i in range(start, stop) if mask[i]]
        live = self._parts.live
        stop = min(stop, len(live))
        if self._live_count == len(live):
            return list(range(start, stop))
        return [i for i in range(start, stop) if live[i]]

    def live_mask_snapshot(self) -> bytes:
        """An immutable copy of the live mask, frozen at call time.

        The parallel scan driver snapshots once up front and passes the
        copy to every morsel's :meth:`live_positions`; appends that
        publish after the snapshot are invisible to the whole scan
        (vacuum/clear only run under the table's exclusive lock, so the
        buffers behind the snapshot stay position-stable for readers).
        """
        return bytes(self._parts.live)

    def checkpoint_state(self) -> dict[str, Any]:
        parts = self._parts
        tail = {}
        for name, data in parts.tail.items():
            tail[name] = {
                "values": (data.values if isinstance(data.values, array)
                           else list(data.values)),
                "mask": bytes(data.mask),
                "null_count": data.null_count,
            }
        return {
            "kind": "column",
            "segments": list(parts.segments),
            "base": parts.base,
            "live": bytes(parts.live),
            "tail": tail,
            "segments_sealed": self.segments_sealed,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        if state.get("kind") != "column":
            raise SchemaError(
                f"column store cannot restore {state.get('kind')!r} state")
        tail = self._fresh_tail()
        for name, snapshot in state["tail"].items():
            data = tail[name]
            values = snapshot["values"]
            if isinstance(values, array) or not isinstance(data.values, array):
                data.values = values
            else:
                # A numeric column checkpointed after overflow promotion
                # (or a decoder that fell back to lists): keep the list.
                data.values = list(values)
            data.mask = bytearray(snapshot["mask"])
            data.null_count = snapshot["null_count"]
        live = bytearray(state["live"])
        self._parts = _Parts(tuple(state["segments"]), tail,
                             state["base"], live)
        self._live_count = sum(live)
        self.segments_sealed = state["segments_sealed"]

    def storage_statistics(self) -> dict[str, Any]:
        """Encoded vs. logical bytes, segment and encoding counts — the
        compression report behind ``site_statistics()["storage"]``."""
        parts = self._parts
        encoded = 0
        logical = 0
        encodings: dict[str, int] = {}
        for segment in parts.segments:
            encoded += segment.encoded_bytes()
            for name in self._names:
                column = segment.columns[name]
                logical += _logical_bytes(segment.decode_column(name)
                                          if column.name != "plain"
                                          else column.values,
                                          column.dtype)
                encodings[column.name] = encodings.get(column.name, 0) + 1
        tail_rows = len(parts.live) - parts.base
        for name, data in parts.tail.items():
            size = _logical_bytes(data.values, data.dtype)
            encoded += size + (len(data.mask) if data.null_count else 0)
            logical += size
        return {
            "segments": len(parts.segments),
            "segments_sealed": self.segments_sealed,
            "sealed_rows": parts.base,
            "tail_rows": tail_rows,
            "encoded_bytes": encoded,
            "logical_bytes": logical,
            "compression_ratio": (logical / encoded) if encoded else 1.0,
            "encodings": dict(sorted(encodings.items())),
        }


def make_storage(kind: str, columns: Sequence[Column]) -> TableStorage:
    """Storage factory: ``"row"`` or ``"column"``."""
    if kind == "row":
        return RowStore()
    if kind == "column":
        return ColumnStore(columns)
    raise SchemaError(f"unknown storage kind {kind!r} (expected 'row' or 'column')")
