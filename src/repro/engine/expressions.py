"""Expression AST and evaluator.

Expressions appear in SELECT lists, WHERE clauses, JOIN conditions,
CHECK constraints, view definitions and computed columns.  The same AST
is produced by the programmatic query-builder API and by the SQL
parser, and is consumed by the planner (which inspects predicates for
index-sargable conjuncts) and by the physical operators (which evaluate
expressions row by row).

The evaluator implements SQL three-valued NULL semantics for
comparisons and boolean connectives: any comparison with NULL yields
NULL, ``AND``/``OR`` propagate NULL unless short-circuited by their
identity element, and a WHERE clause only accepts rows for which the
predicate is strictly true.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from .errors import ExpressionError, UnknownColumnError, UnknownFunctionError
from .types import NULL


# ---------------------------------------------------------------------------
# Row scope
# ---------------------------------------------------------------------------

class RowScope:
    """Name-resolution scope for evaluating expressions against rows.

    A scope maps table aliases to row dictionaries.  Unqualified column
    names are resolved by searching the aliases in order; the first row
    containing the column wins (ambiguity is tolerated and resolved in
    declaration order, as SQL Server does for natural single-table
    queries; the binder qualifies columns whenever it can).
    """

    __slots__ = ("_rows", "_order")

    def __init__(self) -> None:
        self._rows: dict[str, Mapping[str, Any]] = {}
        self._order: list[str] = []

    def bind(self, alias: str, row: Mapping[str, Any]) -> "RowScope":
        key = alias.lower()
        if key not in self._rows:
            self._order.append(key)
        self._rows[key] = row
        return self

    def unbind(self, alias: str) -> None:
        key = alias.lower()
        if key in self._rows:
            del self._rows[key]
            self._order.remove(key)

    def child(self) -> "RowScope":
        """A copy that can be re-bound without disturbing the parent."""
        clone = RowScope()
        clone._rows = dict(self._rows)
        clone._order = list(self._order)
        return clone

    def lookup(self, name: str, qualifier: Optional[str] = None) -> Any:
        if qualifier:
            row = self._rows.get(qualifier.lower())
            if row is None:
                raise UnknownColumnError(f"unknown table alias {qualifier!r}")
            lowered = name.lower()
            for key, value in row.items():
                if key.lower() == lowered:
                    return value
            raise UnknownColumnError(f"unknown column {qualifier}.{name}")
        lowered = name.lower()
        for alias in self._order:
            row = self._rows[alias]
            for key, value in row.items():
                if key.lower() == lowered:
                    return value
        raise UnknownColumnError(f"unknown column {name!r}")

    def aliases(self) -> list[str]:
        return list(self._order)


# ---------------------------------------------------------------------------
# AST nodes
# ---------------------------------------------------------------------------

class Expression:
    """Base class for expression AST nodes."""

    # Subclasses declare their own __slots__; an empty tuple here keeps
    # instances __dict__-free so per-node allocation stays small.
    __slots__ = ()

    def evaluate(self, scope: RowScope, context: "EvaluationContext") -> Any:
        raise NotImplementedError

    def referenced_columns(self) -> set[tuple[Optional[str], str]]:
        """All (qualifier, column-name) pairs referenced by this expression."""
        refs: set[tuple[Optional[str], str]] = set()
        self._collect_columns(refs)
        return refs

    def _collect_columns(self, refs: set[tuple[Optional[str], str]]) -> None:
        for child in self.children():
            child._collect_columns(refs)

    def children(self) -> Sequence["Expression"]:
        return ()

    def sql(self) -> str:
        """A SQL-ish rendering used in EXPLAIN output and error messages."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.sql()}>"


@dataclass(frozen=True, slots=True)
class EvaluationContext:
    """Ambient evaluation state: scalar functions and session variables."""

    functions: Mapping[str, Callable[..., Any]] = field(default_factory=dict)
    variables: Mapping[str, Any] = field(default_factory=dict)

    def call(self, name: str, args: Sequence[Any]) -> Any:
        lowered = name.lower()
        bare = lowered[len("dbo."):] if lowered.startswith("dbo.") else lowered
        func = self.functions.get(lowered) or self.functions.get(bare)
        if func is None:
            func = _BUILTIN_FUNCTIONS.get(bare)
        if func is None:
            raise UnknownFunctionError(f"unknown function {name!r}")
        return func(*args)

    def variable(self, name: str) -> Any:
        key = name.lower()
        if key not in self.variables:
            raise ExpressionError(f"undeclared variable @{name}")
        return self.variables[key]


class Literal(Expression):
    """A constant value."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def evaluate(self, scope: RowScope, context: EvaluationContext) -> Any:
        return self.value

    def sql(self) -> str:
        if self.value is NULL:
            return "NULL"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Literal) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Literal", self.value))


class ColumnRef(Expression):
    """A reference to a column, optionally qualified by a table alias."""

    __slots__ = ("qualifier", "name")

    def __init__(self, name: str, qualifier: Optional[str] = None):
        self.name = name
        self.qualifier = qualifier

    def evaluate(self, scope: RowScope, context: EvaluationContext) -> Any:
        return scope.lookup(self.name, self.qualifier)

    def _collect_columns(self, refs: set[tuple[Optional[str], str]]) -> None:
        refs.add((self.qualifier.lower() if self.qualifier else None, self.name.lower()))

    def sql(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, ColumnRef)
                and other.name.lower() == self.name.lower()
                and (other.qualifier or "").lower() == (self.qualifier or "").lower())

    def __hash__(self) -> int:
        return hash(("ColumnRef", (self.qualifier or "").lower(), self.name.lower()))


class Variable(Expression):
    """A session variable reference (``@saturated``)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name.lstrip("@")

    def evaluate(self, scope: RowScope, context: EvaluationContext) -> Any:
        return context.variable(self.name)

    def sql(self) -> str:
        return f"@{self.name}"


class Star(Expression):
    """``SELECT *`` marker; expanded by the binder/executor, never evaluated."""

    __slots__ = ("qualifier",)

    def __init__(self, qualifier: Optional[str] = None):
        self.qualifier = qualifier

    def evaluate(self, scope: RowScope, context: EvaluationContext) -> Any:
        raise ExpressionError("'*' cannot be evaluated as a scalar expression")

    def sql(self) -> str:
        return f"{self.qualifier}.*" if self.qualifier else "*"


_ARITHMETIC = {"+", "-", "*", "/", "%"}
_COMPARISON = {"=", "<>", "!=", "<", "<=", ">", ">="}


def truncate_int_div(left: int, right: int) -> int:
    """SQL Server integer division: truncates toward zero (unlike ``//``).

    The single definition shared by the interpreter, the scalar/row
    compiler and the vector codegen — the three evaluation paths must
    not diverge.  The caller handles ``right == 0`` (NULL).
    """
    quotient = abs(left) // abs(right)
    return quotient if (left >= 0) == (right >= 0) else -quotient
_BITWISE = {"&", "|", "^"}
_LOGICAL = {"and", "or"}


class BinaryOp(Expression):
    """A binary operation: arithmetic, comparison, bitwise or logical."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expression, right: Expression):
        self.op = op.lower() if op.lower() in _LOGICAL else op
        self.left = left
        self.right = right

    def children(self) -> Sequence[Expression]:
        return (self.left, self.right)

    def evaluate(self, scope: RowScope, context: EvaluationContext) -> Any:
        op = self.op
        if op in _LOGICAL:
            return self._evaluate_logical(op, scope, context)
        left = self.left.evaluate(scope, context)
        right = self.right.evaluate(scope, context)
        if left is NULL or right is NULL:
            return NULL
        if op in _ARITHMETIC:
            return self._arithmetic(op, left, right)
        if op in _COMPARISON:
            return self._compare(op, left, right)
        if op in _BITWISE:
            return self._bitwise(op, left, right)
        raise ExpressionError(f"unknown binary operator {op!r}")

    def _evaluate_logical(self, op: str, scope: RowScope, context: EvaluationContext) -> Any:
        left = self.left.evaluate(scope, context)
        if op == "and":
            if left is False:
                return False
            right = self.right.evaluate(scope, context)
            if right is False:
                return False
            if left is NULL or right is NULL:
                return NULL
            return bool(left) and bool(right)
        # OR
        if left is True:
            return True
        right = self.right.evaluate(scope, context)
        if right is True:
            return True
        if left is NULL or right is NULL:
            return NULL
        return bool(left) or bool(right)

    @staticmethod
    def _arithmetic(op: str, left: Any, right: Any) -> Any:
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    return NULL
                if isinstance(left, int) and isinstance(right, int):
                    return truncate_int_div(left, right)
                return left / right
            if op == "%":
                if right == 0:
                    return NULL
                return math.fmod(left, right) if isinstance(left, float) or isinstance(right, float) else left % right
        except TypeError as exc:
            raise ExpressionError(f"cannot apply {op!r} to {left!r} and {right!r}") from exc
        raise ExpressionError(f"unknown arithmetic operator {op!r}")

    @staticmethod
    def _compare(op: str, left: Any, right: Any) -> Any:
        if isinstance(left, str) and isinstance(right, str):
            left_cmp, right_cmp = left.lower(), right.lower()
        else:
            left_cmp, right_cmp = left, right
        try:
            if op == "=":
                return left_cmp == right_cmp
            if op in ("<>", "!="):
                return left_cmp != right_cmp
            if op == "<":
                return left_cmp < right_cmp
            if op == "<=":
                return left_cmp <= right_cmp
            if op == ">":
                return left_cmp > right_cmp
            if op == ">=":
                return left_cmp >= right_cmp
        except TypeError as exc:
            raise ExpressionError(f"cannot compare {left!r} {op} {right!r}") from exc
        raise ExpressionError(f"unknown comparison operator {op!r}")

    @staticmethod
    def _bitwise(op: str, left: Any, right: Any) -> Any:
        try:
            left_int, right_int = int(left), int(right)
        except (TypeError, ValueError) as exc:
            raise ExpressionError(f"bitwise {op!r} requires integers") from exc
        if op == "&":
            return left_int & right_int
        if op == "|":
            return left_int | right_int
        return left_int ^ right_int

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op.upper()} {self.right.sql()})"


class UnaryOp(Expression):
    """Unary minus, unary plus, NOT, IS NULL and IS NOT NULL."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expression):
        self.op = op.lower()
        self.operand = operand

    def children(self) -> Sequence[Expression]:
        return (self.operand,)

    def evaluate(self, scope: RowScope, context: EvaluationContext) -> Any:
        value = self.operand.evaluate(scope, context)
        if self.op == "is null":
            return value is NULL
        if self.op == "is not null":
            return value is not NULL
        if value is NULL:
            return NULL
        if self.op == "-":
            return -value
        if self.op == "+":
            return value
        if self.op == "not":
            return not bool(value)
        raise ExpressionError(f"unknown unary operator {self.op!r}")

    def sql(self) -> str:
        if self.op in ("is null", "is not null"):
            return f"({self.operand.sql()} {self.op.upper()})"
        return f"({self.op.upper()} {self.operand.sql()})"


class Between(Expression):
    """``expr BETWEEN low AND high`` (inclusive on both ends)."""

    __slots__ = ("operand", "low", "high", "negated")

    def __init__(self, operand: Expression, low: Expression, high: Expression,
                 negated: bool = False):
        self.operand = operand
        self.low = low
        self.high = high
        self.negated = negated

    def children(self) -> Sequence[Expression]:
        return (self.operand, self.low, self.high)

    def evaluate(self, scope: RowScope, context: EvaluationContext) -> Any:
        value = self.operand.evaluate(scope, context)
        low = self.low.evaluate(scope, context)
        high = self.high.evaluate(scope, context)
        if value is NULL or low is NULL or high is NULL:
            return NULL
        result = low <= value <= high
        return (not result) if self.negated else result

    def sql(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand.sql()} {keyword} {self.low.sql()} AND {self.high.sql()})"


class InList(Expression):
    """``expr IN (v1, v2, ...)``."""

    __slots__ = ("operand", "items", "negated")

    def __init__(self, operand: Expression, items: Sequence[Expression], negated: bool = False):
        self.operand = operand
        self.items = list(items)
        self.negated = negated

    def children(self) -> Sequence[Expression]:
        return (self.operand, *self.items)

    def evaluate(self, scope: RowScope, context: EvaluationContext) -> Any:
        value = self.operand.evaluate(scope, context)
        if value is NULL:
            return NULL
        saw_null = False
        for item in self.items:
            candidate = item.evaluate(scope, context)
            if candidate is NULL:
                saw_null = True
                continue
            if isinstance(value, str) and isinstance(candidate, str):
                if value.lower() == candidate.lower():
                    return not self.negated
            elif candidate == value:
                return not self.negated
        if saw_null:
            return NULL
        return self.negated

    def sql(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        inner = ", ".join(item.sql() for item in self.items)
        return f"({self.operand.sql()} {keyword} ({inner}))"


class Like(Expression):
    """``expr LIKE pattern`` with SQL ``%`` and ``_`` wildcards."""

    __slots__ = ("operand", "pattern", "negated")

    def __init__(self, operand: Expression, pattern: Expression, negated: bool = False):
        self.operand = operand
        self.pattern = pattern
        self.negated = negated

    def children(self) -> Sequence[Expression]:
        return (self.operand, self.pattern)

    def evaluate(self, scope: RowScope, context: EvaluationContext) -> Any:
        value = self.operand.evaluate(scope, context)
        pattern = self.pattern.evaluate(scope, context)
        if value is NULL or pattern is NULL:
            return NULL
        import re

        result = re.match(like_regex(pattern), str(value),
                          flags=re.IGNORECASE) is not None
        return (not result) if self.negated else result

    def sql(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.operand.sql()} {keyword} {self.pattern.sql()})"


def like_regex(pattern: Any) -> str:
    """The regex for a SQL LIKE pattern (shared by interpreter and compiler).

    ``re.escape`` leaves ``%`` and ``_`` unescaped, so the replacements act
    on the literal wildcard characters.
    """
    import re

    return "^" + re.escape(str(pattern)).replace("%", ".*").replace("_", ".") + "$"


class FunctionCall(Expression):
    """A scalar function call, e.g. ``sqrt(x)`` or ``dbo.fPhotoFlags('saturated')``."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expression]):
        self.name = name
        self.args = list(args)

    def children(self) -> Sequence[Expression]:
        return tuple(self.args)

    def evaluate(self, scope: RowScope, context: EvaluationContext) -> Any:
        values = [arg.evaluate(scope, context) for arg in self.args]
        return context.call(self.name, values)

    def sql(self) -> str:
        inner = ", ".join(arg.sql() for arg in self.args)
        return f"{self.name}({inner})"


class CaseWhen(Expression):
    """A searched ``CASE WHEN cond THEN value ... ELSE value END``."""

    __slots__ = ("branches", "default")

    def __init__(self, branches: Sequence[tuple[Expression, Expression]],
                 default: Optional[Expression] = None):
        self.branches = list(branches)
        self.default = default

    def children(self) -> Sequence[Expression]:
        kids: list[Expression] = []
        for condition, value in self.branches:
            kids.extend((condition, value))
        if self.default is not None:
            kids.append(self.default)
        return tuple(kids)

    def evaluate(self, scope: RowScope, context: EvaluationContext) -> Any:
        for condition, value in self.branches:
            if condition.evaluate(scope, context) is True:
                return value.evaluate(scope, context)
        if self.default is not None:
            return self.default.evaluate(scope, context)
        return NULL

    def sql(self) -> str:
        parts = ["CASE"]
        for condition, value in self.branches:
            parts.append(f"WHEN {condition.sql()} THEN {value.sql()}")
        if self.default is not None:
            parts.append(f"ELSE {self.default.sql()}")
        parts.append("END")
        return " ".join(parts)


class AggregateCall(Expression):
    """An aggregate reference (``count(*)``, ``avg(x)``).

    Aggregates are computed by the Aggregate physical operator; when an
    AggregateCall is evaluated directly it reads the already-computed
    value from the row produced by that operator (keyed by its SQL text).
    """

    __slots__ = ("func", "argument", "distinct")

    def __init__(self, func: str, argument: Optional[Expression] = None, distinct: bool = False):
        self.func = func.lower()
        self.argument = argument
        self.distinct = distinct

    def children(self) -> Sequence[Expression]:
        return (self.argument,) if self.argument is not None else ()

    def evaluate(self, scope: RowScope, context: EvaluationContext) -> Any:
        key = self.result_key()
        try:
            return scope.lookup(key)
        except UnknownColumnError:
            raise ExpressionError(
                f"aggregate {self.sql()} evaluated outside an aggregation operator")

    def result_key(self) -> str:
        return self.sql()

    def sql(self) -> str:
        inner = "*" if self.argument is None else self.argument.sql()
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.func}({inner})"


# ---------------------------------------------------------------------------
# Built-in scalar functions (T-SQL flavoured, as used by the paper's queries)
# ---------------------------------------------------------------------------

def _sql_str(value: Any) -> str:
    return "" if value is NULL else str(value)


_BUILTIN_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "abs": lambda x: NULL if x is NULL else abs(x),
    "sqrt": lambda x: NULL if x is NULL else math.sqrt(x),
    "square": lambda x: NULL if x is NULL else x * x,
    "power": lambda x, y: NULL if NULL in (x, y) else math.pow(x, y),
    "exp": lambda x: NULL if x is NULL else math.exp(x),
    "log": lambda x: NULL if x is NULL else math.log(x),
    "log10": lambda x: NULL if x is NULL else math.log10(x),
    "floor": lambda x: NULL if x is NULL else math.floor(x),
    "ceiling": lambda x: NULL if x is NULL else math.ceil(x),
    "round": lambda x, digits=0: NULL if x is NULL else round(x, int(digits)),
    "sign": lambda x: NULL if x is NULL else (0 if x == 0 else math.copysign(1, x)),
    "pi": lambda: math.pi,
    "sin": lambda x: NULL if x is NULL else math.sin(x),
    "cos": lambda x: NULL if x is NULL else math.cos(x),
    "tan": lambda x: NULL if x is NULL else math.tan(x),
    "asin": lambda x: NULL if x is NULL else math.asin(max(-1.0, min(1.0, x))),
    "acos": lambda x: NULL if x is NULL else math.acos(max(-1.0, min(1.0, x))),
    "atan": lambda x: NULL if x is NULL else math.atan(x),
    "atn2": lambda y, x: NULL if NULL in (x, y) else math.atan2(y, x),
    "radians": lambda x: NULL if x is NULL else math.radians(x),
    "degrees": lambda x: NULL if x is NULL else math.degrees(x),
    "coalesce": lambda *args: next((a for a in args if a is not NULL), NULL),
    "nullif": lambda a, b: NULL if a == b else a,
    "isnull": lambda a, b: b if a is NULL else a,
    "len": lambda s: NULL if s is NULL else len(str(s)),
    "upper": lambda s: NULL if s is NULL else str(s).upper(),
    "lower": lambda s: NULL if s is NULL else str(s).lower(),
    "ltrim": lambda s: NULL if s is NULL else str(s).lstrip(),
    "rtrim": lambda s: NULL if s is NULL else str(s).rstrip(),
    "str": lambda x, *rest: NULL if x is NULL else str(x),
    "substring": lambda s, start, length: NULL if s is NULL else str(s)[int(start) - 1:int(start) - 1 + int(length)],
    "charindex": lambda needle, haystack: 0 if NULL in (needle, haystack) else _sql_str(haystack).lower().find(_sql_str(needle).lower()) + 1,
    "cast_int": lambda x: NULL if x is NULL else int(x),
    "cast_float": lambda x: NULL if x is NULL else float(x),
}


def builtin_function_names() -> list[str]:
    """Names of the built-in scalar functions (for the schema browser)."""
    return sorted(_BUILTIN_FUNCTIONS)


# ---------------------------------------------------------------------------
# Predicate analysis helpers used by the planner
# ---------------------------------------------------------------------------

def conjuncts(expression: Optional[Expression]) -> list[Expression]:
    """Split a predicate into its top-level AND-ed conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, BinaryOp) and expression.op == "and":
        return conjuncts(expression.left) + conjuncts(expression.right)
    return [expression]


def combine_conjuncts(parts: Sequence[Expression]) -> Optional[Expression]:
    """Combine predicates with AND; returns None for an empty sequence."""
    result: Optional[Expression] = None
    for part in parts:
        result = part if result is None else BinaryOp("and", result, part)
    return result


def is_constant(expression: Expression) -> bool:
    """True when the expression references no columns (variables count as constants)."""
    return not expression.referenced_columns()


@dataclass
class SargablePredicate:
    """A predicate usable to drive an index access path.

    ``column`` is the unqualified column name (lower-cased); ``low`` /
    ``high`` are constant-bound expressions (inclusive) and may be None
    for open ranges; an equality predicate has ``low is high``.
    """

    column: str
    qualifier: Optional[str]
    low: Optional[Expression]
    high: Optional[Expression]
    is_equality: bool
    source: Expression


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}


def extract_sargable(predicate: Expression) -> Optional[SargablePredicate]:
    """Recognise ``col op constant``, ``constant op col`` and BETWEEN predicates."""
    if isinstance(predicate, Between) and not predicate.negated:
        if isinstance(predicate.operand, ColumnRef) and is_constant(predicate.low) and is_constant(predicate.high):
            col = predicate.operand
            return SargablePredicate(col.name.lower(), col.qualifier, predicate.low,
                                     predicate.high, False, predicate)
        return None
    if not isinstance(predicate, BinaryOp) or predicate.op not in _COMPARISON:
        return None
    left, right, op = predicate.left, predicate.right, predicate.op
    if isinstance(right, ColumnRef) and is_constant(left):
        left, right = right, left
        op = _FLIP.get(op, op)
    if not (isinstance(left, ColumnRef) and is_constant(right)):
        return None
    column, qualifier = left.name.lower(), left.qualifier
    if op == "=":
        return SargablePredicate(column, qualifier, right, right, True, predicate)
    if op in ("<", "<="):
        return SargablePredicate(column, qualifier, None, right, False, predicate)
    if op in (">", ">="):
        return SargablePredicate(column, qualifier, right, None, False, predicate)
    return None
