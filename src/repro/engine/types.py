"""Column types and value coercion for the relational engine.

The SkyServer schema uses a small set of SQL Server types: integers,
bigints (HTM IDs, object IDs, bit-flag words), floats (magnitudes,
positions), fixed strings (names, object classes), datetimes (the
per-row insert timestamp used by the loader's UNDO), and blobs (the
profile arrays and JPEG cutouts).  This module defines those types, the
NULL semantics, and byte-width accounting used by Table 1 and the I/O
model.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass
from typing import Any

from .errors import SchemaError, TypeMismatchError

#: The engine-wide NULL marker.  ``None`` is used directly so that Python
#: code interoperates naturally with query results.
NULL = None


class DataType(enum.Enum):
    """Supported column data types."""

    INTEGER = "integer"
    BIGINT = "bigint"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"
    TIMESTAMP = "timestamp"
    BLOB = "blob"

    @property
    def byte_width(self) -> int:
        """Nominal storage width in bytes, used for size accounting.

        Variable-width types (TEXT, BLOB) report a representative width;
        actual row sizes add the real payload length for those columns.
        """
        widths = {
            DataType.INTEGER: 4,
            DataType.BIGINT: 8,
            DataType.FLOAT: 8,
            DataType.TEXT: 16,
            DataType.BOOLEAN: 1,
            DataType.TIMESTAMP: 8,
            DataType.BLOB: 32,
        }
        return widths[self]


#: Sentinel used for "default value is the insert timestamp", mirroring
#: SQL Server's ``CURRENT_TIMESTAMP`` column default that the loader's
#: UNDO mechanism depends on (paper section 9.4).
CURRENT_TIMESTAMP = "CURRENT_TIMESTAMP"


@dataclass
class Column:
    """A column definition.

    Parameters
    ----------
    name:
        Column name, case-preserved but matched case-insensitively.
    dtype:
        One of :class:`DataType`.
    nullable:
        Whether NULL values are allowed.  The paper insists that "all
        fields are non-null", so schema columns default to ``False``.
    default:
        Literal default value, or :data:`CURRENT_TIMESTAMP`.
    description:
        Human-readable documentation surfaced by the schema browser.
    unit:
        Physical unit (e.g. ``"mag"``, ``"deg"``) surfaced by the schema
        browser, mirroring the SkyServer's online schema documentation.
    """

    name: str
    dtype: DataType
    nullable: bool = False
    default: Any = None
    description: str = ""
    unit: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")

    @property
    def byte_width(self) -> int:
        return self.dtype.byte_width

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to this column's type, or raise.

        NULL handling is done by the caller (:class:`~repro.engine.table.Table`),
        so ``value`` is assumed non-None here.
        """
        return coerce_value(value, self.dtype, column=self.name)


def coerce_value(value: Any, dtype: DataType, *, column: str = "") -> Any:
    """Coerce a Python value to the engine representation of ``dtype``."""
    if value is NULL:
        return NULL
    try:
        if dtype is DataType.INTEGER or dtype is DataType.BIGINT:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float):
                if value.is_integer():
                    return int(value)
                raise TypeMismatchError(
                    f"column {column!r}: cannot store non-integral float {value!r} as {dtype.value}"
                )
            if isinstance(value, str):
                return int(value.strip())
        elif dtype is DataType.FLOAT:
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                return float(value.strip())
        elif dtype is DataType.TEXT:
            if isinstance(value, str):
                return value
            if isinstance(value, (int, float)):
                return str(value)
        elif dtype is DataType.BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, (int, float)):
                return bool(value)
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1", "yes"):
                    return True
                if lowered in ("false", "f", "0", "no"):
                    return False
        elif dtype is DataType.TIMESTAMP:
            if isinstance(value, _dt.datetime):
                return value
            if isinstance(value, (int, float)):
                return _dt.datetime.fromtimestamp(float(value), tz=_dt.timezone.utc)
            if isinstance(value, str):
                return _dt.datetime.fromisoformat(value)
        elif dtype is DataType.BLOB:
            if isinstance(value, (bytes, bytearray)):
                return bytes(value)
            if isinstance(value, str):
                return value.encode("utf-8")
    except (ValueError, OverflowError) as exc:
        raise TypeMismatchError(
            f"column {column!r}: cannot coerce {value!r} to {dtype.value}: {exc}"
        ) from exc
    raise TypeMismatchError(
        f"column {column!r}: cannot coerce {type(value).__name__} value {value!r} to {dtype.value}"
    )


def value_byte_size(value: Any, dtype: DataType) -> int:
    """Actual storage size of a value, used for Table 1 byte accounting."""
    if value is NULL:
        return 1
    if dtype is DataType.TEXT:
        return max(1, len(str(value)))
    if dtype is DataType.BLOB:
        return max(1, len(value))
    return dtype.byte_width


# Convenience constructors keep schema definitions terse and readable.

def integer(name: str, *, nullable: bool = False, default: Any = None,
            description: str = "", unit: str = "") -> Column:
    """An INTEGER column."""
    return Column(name, DataType.INTEGER, nullable=nullable, default=default,
                  description=description, unit=unit)


def bigint(name: str, *, nullable: bool = False, default: Any = None,
           description: str = "", unit: str = "") -> Column:
    """A BIGINT column (object IDs, HTM IDs, flag words)."""
    return Column(name, DataType.BIGINT, nullable=nullable, default=default,
                  description=description, unit=unit)


def floating(name: str, *, nullable: bool = False, default: Any = None,
             description: str = "", unit: str = "") -> Column:
    """A FLOAT column (magnitudes, coordinates, velocities)."""
    return Column(name, DataType.FLOAT, nullable=nullable, default=default,
                  description=description, unit=unit)


def text(name: str, *, nullable: bool = False, default: Any = None,
         description: str = "", unit: str = "") -> Column:
    """A TEXT column."""
    return Column(name, DataType.TEXT, nullable=nullable, default=default,
                  description=description, unit=unit)


def boolean(name: str, *, nullable: bool = False, default: Any = None,
            description: str = "") -> Column:
    """A BOOLEAN column."""
    return Column(name, DataType.BOOLEAN, nullable=nullable, default=default,
                  description=description)


def timestamp(name: str, *, nullable: bool = False, default: Any = None,
              description: str = "") -> Column:
    """A TIMESTAMP column (defaults may be CURRENT_TIMESTAMP)."""
    return Column(name, DataType.TIMESTAMP, nullable=nullable, default=default,
                  description=description)


def blob(name: str, *, nullable: bool = True, default: Any = None,
         description: str = "") -> Column:
    """A BLOB column (image cutouts, profile arrays)."""
    return Column(name, DataType.BLOB, nullable=nullable, default=default,
                  description=description)
