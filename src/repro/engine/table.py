"""Tables: typed row storage with constraints, defaults and timestamps.

A table owns its row storage (a :class:`~repro.engine.storage.TableStorage`
keyed by lower-cased column name — row-oriented by default, column-oriented
when converted for scan-heavy workloads), its indices, and its constraint
declarations.  Every row automatically receives the table's timestamp
column default when one is declared with ``CURRENT_TIMESTAMP`` — this is
the mechanism the loader's UNDO uses to delete exactly the rows inserted
by a failed load step (paper §9.4).
"""

from __future__ import annotations

import datetime as _dt
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence, TYPE_CHECKING

from .concurrency import ReadWriteLock, lock_tables
from .constraints import (CheckConstraint, ForeignKey, PrimaryKey,
                          check_not_null)
from .errors import SchemaError
from .index import BTreeIndex
from .storage import TableStorage, make_storage
from .types import CURRENT_TIMESTAMP, Column, NULL, value_byte_size

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .catalog import Database


class Table:
    """A base table in the catalog."""

    def __init__(self, name: str, columns: Sequence[Column], *,
                 primary_key: Optional[PrimaryKey] = None,
                 foreign_keys: Sequence[ForeignKey] = (),
                 checks: Sequence[CheckConstraint] = (),
                 description: str = "",
                 storage: str = "row"):
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        self.name = name
        self.description = description
        self.columns: list[Column] = list(columns)
        self._columns_by_name: dict[str, Column] = {}
        for column in self.columns:
            key = column.name.lower()
            if key in self._columns_by_name:
                raise SchemaError(f"duplicate column {column.name!r} in table {name!r}")
            self._columns_by_name[key] = column
        self.primary_key = primary_key
        self.foreign_keys: list[ForeignKey] = list(foreign_keys)
        self.checks: list[CheckConstraint] = list(checks)
        self.storage: TableStorage = make_storage(storage, self.columns)
        #: Reader–writer lock guarding this table: SELECTs share it,
        #: DML/VACUUM/index DDL take it exclusively.  The catalog hooks
        #: its ``on_exclusive_release`` to bump the database epoch.
        self.lock = ReadWriteLock(name=name)
        self.indexes: dict[str, BTreeIndex] = {}
        self._data_bytes = 0
        #: Bumped by every INSERT/DELETE/TRUNCATE; statistics snapshots
        #: record the value at ANALYZE time so staleness is measurable.
        self.modification_counter = 0
        self._clock: Callable[[], _dt.datetime] = _default_clock
        self._on_schema_change: Optional[Callable[[], None]] = None
        #: Durability hook: called as ``hook(op, payload)`` inside the
        #: mutating lock section, after the mutation has applied (see
        #: :mod:`repro.engine.durable`).  ``None`` when the table is not
        #: attached to a write-ahead log.
        self._on_mutation: Optional[Callable[[str, dict], None]] = None
        if primary_key is not None:
            for column in primary_key.columns:
                if column not in self._columns_by_name:
                    raise SchemaError(
                        f"primary key column {column!r} not in table {name!r}")
            self.create_index(f"pk_{name}", primary_key.columns, unique=True)

    # -- metadata ----------------------------------------------------------

    def column(self, name: str) -> Optional[Column]:
        return self._columns_by_name.get(name.lower())

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return name.lower() in self._columns_by_name

    def primary_key_columns(self) -> list[str]:
        return list(self.primary_key.columns) if self.primary_key else []

    def primary_key_index(self) -> Optional[BTreeIndex]:
        if self.primary_key is None:
            return None
        return self.indexes.get(f"pk_{self.name}")

    @property
    def row_count(self) -> int:
        return self.storage.live_count

    @property
    def rows(self) -> list[Optional[dict[str, Any]]]:
        """Slot-level view (``None`` marks a tombstone).

        For a :class:`~repro.engine.storage.RowStore` this is the live
        slot list; a :class:`~repro.engine.storage.ColumnStore`
        materialises row dicts on every access, so hot code should use
        :meth:`iter_rows` or the storage object directly.
        """
        return self.storage.slots()

    @property
    def data_bytes(self) -> int:
        """Total live-row payload bytes (Table 1 accounting)."""
        return self._data_bytes

    def index_bytes(self) -> int:
        return sum(index.byte_size() for index in self.indexes.values())

    def average_row_bytes(self) -> float:
        live = self.storage.live_count
        return self._data_bytes / live if live else 0.0

    def set_clock(self, clock: Callable[[], _dt.datetime]) -> None:
        """Override the timestamp source (tests and the loader use this)."""
        self._clock = clock

    def on_schema_change(self, callback: Optional[Callable[[], None]]) -> None:
        """Register the catalog's schema-version bump (fires on index DDL)."""
        self._on_schema_change = callback

    def on_mutation(self, callback: Optional[Callable[[str, dict], None]]) -> None:
        """Attach (or detach, with ``None``) the durability WAL hook."""
        self._on_mutation = callback

    def _log_mutation(self, op: str, payload: dict) -> None:
        if self._on_mutation is not None:
            self._on_mutation(op, payload)

    def describe(self) -> dict[str, Any]:
        """Schema-browser metadata (tables pane of SkyServerQA)."""
        return {
            "name": self.name,
            "description": self.description,
            "columns": [
                {
                    "name": column.name,
                    "type": column.dtype.value,
                    "nullable": column.nullable,
                    "unit": column.unit,
                    "description": column.description,
                }
                for column in self.columns
            ],
            "primary_key": self.primary_key_columns(),
            "foreign_keys": [
                {
                    "columns": list(fk.columns),
                    "references": fk.referenced_table,
                    "referenced_columns": list(fk.referenced_columns),
                }
                for fk in self.foreign_keys
            ],
            "indexes": [index.describe() for index in self.indexes.values()],
            "rows": self.row_count,
            "storage": self.storage.kind,
            "data_bytes": self.data_bytes,
            "index_bytes": self.index_bytes(),
        }

    # -- indices -----------------------------------------------------------

    def create_index(self, name: str, columns: Sequence[str], *, unique: bool = False,
                     included_columns: Sequence[str] = ()) -> BTreeIndex:
        for column in list(columns) + list(included_columns):
            if not self.has_column(column):
                raise SchemaError(
                    f"index {name!r}: column {column!r} not in table {self.name!r}")
        if name.lower() in {existing.lower() for existing in self.indexes}:
            raise SchemaError(f"duplicate index name {name!r} on table {self.name!r}")
        with self.lock.write():
            index = BTreeIndex(name, self, columns, unique=unique,
                               included_columns=included_columns)
            for row_id, row in self.storage.iter_rows():
                index.insert(row_id, row, defer_sort=True)
            index.rebuild()
            self.indexes[name] = index
            if self._on_schema_change is not None:
                self._on_schema_change()
            self._log_mutation("create_index", {
                "index": name, "columns": list(columns), "unique": unique,
                "included_columns": list(included_columns)})
        return index

    def drop_index(self, name: str) -> None:
        with self.lock.write():
            for existing in list(self.indexes):
                if existing.lower() == name.lower():
                    del self.indexes[existing]
                    if self._on_schema_change is not None:
                        self._on_schema_change()
                    self._log_mutation("drop_index", {"index": name})
                    return
        raise SchemaError(f"no index {name!r} on table {self.name!r}")

    def find_index_on(self, columns: Sequence[str]) -> Optional[BTreeIndex]:
        """An index whose leading key columns match ``columns`` exactly."""
        wanted = [column.lower() for column in columns]
        for index in self.indexes.values():
            if index.columns[:len(wanted)] == wanted:
                return index
        return None

    # -- row access ----------------------------------------------------------

    def get_row(self, row_id: int) -> Optional[dict[str, Any]]:
        return self.storage.get(row_id)

    def iter_rows(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """(row_id, row) pairs, holding the table's read lock while open.

        The lock is acquired when the first row is pulled and released
        when the generator is exhausted (or closed), so concurrent
        VACUUM/TRUNCATE/storage conversion — which reassign row ids —
        cannot run mid-iteration.  Code already inside an exclusive
        section iterates ``self.storage`` directly.
        """
        with self.lock.read():
            yield from self.storage.iter_rows()

    def __iter__(self) -> Iterator[dict[str, Any]]:
        with self.lock.read():
            yield from self.storage.iter_dicts()

    def __len__(self) -> int:
        return self.storage.live_count

    def has_key(self, columns: Sequence[str], key: tuple) -> bool:
        """True when a row with ``columns == key`` exists (used by FK checks)."""
        index = self.find_index_on(columns)
        if index is not None and len(columns) <= len(index.columns):
            return index.contains_key(key)
        wanted = [column.lower() for column in columns]
        for _row_id, row in self.iter_rows():
            if all(row.get(column) == value for column, value in zip(wanted, key)):
                return True
        return False

    # -- mutation ------------------------------------------------------------

    def _prepare_row(self, values: dict[str, Any]) -> dict[str, Any]:
        row: dict[str, Any] = {}
        provided = {key.lower(): value for key, value in values.items()}
        unknown = set(provided) - set(self._columns_by_name)
        if unknown:
            raise SchemaError(
                f"unknown column(s) {sorted(unknown)!r} for table {self.name!r}")
        for column in self.columns:
            key = column.name.lower()
            if key in provided and provided[key] is not NULL:
                row[key] = column.coerce(provided[key])
            elif key in provided:
                row[key] = NULL
            elif column.default == CURRENT_TIMESTAMP:
                row[key] = self._clock()
            elif column.default is not None:
                row[key] = column.coerce(column.default)
            else:
                row[key] = NULL
        check_not_null(row, self.columns, table_name=self.name)
        return row

    def insert(self, values: dict[str, Any], *, database: Optional["Database"] = None,
               defer_index_sort: bool = False, skip_fk: bool = False) -> int:
        """Insert one row, returning its row id.

        ``database`` is required to enforce foreign keys; the loader
        passes it, while low-level tests may omit it.  Bulk loads use
        ``defer_index_sort=True`` and call :meth:`rebuild_indexes` once.
        """
        row = self._prepare_row(values)
        for check in self.checks:
            check.check(row, table_name=self.name)
        # Exclusive on this table + shared on every FK parent, acquired
        # in one global name order (incremental acquisition could form
        # deadlock cycles with queries and vacuum).  Holding the parent
        # locks through the append closes the check-then-insert window a
        # concurrent parent delete could otherwise slip into.
        with lock_tables(self.insert_lock_specs(database, skip_fk=skip_fk)):
            if database is not None and not skip_fk:
                for foreign_key in self.foreign_keys:
                    foreign_key.check(row, database, table_name=self.name)
            row_id = self.storage.next_row_id()
            # Unique/PK indexes raise before the row is attached, keeping state consistent.
            for index in self.indexes.values():
                index.insert(row_id, row, defer_sort=defer_index_sort)
            self.storage.append(row)
            self._data_bytes += self._row_bytes(row)
            self.modification_counter += 1
            self._log_mutation("insert", {"row": row})
        return row_id

    def insert_lock_specs(self, database: Optional["Database"], *,
                          skip_fk: bool = False) -> list[tuple["Table", str]]:
        """The lock set one insert needs: write here, read on FK parents."""
        specs: list[tuple["Table", str]] = [(self, "write")]
        if database is not None and not skip_fk:
            for foreign_key in self.foreign_keys:
                if database.has_table(foreign_key.referenced_table):
                    specs.append((database.table(foreign_key.referenced_table),
                                  "read"))
        return specs

    def insert_many(self, rows: Iterable[dict[str, Any]], *,
                    database: Optional["Database"] = None,
                    skip_fk: bool = False) -> int:
        """Bulk insert with deferred index maintenance; returns rows inserted.

        The whole bulk runs in one exclusive section (FK parents held
        shared throughout): readers see either none or all of it, and
        the database epoch advances once.
        """
        count = 0
        with lock_tables(self.insert_lock_specs(database, skip_fk=skip_fk)):
            for values in rows:
                self.insert(values, database=database, defer_index_sort=True,
                            skip_fk=skip_fk)
                count += 1
            self.rebuild_indexes()
        return count

    def rebuild_indexes(self) -> None:
        for index in self.indexes.values():
            index.rebuild()

    def delete_row(self, row_id: int) -> bool:
        with self.lock.write():
            row = self.storage.get(row_id)
            if row is None:
                return False
            for index in self.indexes.values():
                index.remove(row_id, row)
            self.storage.delete(row_id)
            self._data_bytes -= self._row_bytes(row)
            self.modification_counter += 1
            self._log_mutation("delete", {"row_id": row_id})
            return True

    def delete_where(self, predicate: Callable[[dict[str, Any]], bool]) -> int:
        """Delete all rows matching ``predicate``; returns the number deleted.

        Selection and deletion happen in one exclusive section, so the
        predicate runs against a stable snapshot.
        """
        with self.lock.write():
            victims = [row_id for row_id, row in self.storage.iter_rows()
                       if predicate(row)]
            for row_id in victims:
                self.delete_row(row_id)
            return len(victims)

    def truncate(self) -> None:
        with self.lock.write():
            self.modification_counter += self.storage.live_count
            self.storage.clear()
            self._data_bytes = 0
            for index in self.indexes.values():
                index.clear()
            self._log_mutation("truncate", {})

    # -- storage layout --------------------------------------------------------

    def convert_storage(self, kind: str) -> int:
        """Rebuild the row store in ``kind`` layout (``"row"``/``"column"``).

        Live rows are re-appended in id order, so ids are compacted
        exactly as by :meth:`vacuum` and every index is rebuilt.  The
        schema-change callback fires (bumping the catalog version) so
        cached plans built against the old layout are invalidated.
        Returns the number of live rows converted; a same-kind call is
        a no-op.
        """
        with self.lock.write():
            if self.storage.kind == kind:
                return self.storage.live_count
            new_storage = make_storage(kind, self.columns)
            for _row_id, row in self.storage.iter_rows():
                new_storage.append(row)
            self.storage = new_storage
            self._rebuild_indexes_from_storage()
            if self._on_schema_change is not None:
                self._on_schema_change()
            self._log_mutation("convert", {"layout": kind})
            return self.storage.live_count

    # -- tombstone compaction ------------------------------------------------

    #: Dead-slot fraction above which :meth:`maybe_vacuum` compacts.
    VACUUM_THRESHOLD = 0.25

    @property
    def tombstone_count(self) -> int:
        """Dead (deleted) slots still occupying the row store."""
        return self.storage.tombstone_count

    def vacuum(self) -> int:
        """Compact the row store, dropping tombstones.

        Delegates to the storage engine (both :class:`RowStore` and
        :class:`ColumnStore` implement compaction); row ids are
        reassigned, so every index is rebuilt from the compacted store.
        Returns the number of dead slots reclaimed.  Scans stop paying
        the skip-a-hole branch for every deleted row (the loader's UNDO
        of a large failed step can leave millions).
        """
        with self.lock.write():
            dead = self.storage.vacuum()
            if dead == 0:
                return 0
            self._rebuild_indexes_from_storage()
            self._log_mutation("vacuum", {})
            return dead

    def maybe_vacuum(self, threshold: Optional[float] = None) -> int:
        """Vacuum when the dead-slot fraction exceeds ``threshold``."""
        limit = self.VACUUM_THRESHOLD if threshold is None else threshold
        with self.lock.write():
            total = len(self.storage)
            if total and self.storage.tombstone_count / total >= limit:
                return self.vacuum()
            return 0

    def _rebuild_indexes_from_storage(self) -> None:
        for index in self.indexes.values():
            index.clear()
            for row_id, row in self.storage.iter_rows():
                index.insert(row_id, row, defer_sort=True)
            index.rebuild()

    def _row_bytes(self, row: dict[str, Any]) -> int:
        total = 0
        for column in self.columns:
            total += value_byte_size(row.get(column.name.lower(), NULL), column.dtype)
        return total


def _default_clock() -> _dt.datetime:
    return _dt.datetime.now(tz=_dt.timezone.utc)
