"""Exception hierarchy for the relational engine.

The engine raises a small, explicit family of exceptions so callers
(the loader, the SkyServer service layer, the tests) can distinguish
schema problems, constraint violations, SQL syntax errors and runtime
limits without string matching.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for every error raised by :mod:`repro.engine`."""


class CatalogError(EngineError):
    """A schema object (table, view, index, function) is missing or duplicated."""


class SchemaError(EngineError):
    """A table or column definition is invalid."""


class TypeMismatchError(EngineError):
    """A value cannot be coerced to the declared column type."""


class ConstraintViolation(EngineError):
    """Base class for integrity-constraint violations."""

    def __init__(self, message: str, *, table: str = "", constraint: str = ""):
        super().__init__(message)
        self.table = table
        self.constraint = constraint


class NotNullViolation(ConstraintViolation):
    """A NOT NULL column received a NULL value."""


class PrimaryKeyViolation(ConstraintViolation):
    """A duplicate primary-key value was inserted."""


class ForeignKeyViolation(ConstraintViolation):
    """A foreign key referenced a row that does not exist."""


class CheckViolation(ConstraintViolation):
    """A CHECK constraint evaluated to false."""


class ExpressionError(EngineError):
    """An expression could not be evaluated (unknown column, bad operand)."""


class UnknownColumnError(ExpressionError):
    """A column reference did not resolve against the row scope."""


class UnknownFunctionError(ExpressionError):
    """A scalar or table-valued function is not registered."""


class SQLSyntaxError(EngineError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, *, line: int = 0, column: int = 0):
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class BindError(EngineError):
    """A parsed SQL statement referenced unknown tables, columns or variables."""


class PlanError(EngineError):
    """The planner could not produce a physical plan for a logical query."""


class QueryLimitExceeded(EngineError):
    """A public-server limit (row count or elapsed time) was exceeded."""

    def __init__(self, message: str, *, limit_kind: str = ""):
        super().__init__(message)
        self.limit_kind = limit_kind


class LoadError(EngineError):
    """A data-load step failed (bad CSV, failed validation, missing file)."""
