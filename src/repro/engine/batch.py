"""Column batches: the unit of work of the vectorized execution path.

A :class:`ColumnBatch` is a *view* over a :class:`~repro.engine.storage.
ColumnStore`'s buffers — it never copies column data.  It carries the
shared column buffers plus a **selection vector**: the row positions
that are still alive after the scan and any filters.  Operators narrow
the selection (``FilterOp``), gather values from it (projection,
aggregation) or adapt it back to row dicts at the boundary to the
row-at-a-time world (joins, sorts, DISTINCT, the SQL session).
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping, Sequence

from .types import NULL

#: Rows per batch.  Large enough that per-batch overhead (compiling is
#: per-execution, this is just loop bookkeeping) vanishes, small enough
#: that TOP-style early termination does not compute far past its limit.
BATCH_ROWS = 4096


def morsel_ranges(total: int, size: int = BATCH_ROWS) -> list[tuple[int, int]]:
    """The ``[start, stop)`` row ranges a scan of ``total`` slots splits into.

    Morsels are fixed-size row-range slices of the column buffers — the
    unit the parallel scheduler hands to workers.  The serial batch loop
    walks the identical ranges, which is what makes parallel execution's
    ordered gather reproduce the serial batch stream exactly.

    Segmented column stores no longer call this for scans — their
    morsels are :meth:`ColumnStore.scan_units` (one per sealed
    segment, ``SEGMENT_ROWS == BATCH_ROWS``, plus the tail), which
    tile row ids exactly like these ranges do.  It remains the tiling
    for row stores and non-scan consumers.
    """
    return [(start, min(start + size, total)) for start in range(0, total, size)]


class BatchRowView:
    """A dict-like view of one batch row, addressed by column name.

    ``view[name]`` reads the current row position from the column
    buffers (honouring the null masks), which lets the row-mode compiled
    closures of :func:`repro.engine.compile.compile_row_expression` run
    unchanged over columnar data: their ``itemgetter`` leaves call
    ``__getitem__`` exactly as they would on a row dict.
    """

    __slots__ = ("_columns", "_masks", "index")

    def __init__(self, columns: Mapping[str, Sequence],
                 masks: Mapping[str, bytearray]):
        self._columns = columns
        self._masks = masks
        self.index = 0

    def __getitem__(self, key: str) -> Any:
        mask = self._masks.get(key)
        if mask is not None and mask[self.index]:
            return NULL
        return self._columns[key][self.index]


class ColumnBatch:
    """One batch of a columnar scan: shared buffers + a selection vector."""

    __slots__ = ("columns", "masks", "selection", "binding_name")

    def __init__(self, columns: Mapping[str, Sequence],
                 masks: Mapping[str, bytearray],
                 selection: list[int], binding_name: str):
        self.columns = columns
        self.masks = masks
        self.selection = selection
        self.binding_name = binding_name

    def __len__(self) -> int:
        return len(self.selection)

    def row_view(self) -> BatchRowView:
        return BatchRowView(self.columns, self.masks)

    def rows(self, column_order: Sequence[str]) -> Iterator[dict[str, Any]]:
        """Row-dict adapter: materialise the selected rows (boundary use)."""
        view = self.row_view()
        for position in self.selection:
            view.index = position
            yield {name: view[name] for name in column_order}
