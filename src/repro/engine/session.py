"""The shared session surface: one protocol, one factory.

Both :class:`~repro.engine.sql.SqlSession` (single node) and
:class:`~repro.cluster.ClusterSession` (coordinator of a shard cluster)
expose the same query surface; historically every call site re-decided
which one to build (``if cluster is not None: ...``) and type-sniffed
which one it held.  :class:`Session` writes the contract down as a
:class:`typing.Protocol` — callers annotate against it — and
:func:`make_session` is the single place the backend choice happens:
give it a database and optionally a cluster, get back the right
session.  ``pool.py``, ``server.py``, ``query_tool.py`` and
``personal.py`` all go through it.
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, runtime_checkable

from .sql.session import SqlSession


@runtime_checkable
class Session(Protocol):
    """What the serving layer may assume about any query session.

    Attributes: ``database`` (the catalog queries resolve against —
    the coordinator's, for a cluster session).
    """

    database: Any

    def execute(self, sql: str):
        """Run one statement, returning its :class:`QueryResult`."""
        ...

    def query(self, sql: str) -> list[dict[str, Any]]:
        """Run one SELECT and return its rows."""
        ...

    def explain(self, sql: str, *, analyze: bool = False) -> str:
        """The plan (optionally executed, with observed cardinalities)."""
        ...

    def optimizer_statistics(self) -> dict[str, Any]:
        """Planner counters: cost-based choices, cache hits, rewrites."""
        ...

    def execution_mode_statistics(self) -> dict[str, Any]:
        """How many statements ran vectorized / row-mode / parallel."""
        ...

    def feedback_statistics(self) -> dict[str, Any]:
        """Cardinality-feedback counters (q-errors, re-plans)."""
        ...


def make_session(database, *, cluster=None,
                 row_limit: Optional[int] = None,
                 time_limit_seconds: Optional[float] = None,
                 parallelism: int = 1) -> Session:
    """Build the right session for the backend at hand.

    With ``cluster`` the session is the cluster's distributed-planning
    coordinator session; otherwise a plain single-node session over
    ``database`` (with a morsel-parallel planner when ``parallelism``
    exceeds 1).  Either way the return value satisfies :class:`Session`.
    """
    if cluster is not None:
        from ..cluster import ClusterSession

        return ClusterSession(cluster, row_limit=row_limit,
                              time_limit_seconds=time_limit_seconds,
                              parallelism=parallelism)
    planner = None
    if parallelism > 1:
        from .planner import Planner

        planner = Planner(database, parallelism=parallelism)
    return SqlSession(database, row_limit=row_limit,
                      time_limit_seconds=time_limit_seconds,
                      planner=planner)
