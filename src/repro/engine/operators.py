"""Physical operators and execution statistics.

Operators follow the iterator (Volcano) model: each operator's
:meth:`PhysicalOperator.rows` yields *bindings* — dictionaries that map
a relation's binding name (its alias) to the current row from that
relation.  Expressions are evaluated against a :class:`RowScope` built
from the binding, which is how qualified references like ``r.fiberMag_r``
and ``g.fiberMag_g`` in the paper's NEO query resolve to the right side
of a self-join.

Each operator keeps actual-row counters so EXPLAIN output can show both
the plan shape (Figures 10-12 of the paper) and the observed
cardinalities, and the shared :class:`ExecutionStatistics` accumulates
the logical bytes scanned, which the I/O model converts into
paper-scale elapsed-time estimates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional, Sequence

from .batch import ColumnBatch
from .catalog import Database
from .compile import (CompiledExpression, RowCompileError, VectorCompileError,
                      VectorExpression, compile_expression,
                      compile_join_vector_predicate,
                      compile_join_vector_projection, compile_row_expression,
                      compile_vector_predicate, compile_vector_projection)
from .errors import PlanError, UnknownColumnError
from .expressions import (AggregateCall, ColumnRef, EvaluationContext,
                          Expression, RowScope, Star)
from .functions import TableValuedFunction
from .index import BTreeIndex
from .logical import SelectItem
from .segments import compile_zone_predicate, runtime_range_zone
from .table import Table
from .types import NULL, Column, DataType

Binding = dict[str, dict[str, Any]]

#: Binding name under which projected output rows are re-bound for
#: operators that run above the projection (DISTINCT, INTO).
OUTPUT_BINDING = "#output"


@dataclass
class ExecutionStatistics:
    """Counters accumulated across one query execution."""

    rows_scanned: int = 0
    rows_returned: int = 0
    bytes_scanned: int = 0
    index_entries_read: int = 0
    random_lookups: int = 0
    elapsed_seconds: float = 0.0
    cpu_seconds: float = 0.0
    #: Expression trees compiled to closures during this execution.
    exprs_compiled: int = 0
    #: 1 when this execution reused a cached plan / 1 when it had to plan.
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    #: Column batches pushed through the vectorized pipeline, and the
    #: rows they carried (zero on row-at-a-time executions).
    batches_processed: int = 0
    batch_rows: int = 0
    #: Sealed segments whose data a batch scan actually touched, and
    #: segments the zone maps let it skip — or answer — without
    #: decoding a single value.
    segments_scanned: int = 0
    segments_skipped: int = 0
    #: Morsels executed on the shared worker pool, and the widest
    #: worker grant any parallel operator ran with (zero when the whole
    #: execution was serial).
    morsels_dispatched: int = 0
    parallel_workers: int = 0
    #: Seconds spent in the simulated per-table I/O model (sleeps are
    #: concurrent across workers, so this can exceed elapsed time).
    simulated_io_seconds: float = 0.0
    #: Probe-side pruning by runtime join filters (sideways information
    #: passing): sealed segments never read because the build side's
    #: key range proved them matchless, and probe rows the build-key
    #: Bloom filter dropped before materialization.  Both are also
    #: counted in ``segments_skipped`` / reflected in narrower batches;
    #: these attribute the win to the runtime filter specifically.
    runtime_filter_segments_pruned: int = 0
    runtime_filter_rows_pruned: int = 0

    def merge_scan(self, rows: int, row_bytes: float) -> None:
        self.rows_scanned += rows
        self.bytes_scanned += int(rows * row_bytes)


@dataclass
class ExecutionContext:
    """Everything an operator needs at run time."""

    database: Database
    evaluation: EvaluationContext
    statistics: ExecutionStatistics = field(default_factory=ExecutionStatistics)
    #: When False, operators evaluate expressions through the interpreted
    #: ``Expression.evaluate`` path (the pre-compilation behaviour; kept for
    #: the ablation benchmark and as a safety hatch).
    compile_enabled: bool = True
    #: Intra-query worker budget (1 = serial; the planner only marks
    #: operators parallel when it planned with ``parallelism > 1``).
    parallelism: int = 1
    #: Simulated sequential-scan bandwidth (MB/s); None = off.  Mirrors
    #: the cluster executor's per-shard model so morsel workers can
    #: overlap I/O stalls with compute on a single node.
    simulated_scan_mbps: Optional[float] = None

    def compile(self, expression: Optional[Expression]) -> Optional[CompiledExpression]:
        """Compile an expression once for this execution (or wrap the interpreter)."""
        if expression is None:
            return None
        if not self.compile_enabled:
            evaluation = self.evaluation
            return lambda scope: expression.evaluate(scope, evaluation)
        self.statistics.exprs_compiled += 1
        return compile_expression(expression, self.evaluation)

    def compile_row(self, expression: Expression, table: "Table",
                    binding_name: str) -> CompiledExpression:
        """Row-mode compile for the fused scan path (raises RowCompileError).

        Does not touch the ``exprs_compiled`` counter: the caller counts
        once per expression only after the whole fused compilation
        succeeds (a partial attempt falls back and recompiles).
        """
        return compile_row_expression(expression, self.evaluation,
                                      table, binding_name)

    def compile_vector_predicate(self, expression: Expression, table: "Table",
                                 binding_name: str) -> VectorExpression:
        """Vector compile (raises VectorCompileError); counters as compile_row.

        The compiled function also carries the predicate's *zone form*
        (``fn.zone_predicate``) when the expression is analyzable over
        per-segment zone maps — scans consult it to skip sealed
        segments before touching their data.
        """
        fn = compile_vector_predicate(expression, self.evaluation,
                                      table, binding_name)
        if getattr(fn, "zone_predicate", None) is None:
            fn.zone_predicate = compile_zone_predicate(
                expression, self.evaluation, table, binding_name)
        return fn

    def compile_vector_projection(self, expression: Expression, table: "Table",
                                  binding_name: str):
        return compile_vector_projection(expression, self.evaluation,
                                         table, binding_name)

    def compile_join_vector_predicate(self, expression: Expression, schema):
        """Join-batch vector compile (raises VectorCompileError)."""
        return compile_join_vector_predicate(expression, self.evaluation, schema)

    def compile_join_vector_projection(self, expression: Expression, schema):
        return compile_join_vector_projection(expression, self.evaluation, schema)


class PhysicalOperator:
    """Base class for all physical operators."""

    label = "Operator"

    #: Set by the planner on operators it placed in a vectorized
    #: (batch-at-a-time) pipeline; execution re-verifies at run time and
    #: silently falls back to the row path when the chain no longer
    #: qualifies (e.g. the table's storage layout changed).
    vectorized = False

    #: Cardinality/cost estimates assigned by the cost-based optimizer
    #: (None/0.0 when the planner ran without the cost model).  EXPLAIN
    #: prefers ``planner_rows`` over the operator's own heuristic.
    planner_rows: Optional[int] = None
    planner_cost: float = 0.0

    #: Worker budget the planner assigned this operator (1 = serial).
    #: EXPLAIN shows ``workers=N`` when the plan is parallel here.
    workers = 1

    def __init__(self) -> None:
        self.actual_rows = 0
        #: Morsels this operator actually ran on the pool (EXPLAIN ANALYZE).
        self.actual_morsels = 0
        #: Inclusive wall-clock seconds spent producing this operator's
        #: rows, populated only when the plan executed with
        #: ``time_operators=True`` (EXPLAIN ANALYZE).
        self.actual_seconds = 0.0

    def set_estimates(self, rows: Optional[int] = None,
                      cost: Optional[float] = None) -> None:
        """Record the optimizer's cardinality and cost estimates."""
        if rows is not None:
            self.planner_rows = max(1, int(rows))
        if cost is not None:
            self.planner_cost = float(cost)

    def scale_rows(self, child_rows: int) -> int:
        """This operator's output cardinality given its child's.

        The single source of each operator's row-scaling heuristic:
        ``estimated_rows`` applies it to the child's own estimate and
        the cost propagation applies it to the optimizer-corrected
        child estimate.
        """
        return child_rows

    def mark_batch_mode(self) -> None:
        """Planner hook: flag this operator vectorized and label it for EXPLAIN."""
        self.vectorized = True
        if not self.label.startswith("Batch "):
            self.label = f"Batch {self.label}"

    def rows(self, context: ExecutionContext) -> Iterator[Binding]:
        raise NotImplementedError

    def children(self) -> Sequence["PhysicalOperator"]:
        return ()

    def details(self) -> str:
        return ""

    def estimated_rows(self) -> int:
        return 0

    def _emit(self, binding: Binding) -> Binding:
        self.actual_rows += 1
        return binding


# ---------------------------------------------------------------------------
# Leaf operators: scans
# ---------------------------------------------------------------------------

class TableScan(PhysicalOperator):
    """Full sequential scan of a base table, with an optional pushed-down filter."""

    label = "Table Scan"

    #: Planner toggle: consult per-segment zone maps so compiled
    #: predicates can skip sealed segments they prove empty
    #: (``Planner(enable_zone_maps=False)`` clears it for the ablation
    #: benchmark).  Zone maps are conservative — a segment is only
    #: skipped when no live row in it could possibly match.
    use_zone_maps = True

    def __init__(self, table: Table, binding_name: str,
                 predicate: Optional[Expression] = None):
        super().__init__()
        self.table = table
        self.binding_name = binding_name
        self.predicate = predicate
        #: Per-run segment counters for EXPLAIN ANALYZE
        #: (``segments=<scanned>/<total> skipped=<n>``).
        self.actual_segments_scanned = 0
        self.actual_segments_skipped = 0
        #: How much of the above a *runtime* join filter contributed
        #: (also in the totals; kept apart so cardinality feedback can
        #: ignore scans whose observed rows a sibling's build pruned).
        self.actual_runtime_segments_pruned = 0
        self.actual_runtime_rows_pruned = 0

    def rows(self, context: ExecutionContext) -> Iterator[Binding]:
        row_bytes = int(self.table.average_row_bytes())
        statistics = context.statistics
        binding_name = self.binding_name
        predicate = self._compiled_predicate(context)
        scope = RowScope()
        for row in self.table.storage.iter_dicts():
            statistics.rows_scanned += 1
            statistics.bytes_scanned += row_bytes
            if predicate is not None:
                scope.bind(binding_name, row)
                if predicate(scope) is not True:
                    continue
            yield self._emit({binding_name: row})

    def batches(self, context: ExecutionContext,
                predicate_fn: Optional[VectorExpression] = None,
                zone_fns: Optional[Sequence[Any]] = None,
                runtime_filter: Optional["RuntimeJoinFilter"] = None
                ) -> Iterator[ColumnBatch]:
        """Columnar scan: yield :class:`ColumnBatch` chunks of live rows.

        ``predicate_fn`` is the pre-compiled vector form of
        :attr:`predicate` (the pipeline driver compiles the whole chain
        before pulling the first batch).  The scan walks the storage's
        scan units — one per sealed segment plus the append tail — so
        sealed segments whose zone maps prove the predicate can never
        match are skipped before any column is decoded, and equality
        predicates over a dictionary-encoded column filter by code.
        ``zone_fns`` extends the skip test with the zone forms of
        filters stacked above the scan; when omitted, the scan
        predicate's own zone form applies.  ``runtime_filter`` carries
        a finished hash-join build's key summary: segments its range
        disproves are skipped like zone misses (no rows, no simulated
        I/O) and surviving rows are thinned by its Bloom filter after
        the scan predicate.  Statistics account exactly as the row
        path for every unit actually scanned, pass or fail; skipped
        segments contribute neither rows nor simulated I/O.
        """
        storage = self.table.storage
        statistics = context.statistics
        row_bytes = int(self.table.average_row_bytes())
        binding_name = self.binding_name
        mbps = context.simulated_scan_mbps
        if zone_fns is None:
            zone_fns = _zone_predicates(self.use_zone_maps, predicate_fn)
        for unit in storage.scan_units():
            segment = unit.segment
            if segment is not None and zone_fns and _zone_skips(zone_fns,
                                                                segment):
                statistics.segments_skipped += 1
                self.actual_segments_skipped += 1
                continue
            if (segment is not None and runtime_filter is not None
                    and runtime_filter.prunes_segment(segment)):
                runtime_filter.note_segment(statistics)
                continue
            selection = unit.selection()
            if not selection:
                continue
            if segment is not None:
                statistics.segments_scanned += 1
                self.actual_segments_scanned += 1
            statistics.rows_scanned += len(selection)
            statistics.bytes_scanned += len(selection) * row_bytes
            statistics.batches_processed += 1
            statistics.batch_rows += len(selection)
            if mbps:
                seconds = (len(selection) * row_bytes) / (mbps * 1.0e6)
                statistics.simulated_io_seconds += seconds
                time.sleep(seconds)
            batch = ColumnBatch(unit.columns(), unit.masks(), selection,
                                binding_name)
            if predicate_fn is not None:
                batch.selection = _apply_scan_predicate(predicate_fn, batch,
                                                        selection, segment)
            self.actual_rows += len(batch.selection)
            if runtime_filter is not None and batch.selection:
                kept = runtime_filter.filter_rows(batch, batch.selection)
                runtime_filter.note_rows(statistics,
                                         len(batch.selection) - len(kept))
                batch.selection = kept
            yield batch

    def _compiled_predicate(self, context: ExecutionContext) -> Optional[CompiledExpression]:
        return context.compile(self.predicate)

    def details(self) -> str:
        where = f" WHERE {self.predicate.sql()}" if self.predicate is not None else ""
        return f"{self.table.name} AS {self.binding_name}{where}"

    def estimated_rows(self) -> int:
        return self.table.row_count


class CoveringIndexScan(PhysicalOperator):
    """Scan of an index whose columns cover the query (the paper's tag-table substitute).

    The scan touches only the index entries, so the *bytes scanned* are
    the narrow entry width rather than the ~2 KB PhotoObj row — this is
    the ten-to-one-hundred-fold sequential-scan speedup of §9.1.3.
    """

    label = "Covering Index Scan"

    def __init__(self, index: BTreeIndex, binding_name: str,
                 predicate: Optional[Expression] = None):
        super().__init__()
        self.index = index
        self.binding_name = binding_name
        self.predicate = predicate

    def rows(self, context: ExecutionContext) -> Iterator[Binding]:
        statistics = context.statistics
        entry_bytes = self.index.entry_byte_width()
        table = self.index.table
        binding_name = self.binding_name
        predicate = context.compile(self.predicate)
        scope = RowScope()
        for row_id in self.index.scan():
            row = table.get_row(row_id)
            if row is None:
                continue
            statistics.rows_scanned += 1
            statistics.bytes_scanned += entry_bytes
            statistics.index_entries_read += 1
            if predicate is not None:
                scope.bind(binding_name, row)
                if predicate(scope) is not True:
                    continue
            yield self._emit({binding_name: row})

    def details(self) -> str:
        where = f" WHERE {self.predicate.sql()}" if self.predicate is not None else ""
        return (f"{self.index.table.name}.{self.index.name} "
                f"({', '.join(self.index.columns)}) AS {self.binding_name}{where}")

    def estimated_rows(self) -> int:
        return self.index.table.row_count


class IndexRangeScan(PhysicalOperator):
    """Range (or equality) seek on an index, plus residual filter."""

    label = "Index Seek"

    def __init__(self, index: BTreeIndex, binding_name: str,
                 low: Optional[Sequence[Expression]], high: Optional[Sequence[Expression]],
                 predicate: Optional[Expression] = None,
                 estimated: int = 0, covering: bool = False):
        super().__init__()
        self.index = index
        self.binding_name = binding_name
        self.low = list(low) if low is not None else None
        self.high = list(high) if high is not None else None
        self.predicate = predicate
        self._estimated = estimated
        self.covering = covering

    def _bound_values(self, bound: Optional[Sequence[Expression]],
                      context: ExecutionContext) -> Optional[list[Any]]:
        if bound is None:
            return None
        scope = RowScope()
        return [context.compile(expression)(scope) for expression in bound]

    def rows(self, context: ExecutionContext) -> Iterator[Binding]:
        statistics = context.statistics
        table = self.index.table
        row_bytes = int(self.index.entry_byte_width() if self.covering
                        else table.average_row_bytes())
        covering = self.covering
        binding_name = self.binding_name
        low = self._bound_values(self.low, context)
        high = self._bound_values(self.high, context)
        predicate = context.compile(self.predicate)
        scope = RowScope()
        for row_id in self.index.range(low, high):
            row = table.get_row(row_id)
            if row is None:
                continue
            statistics.rows_scanned += 1
            statistics.bytes_scanned += row_bytes
            statistics.index_entries_read += 1
            if not covering:
                statistics.random_lookups += 1
            if predicate is not None:
                scope.bind(binding_name, row)
                if predicate(scope) is not True:
                    continue
            yield self._emit({binding_name: row})

    def details(self) -> str:
        low_text = "[" + ", ".join(e.sql() for e in self.low) + "]" if self.low else "-inf"
        high_text = "[" + ", ".join(e.sql() for e in self.high) + "]" if self.high else "+inf"
        where = f" WHERE {self.predicate.sql()}" if self.predicate is not None else ""
        return (f"{self.index.table.name}.{self.index.name} range {low_text}..{high_text} "
                f"AS {self.binding_name}{where}")

    def estimated_rows(self) -> int:
        return self._estimated


class FunctionScan(PhysicalOperator):
    """Scan of a table-valued function's result (Figure 10's outer input)."""

    label = "Table-valued Function"

    def __init__(self, function: TableValuedFunction, args: Sequence[Expression],
                 binding_name: str):
        super().__init__()
        self.function = function
        self.args = list(args)
        self.binding_name = binding_name

    def rows(self, context: ExecutionContext) -> Iterator[Binding]:
        scope = RowScope()
        values = [argument.evaluate(scope, context.evaluation) for argument in self.args]
        for row in self.function(*values):
            context.statistics.rows_scanned += 1
            yield self._emit({self.binding_name: row})

    def details(self) -> str:
        args = ", ".join(argument.sql() for argument in self.args)
        return f"{self.function.name}({args}) AS {self.binding_name}"

    def estimated_rows(self) -> int:
        return self.function.row_estimate


class RowSource(PhysicalOperator):
    """An operator over pre-materialised rows (used for subqueries and tests)."""

    label = "Row Source"

    def __init__(self, rows: Iterable[dict[str, Any]], binding_name: str):
        super().__init__()
        self._rows = list(rows)
        self.binding_name = binding_name

    def rows(self, context: ExecutionContext) -> Iterator[Binding]:
        for row in self._rows:
            yield self._emit({self.binding_name: row})

    def details(self) -> str:
        return f"{len(self._rows)} rows AS {self.binding_name}"

    def estimated_rows(self) -> int:
        return len(self._rows)


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------

class NestedLoopJoin(PhysicalOperator):
    """Naive nested-loop join: re-evaluates the inner operator per outer binding."""

    label = "Nested Loop Join"

    def __init__(self, outer: PhysicalOperator, inner: PhysicalOperator,
                 condition: Optional[Expression] = None):
        super().__init__()
        self.outer = outer
        self.inner = inner
        self.condition = condition

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.outer, self.inner)

    def rows(self, context: ExecutionContext) -> Iterator[Binding]:
        condition = context.compile(self.condition)
        scopes = _BindingScopes()
        for outer_binding in self.outer.rows(context):
            for inner_binding in self.inner.rows(context):
                merged = {**outer_binding, **inner_binding}
                if condition is not None:
                    if condition(scopes.scope_for(merged)) is not True:
                        continue
                yield self._emit(merged)

    def details(self) -> str:
        return f"ON {self.condition.sql()}" if self.condition is not None else "cross join"

    def estimated_rows(self) -> int:
        return max(self.outer.estimated_rows(), self.inner.estimated_rows())


class IndexNestedLoopJoin(PhysicalOperator):
    """Nested-loop join that probes an index of the inner table per outer row.

    This is the plan of Figure 10: each row from the spatial
    table-valued function probes the PhotoObj primary key.
    """

    label = "Index Nested Loop Join"

    def __init__(self, outer: PhysicalOperator, inner_table: Table, inner_binding: str,
                 index: BTreeIndex, outer_key: Sequence[Expression],
                 residual: Optional[Expression] = None):
        super().__init__()
        self.outer = outer
        self.inner_table = inner_table
        self.inner_binding = inner_binding
        self.index = index
        self.outer_key = list(outer_key)
        self.residual = residual

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.outer,)

    def rows(self, context: ExecutionContext) -> Iterator[Binding]:
        statistics = context.statistics
        row_bytes = int(self.inner_table.average_row_bytes())
        inner_binding = self.inner_binding
        key_fns = [context.compile(expression) for expression in self.outer_key]
        residual = context.compile(self.residual)
        outer_scopes = _BindingScopes()
        merged_scopes = _BindingScopes()
        for outer_binding in self.outer.rows(context):
            outer_scope = outer_scopes.scope_for(outer_binding)
            key = tuple(key_fn(outer_scope) for key_fn in key_fns)
            for row_id in self.index.seek(key):
                row = self.inner_table.get_row(row_id)
                if row is None:
                    continue
                statistics.rows_scanned += 1
                statistics.bytes_scanned += row_bytes
                statistics.random_lookups += 1
                merged = {**outer_binding, inner_binding: row}
                if residual is not None:
                    if residual(merged_scopes.scope_for(merged)) is not True:
                        continue
                yield self._emit(merged)

    def details(self) -> str:
        key = ", ".join(expression.sql() for expression in self.outer_key)
        residual = f" WHERE {self.residual.sql()}" if self.residual is not None else ""
        return (f"probe {self.inner_table.name}.{self.index.name} "
                f"({', '.join(self.index.columns)}) = ({key}) AS {self.inner_binding}{residual}")

    def estimated_rows(self) -> int:
        return self.outer.estimated_rows()


class HashJoin(PhysicalOperator):
    """Equality hash join; builds on the smaller (build) side."""

    label = "Hash Join"

    #: Planner toggle (``Planner(enable_runtime_filters=...)``): once the
    #: batch path's build finishes, summarize its keys as a min/max
    #: range + Bloom filter and push them into the probe-side scan.
    #: Runtime filters only drop rows the probe's exact hash lookup
    #: would drop anyway, so results are identical with them on or off.
    runtime_filter_enabled = False

    def __init__(self, build: PhysicalOperator, probe: PhysicalOperator,
                 build_keys: Sequence[Expression], probe_keys: Sequence[Expression],
                 residual: Optional[Expression] = None):
        super().__init__()
        self.build = build
        self.probe = probe
        self.build_keys = list(build_keys)
        self.probe_keys = list(probe_keys)
        self.residual = residual
        #: Per-run runtime-filter effect for EXPLAIN ANALYZE
        #: (``runtime_filter: range+bloom, pruned=<segments>/<rows>``).
        self.runtime_filter_kind: Optional[str] = None
        self.runtime_segments_pruned = 0
        self.runtime_rows_pruned = 0

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.build, self.probe)

    def rows(self, context: ExecutionContext) -> Iterator[Binding]:
        build_fns = [context.compile(expression) for expression in self.build_keys]
        probe_fns = [context.compile(expression) for expression in self.probe_keys]
        residual = context.compile(self.residual)
        hash_table: dict[tuple, list[Binding]] = {}
        build_scopes = _BindingScopes()
        for binding in self.build.rows(context):
            scope = build_scopes.scope_for(binding)
            key = tuple(key_fn(scope) for key_fn in build_fns)
            if any(part is NULL for part in key):
                continue
            hash_table.setdefault(key, []).append(binding)
        probe_scopes = _BindingScopes()
        merged_scopes = _BindingScopes()
        for probe_binding in self.probe.rows(context):
            scope = probe_scopes.scope_for(probe_binding)
            key = tuple(key_fn(scope) for key_fn in probe_fns)
            if any(part is NULL for part in key):
                continue
            for build_binding in hash_table.get(key, ()):
                merged = {**build_binding, **probe_binding}
                if residual is not None:
                    if residual(merged_scopes.scope_for(merged)) is not True:
                        continue
                yield self._emit(merged)

    def details(self) -> str:
        build = ", ".join(expression.sql() for expression in self.build_keys)
        probe = ", ".join(expression.sql() for expression in self.probe_keys)
        return f"build({build}) = probe({probe})"

    def estimated_rows(self) -> int:
        return max(self.build.estimated_rows(), self.probe.estimated_rows())


class SortMergeJoin(PhysicalOperator):
    """Single-pass merge of two inputs already streaming in join-key order.

    The planner only chooses this operator (behind the
    ``enable_sort_merge`` flag) for a single-column equality join whose
    both sides are scans of tables *verified* to be stored in ascending
    key order with no NULL keys — the objID-ordered co-partitioned case:
    both sides then stream in global key order and the join is one
    synchronized pass, no hash table.

    The emission contract matches :class:`HashJoin` exactly under that
    precondition: output is probe-major (one group of matches per probe
    row, in probe order) and matches within a key group appear in build
    order — since the probe stream is key-ordered, this is the same
    sequence a hash join of the same inputs produces, so flipping the
    flag never changes result order.
    """

    label = "Sort-Merge Join"

    def __init__(self, build: PhysicalOperator, probe: PhysicalOperator,
                 build_keys: Sequence[Expression], probe_keys: Sequence[Expression],
                 residual: Optional[Expression] = None):
        super().__init__()
        self.build = build
        self.probe = probe
        self.build_keys = list(build_keys)
        self.probe_keys = list(probe_keys)
        self.residual = residual

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.build, self.probe)

    def rows(self, context: ExecutionContext) -> Iterator[Binding]:
        build_fn = context.compile(self.build_keys[0])
        probe_fn = context.compile(self.probe_keys[0])
        residual = context.compile(self.residual)
        build_scopes = _BindingScopes()
        probe_scopes = _BindingScopes()
        merged_scopes = _BindingScopes()

        def keyed_build() -> Iterator[tuple[Any, Binding]]:
            for binding in self.build.rows(context):
                key = build_fn(build_scopes.scope_for(binding))
                if key is NULL:
                    continue
                yield key, binding

        build_stream = keyed_build()
        pending = next(build_stream, None)
        group_key: Any = None
        group: list[Binding] = []
        have_group = False
        for probe_binding in self.probe.rows(context):
            key = probe_fn(probe_scopes.scope_for(probe_binding))
            if key is NULL:
                continue
            if not have_group or group_key != key:
                # Advance the build stream to the first key >= the probe
                # key, then buffer that key's whole group (both streams
                # ascend, so skipped build groups can never match again).
                while pending is not None and pending[0] < key:
                    pending = next(build_stream, None)
                group = []
                while pending is not None and pending[0] == key:
                    group.append(pending[1])
                    pending = next(build_stream, None)
                group_key = key
                have_group = True
            for build_binding in group:
                merged = {**build_binding, **probe_binding}
                if residual is not None:
                    if residual(merged_scopes.scope_for(merged)) is not True:
                        continue
                yield self._emit(merged)

    def details(self) -> str:
        build = ", ".join(expression.sql() for expression in self.build_keys)
        probe = ", ".join(expression.sql() for expression in self.probe_keys)
        return f"merge({build}) = ({probe})"

    def estimated_rows(self) -> int:
        return max(self.build.estimated_rows(), self.probe.estimated_rows())


# ---------------------------------------------------------------------------
# Row-stream transforms
# ---------------------------------------------------------------------------

class FilterOp(PhysicalOperator):
    """Residual predicate evaluation."""

    label = "Filter"

    def __init__(self, child: PhysicalOperator, predicate: Expression):
        super().__init__()
        self.child = child
        self.predicate = predicate

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Binding]:
        predicate = context.compile(self.predicate)
        scopes = _BindingScopes()
        for binding in self.child.rows(context):
            if predicate(scopes.scope_for(binding)) is True:
                yield self._emit(binding)

    def apply_batch(self, batch: ColumnBatch,
                    predicate_fn: VectorExpression) -> ColumnBatch:
        """Narrow a batch's selection vector with this filter's predicate."""
        batch.selection = predicate_fn(batch, batch.selection)
        self.actual_rows += len(batch.selection)
        return batch

    def details(self) -> str:
        return self.predicate.sql()

    def scale_rows(self, child_rows: int) -> int:
        return max(1, child_rows // 3)

    def estimated_rows(self) -> int:
        return self.scale_rows(self.child.estimated_rows())


# -- the vectorized single-table pipeline -----------------------------------

def _zone_predicates(enabled: bool, *fns) -> list:
    """Collect the compiled zone-map forms riding on vector predicates.

    Each entry maps a sealed segment to an ``(any_possible, all_match)``
    verdict; a predicate outside the zone-analyzable subset simply
    carries no zone form and contributes nothing (conservative: the
    segment is scanned).
    """
    if not enabled:
        return []
    zones = []
    for fn in fns:
        zone = getattr(fn, "zone_predicate", None) if fn is not None else None
        if zone is not None:
            zones.append(zone)
    return zones


def _zone_skips(zone_fns, segment) -> bool:
    """True when any predicate's zone verdict proves the segment empty."""
    return any(not zone_fn(segment)[0] for zone_fn in zone_fns)


def _apply_scan_predicate(predicate_fn, batch: ColumnBatch, selection: list,
                          segment) -> list:
    """Narrow ``selection`` by the compiled scan predicate.

    On a sealed segment, a predicate whose generated loop reads exactly
    one column runs over that column's *dictionary* when it is
    dict/RLE-encoded — one evaluation per distinct value instead of per
    row — and rows are then filtered by code, which is exactly
    equivalent to decode-then-filter.
    """
    if segment is not None:
        columns = getattr(predicate_fn, "vector_columns", None)
        if columns is not None and len(columns) == 1:
            filtered = segment.code_filter(columns[0], predicate_fn, selection,
                                           batch.binding_name)
            if filtered is not None:
                return filtered
    return predicate_fn(batch, selection)


def _vector_chain(context: ExecutionContext, child: PhysicalOperator
                  ) -> Optional[tuple["TableScan", Optional[VectorExpression],
                                      list[tuple["FilterOp", VectorExpression]], int]]:
    """Resolve ``child`` as ``[FilterOp…] → TableScan`` over columnar storage.

    Vector-compiles the scan predicate and every filter; returns
    ``(scan, scan_predicate, filter_fns, compiled_count)`` or None when
    the shape, the storage layout or any predicate disqualifies the
    chain.  ``compiled_count`` is added to ``exprs_compiled`` by the
    caller only once the whole pipeline (including its projections)
    compiles, mirroring the fused path's accounting.
    """
    filters: list[FilterOp] = []
    node: PhysicalOperator = child
    while isinstance(node, FilterOp):
        filters.append(node)
        node = node.child
    if not isinstance(node, TableScan):
        return None
    scan = node
    table = scan.table
    if table.storage.kind != "column":
        return None
    compiled_count = 0
    try:
        scan_predicate = None
        if scan.predicate is not None:
            scan_predicate = context.compile_vector_predicate(
                scan.predicate, table, scan.binding_name)
            compiled_count += 1
        filter_fns: list[tuple[FilterOp, VectorExpression]] = []
        for filter_op in reversed(filters):
            filter_fns.append(
                (filter_op,
                 context.compile_vector_predicate(filter_op.predicate, table,
                                                  scan.binding_name)))
            compiled_count += 1
    except VectorCompileError:
        return None
    return scan, scan_predicate, filter_fns, compiled_count


def _drive_batches(context: ExecutionContext, scan: "TableScan",
                   scan_predicate: Optional[VectorExpression],
                   filter_fns: Sequence[tuple["FilterOp", VectorExpression]],
                   runtime_filter: Optional["RuntimeJoinFilter"] = None
                   ) -> Iterator[ColumnBatch]:
    """Pull batches through the scan and its filters, skipping empty ones."""
    if _parallel_eligible(context, scan):
        for batch, _payload in _parallel_morsels(context, scan, scan_predicate,
                                                 filter_fns,
                                                 runtime_filter=runtime_filter):
            yield batch
        return
    zone_fns = _zone_predicates(scan.use_zone_maps, scan_predicate,
                                *[fn for _op, fn in filter_fns])
    for batch in scan.batches(context, scan_predicate, zone_fns=zone_fns,
                              runtime_filter=runtime_filter):
        for filter_op, predicate_fn in filter_fns:
            if not batch.selection:
                break
            filter_op.apply_batch(batch, predicate_fn)
        if batch.selection:
            yield batch


# -- the morsel-parallel scan driver -----------------------------------------

def _parallel_eligible(context: ExecutionContext, scan: "TableScan") -> bool:
    """Runtime re-check of the planner's parallel marking (advisory flags)."""
    return (context.parallelism > 1 and scan.workers > 1
            and scan.table.storage.kind == "column")


def _parallel_morsels(context: ExecutionContext, scan: "TableScan",
                      scan_predicate: Optional[VectorExpression],
                      filter_fns: Sequence[tuple["FilterOp", VectorExpression]],
                      payload_fn=None,
                      runtime_filter: Optional["RuntimeJoinFilter"] = None
                      ) -> Iterator[tuple[ColumnBatch, Any]]:
    """Run a scan chain's morsels on the shared pool, gathering in order.

    Each morsel is one scan unit — a sealed segment or the append tail,
    which the storage aligns with the ``BATCH_ROWS`` morsel size; its
    task — live-mask lookup against a snapshot taken once up front, the
    simulated I/O stall, the vectorized scan predicate and every
    filter, then the optional ``payload_fn`` over the filtered batch —
    runs entirely on a worker thread.  Workers touch no shared mutable
    state (compiled vector closures only read the buffers — sealed
    segments decode into a per-task cache; each morsel owns its batch),
    so probes and filters are lock-free.

    Zone-map skipping composes with the pool on the coordinator side:
    sealed segments the compiled zone predicates prove empty are never
    submitted as tasks, so they pay neither worker time nor simulated
    I/O.  A ``runtime_filter`` (the key summary of a finished hash-join
    build) prunes the same way — its range verdict runs before
    dispatch, so a disproved segment is never charged — and its Bloom
    filter thins each surviving morsel on the worker, with the pruned
    counts folded in by the coordinator alone.

    The coordinator consumes results strictly in morsel order, folding
    the per-morsel counters into the shared statistics and the
    operators' actuals in that same order, which makes the yielded
    ``(batch, payload)`` stream — and every counter — byte-identical to
    the serial driver's, whatever the worker grant was.

    Empty morsels (no live rows, or nothing survived the filters) are
    dropped exactly as the serial driver drops them.
    """
    from .parallel import get_worker_pool

    storage = scan.table.storage
    row_bytes = int(scan.table.average_row_bytes())
    binding_name = scan.binding_name
    mbps = context.simulated_scan_mbps
    units = storage.scan_units()
    mask = storage.live_mask_snapshot()
    predicates = [fn for _op, fn in filter_fns]
    zone_fns = _zone_predicates(scan.use_zone_maps, scan_predicate, *predicates)
    statistics = context.statistics

    tasks = []
    for unit in units:
        if (unit.segment is not None and zone_fns
                and _zone_skips(zone_fns, unit.segment)):
            statistics.segments_skipped += 1
            scan.actual_segments_skipped += 1
            continue
        if (unit.segment is not None and runtime_filter is not None
                and runtime_filter.prunes_segment(unit.segment)):
            runtime_filter.note_segment(statistics)
            continue
        tasks.append(unit)

    def run_unit(unit):
        selection = unit.selection(mask=mask)
        if not selection:
            return None
        scanned = len(selection)
        io_seconds = 0.0
        if mbps:
            io_seconds = (scanned * row_bytes) / (mbps * 1.0e6)
            time.sleep(io_seconds)
        batch = ColumnBatch(unit.columns(), unit.masks(), selection,
                            binding_name)
        if scan_predicate is not None:
            batch.selection = _apply_scan_predicate(scan_predicate, batch,
                                                    selection, unit.segment)
        counts = [len(batch.selection)]
        pruned = 0
        if runtime_filter is not None and batch.selection:
            kept = runtime_filter.filter_rows(batch, batch.selection)
            pruned = len(batch.selection) - len(kept)
            batch.selection = kept
        for predicate_fn in predicates:
            if not batch.selection:
                break
            batch.selection = predicate_fn(batch, batch.selection)
            counts.append(len(batch.selection))
        payload = (payload_fn(batch) if payload_fn is not None and batch.selection
                   else None)
        return batch, scanned, counts, io_seconds, pruned, payload

    pool = get_worker_pool()
    with pool.lease(scan.workers) as lease:
        statistics.parallel_workers = max(statistics.parallel_workers,
                                          lease.workers, 1)
        for unit, result in zip(tasks, lease.ordered_map(run_unit, tasks)):
            if result is None:
                continue
            batch, scanned, counts, io_seconds, pruned, payload = result
            if unit.sealed:
                statistics.segments_scanned += 1
                scan.actual_segments_scanned += 1
            statistics.rows_scanned += scanned
            statistics.bytes_scanned += scanned * row_bytes
            statistics.batches_processed += 1
            statistics.batch_rows += scanned
            statistics.morsels_dispatched += 1
            statistics.simulated_io_seconds += io_seconds
            scan.actual_rows += counts[0]
            scan.actual_morsels += 1
            if runtime_filter is not None:
                runtime_filter.note_rows(statistics, pruned)
            for (filter_op, _fn), passed in zip(filter_fns, counts[1:]):
                filter_op.actual_rows += passed
            if batch.selection:
                yield batch, payload


# -- the vectorized hash-join pipeline ---------------------------------------

#: Binding name of gathered join-output batches (their columns are keyed
#: by the qualified ``"binding.column"`` name instead).
JOIN_BATCH_BINDING = "#join"


class _BloomFilter:
    """A split-bit Bloom filter over a hash join's build keys.

    A ``bytearray`` holds the bit array (~8 bits per key, two probe
    positions per key derived from the single ``hash()`` by a
    Fibonacci-style remix), so inserts and membership tests are O(1)
    byte operations whatever the build size — a single big-int bit
    array would copy the whole array on every shift.  Like every Bloom
    filter it can report false positives — those rows are still
    dropped later by the probe's exact hash-table lookup — but never
    false negatives, which is what makes pre-materialization row
    pruning sound.
    """

    __slots__ = ("bits", "mask")

    #: Odd 64-bit multiplier (2^64 / golden ratio) used to derive the
    #: second, independent probe position from the first hash.
    _REMIX = 0x9E3779B97F4A7C15

    def __init__(self, keys):
        target = max(64, 8 * len(keys))
        size = 64
        while size < target:
            size <<= 1
        self.mask = size - 1
        mask = self.mask
        remix = self._REMIX
        bits = bytearray(size >> 3)
        for key in keys:
            h = hash(key)
            first = h & mask
            second = (h * remix >> 17) & mask
            bits[first >> 3] |= 1 << (first & 7)
            bits[second >> 3] |= 1 << (second & 7)
        self.bits = bits

    def __contains__(self, key) -> bool:
        h = hash(key)
        bits = self.bits
        mask = self.mask
        first = h & mask
        if not bits[first >> 3] >> (first & 7) & 1:
            return False
        second = (h * self._REMIX >> 17) & mask
        return bool(bits[second >> 3] >> (second & 7) & 1)


class RuntimeJoinFilter:
    """Sideways information passing: a finished build pruning its probe.

    Built by the batch join driver the moment the hash-join build side
    completes, and handed to the probe-side :class:`TableScan`.  Two
    layers, both *sound* — they only ever drop work the probe's exact
    hash lookup would drop anyway, so results are byte-identical with
    the filter on or off:

    * **range** — when the (single) probe key is a bare column of a
      zone-mapped columnar table and every build key is numeric, the
      build keys' min/max disproves whole sealed segments before they
      are read (or, on the parallel path, before their morsel is even
      dispatched).  Tombstones keep this sound: zone bounds cover a
      superset of the live rows.  An empty build prunes every sealed
      segment outright — nothing can join.
    * **bloom** — a :class:`_BloomFilter` over the build keys thins
      each surviving batch right after the scan predicate, before the
      join gathers any columns.

    The filter mutates shared counters only through ``note_*``, which
    the scan/coordinator calls serially — workers only ever *read* it.
    """

    __slots__ = ("join", "scan", "key_fn", "bloom", "zone_fn", "empty")

    def __init__(self, join: "HashJoin", scan: "TableScan", key_fn,
                 bloom: Optional[_BloomFilter], zone_fn, empty: bool):
        self.join = join
        self.scan = scan
        self.key_fn = key_fn
        self.bloom = bloom
        self.zone_fn = zone_fn
        self.empty = empty

    def prunes_segment(self, segment) -> bool:
        if self.empty:
            return True
        zone_fn = self.zone_fn
        return zone_fn is not None and not zone_fn(segment)[0]

    def filter_rows(self, batch: ColumnBatch, selection: list[int]) -> list[int]:
        if self.empty:
            return []
        bloom = self.bloom
        keys = self.key_fn(batch, selection)
        return [position for position, key in zip(selection, keys)
                if key in bloom]

    def note_segment(self, statistics: ExecutionStatistics) -> None:
        statistics.segments_skipped += 1
        statistics.runtime_filter_segments_pruned += 1
        self.scan.actual_segments_skipped += 1
        self.scan.actual_runtime_segments_pruned += 1
        self.join.runtime_segments_pruned += 1

    def note_rows(self, statistics: ExecutionStatistics, pruned: int) -> None:
        if not pruned:
            return
        statistics.runtime_filter_rows_pruned += pruned
        self.scan.actual_runtime_rows_pruned += pruned
        self.join.runtime_rows_pruned += pruned


def _runtime_join_filter(join: "HashJoin", hash_table: dict,
                         probe_chain: tuple,
                         probe_key_fns: Sequence[tuple[VectorExpression,
                                                       Optional[str]]]
                         ) -> Optional["RuntimeJoinFilter"]:
    """Derive the probe-side filter from a finished build, or None.

    Only single-key joins are summarized (a compound key's range per
    component would still be sound but is not worth the bookkeeping),
    and the range layer additionally requires a bare numeric probe-key
    column — NaN build keys disable it, since NaN poisons min/max.
    """
    if not getattr(join, "runtime_filter_enabled", False):
        return None
    if len(probe_key_fns) != 1 or len(join.probe_keys) != 1:
        return None
    scan = probe_chain[0]
    key_fn = probe_key_fns[0][0]
    keys = hash_table.keys()
    empty = not hash_table
    bloom = None if empty else _BloomFilter(keys)
    zone_fn = None
    key_expr = join.probe_keys[0]
    if (not empty and scan.use_zone_maps
            and isinstance(key_expr, ColumnRef)
            and all(isinstance(key, (int, float)) and not isinstance(key, bool)
                    and key == key for key in keys)):
        zone_fn = runtime_range_zone(key_expr.name.lower(),
                                     min(keys), max(keys))
    join.runtime_filter_kind = ("range+bloom" if empty or zone_fn is not None
                                else "bloom")
    return RuntimeJoinFilter(join, scan, key_fn, bloom, zone_fn, empty)


class _BatchJoinSource:
    """Drives a :class:`HashJoin` batch-at-a-time over columnar inputs.

    The build side's batches are consumed once: join-key columns feed a
    hash table of build-row ordinals while every column a downstream
    expression needs is gathered into one growing list per column.  The
    probe side then streams; each probe batch's matches are gathered
    into a fresh :class:`ColumnBatch` whose columns are keyed
    ``"binding.column"`` so the join-schema compiled expressions of the
    residual, the filters above the join and the consuming
    projection/aggregation all run as generated loops.

    The probe side is always a scan chain; the build side is either a
    scan chain (``build_chain``) or another :class:`_BatchJoinSource`
    (``nested_build``), which is how a left-deep or bushy join tree
    stays on the batch path: the inner join's gathered output batches —
    already keyed ``"binding.column"`` — feed the outer build exactly
    like scan batches feed a single-table build.

    Once the build finishes, its key set is summarized into a
    :class:`RuntimeJoinFilter` (when the planner enabled them) and
    pushed into the probe scan, so segments and rows that cannot match
    any build key are never read, charged or gathered.
    """

    def __init__(self, join: "HashJoin",
                 build_chain: Optional[tuple], probe_chain: tuple,
                 build_key_fns: Sequence[tuple[VectorExpression, Optional[str]]],
                 probe_key_fns: Sequence[tuple[VectorExpression, Optional[str]]],
                 residual_fn: Optional[VectorExpression],
                 filter_fns: Sequence[tuple["FilterOp", VectorExpression]],
                 schema: dict[str, "Table"],
                 nested_build: Optional[tuple["_BatchJoinSource",
                                              set[str]]] = None):
        self.join = join
        self.build_chain = build_chain
        self.probe_chain = probe_chain
        self.build_key_fns = list(build_key_fns)
        self.probe_key_fns = list(probe_key_fns)
        self.residual_fn = residual_fn
        self.filter_fns = list(filter_fns)
        self.schema = schema
        #: ``(inner source, its residual/filter/key column needs)``
        #: when the build side is itself a batch join.
        self.nested_build = nested_build
        self.probe_binding = probe_chain[0].binding_name.lower()

    def batches(self, context: ExecutionContext,
                needed: set[str]) -> Iterator[ColumnBatch]:
        probe_prefix = self.probe_binding + "."
        needed_build = sorted(key for key in needed
                              if not key.startswith(probe_prefix))
        needed_probe = sorted(key for key in needed
                              if key.startswith(probe_prefix))
        hash_table, build_store = self._build(context, needed_build)
        runtime_filter = _runtime_join_filter(self.join, hash_table,
                                              self.probe_chain,
                                              self.probe_key_fns)
        join = self.join
        # Row-view key fallbacks (tag None) may produce NULLs, which
        # never join — mirror the row path's NULL-key skip exactly.
        probe_null_possible = any(tag is None for _fn, tag in self.probe_key_fns)
        probe_fns = [fn for fn, _tag in self.probe_key_fns]
        single_key = len(probe_fns) == 1
        residual_fn = self.residual_fn
        filter_predicates = [fn for _op, fn in self.filter_fns]

        def probe_batch(batch: ColumnBatch):
            """One probe morsel: lock-free lookups into the finished
            (read-only) hash table, gather, residual and filters.  Safe
            to run on a worker: it reads only the shared table/store and
            this morsel's own batch."""
            selection = batch.selection
            key_columns = [fn(batch, selection) for fn in probe_fns]
            probe_positions: list[int] = []
            build_ordinals: list[int] = []
            if single_key:
                keys: Sequence = key_columns[0]
            else:
                keys = list(zip(*key_columns))
            for position, key in zip(selection, keys):
                if probe_null_possible and (
                        key is NULL if single_key
                        else any(part is NULL for part in key)):
                    continue
                matches = hash_table.get(key)
                if matches is not None:
                    for ordinal in matches:
                        probe_positions.append(position)
                        build_ordinals.append(ordinal)
            if not probe_positions:
                return None
            columns: dict[str, list] = {}
            for key_name in needed_probe:
                buffer = batch.columns[key_name.split(".", 1)[1]]
                columns[key_name] = [buffer[i] for i in probe_positions]
            for key_name in needed_build:
                store = build_store[key_name]
                columns[key_name] = [store[i] for i in build_ordinals]
            out = ColumnBatch(columns, {}, list(range(len(probe_positions))),
                              JOIN_BATCH_BINDING)
            if residual_fn is not None:
                out.selection = residual_fn(out, out.selection)
            joined = len(out.selection)
            counts: list[int] = []
            for predicate_fn in filter_predicates:
                if not out.selection:
                    break
                out.selection = predicate_fn(out, out.selection)
                counts.append(len(out.selection))
            return out, joined, counts

        probe_scan = self.probe_chain[0]
        if _parallel_eligible(context, probe_scan):
            morsels = _parallel_morsels(context, *self.probe_chain[:3],
                                        payload_fn=probe_batch,
                                        runtime_filter=runtime_filter)
            for _batch, probed in morsels:
                join.actual_morsels += 1
                if probed is None:
                    continue
                out, joined, counts = probed
                join.actual_rows += joined
                for (filter_op, _fn), passed in zip(self.filter_fns, counts):
                    filter_op.actual_rows += passed
                if out.selection:
                    yield out
            return
        for batch in _drive_batches(context, *self.probe_chain[:3],
                                    runtime_filter=runtime_filter):
            probed = probe_batch(batch)
            if probed is None:
                continue
            out, joined, counts = probed
            join.actual_rows += joined
            for (filter_op, _fn), passed in zip(self.filter_fns, counts):
                filter_op.actual_rows += passed
            if out.selection:
                yield out

    def _build(self, context: ExecutionContext, needed_build: Sequence[str]
               ) -> tuple[dict, dict[str, list]]:
        if self.nested_build is not None:
            return self._build_nested(context, needed_build)
        if _parallel_eligible(context, self.build_chain[0]):
            return self._build_parallel(context, needed_build)
        build_fns = [fn for fn, _tag in self.build_key_fns]
        null_possible = any(tag is None for _fn, tag in self.build_key_fns)
        single_key = len(build_fns) == 1
        hash_table: dict = {}
        build_store: dict[str, list] = {key: [] for key in needed_build}
        gathered = [(build_store[key], key.split(".", 1)[1]) for key in needed_build]
        ordinal = 0
        for batch in _drive_batches(context, *self.build_chain[:3]):
            selection = batch.selection
            key_columns = [fn(batch, selection) for fn in build_fns]
            for store, column in gathered:
                buffer = batch.columns[column]
                store.extend(buffer[i] for i in selection)
            if single_key:
                keys: Sequence = key_columns[0]
            else:
                keys = list(zip(*key_columns))
            for key in keys:
                if null_possible and (
                        key is NULL if single_key
                        else any(part is NULL for part in key)):
                    ordinal += 1
                    continue
                bucket = hash_table.get(key)
                if bucket is None:
                    hash_table[key] = [ordinal]
                else:
                    bucket.append(ordinal)
                ordinal += 1
        return hash_table, build_store

    def _build_nested(self, context: ExecutionContext,
                      needed_build: Sequence[str]
                      ) -> tuple[dict, dict[str, list]]:
        """Consume an inner batch join as this join's build side.

        Identical to the serial single-table build except that the
        incoming batches are the inner join's gathered output — columns
        already keyed ``"binding.column"`` — so the store gathers by
        qualified key and the build-key closures are join-schema
        compiled.  The inner source parallelizes its *own* probe; its
        ordered batch stream equals its serial one, so ordinals (and
        with them this join's output order) are unchanged.
        """
        source, base_needed = self.nested_build
        build_fns = [fn for fn, _tag in self.build_key_fns]
        null_possible = any(tag is None for _fn, tag in self.build_key_fns)
        single_key = len(build_fns) == 1
        hash_table: dict = {}
        build_store: dict[str, list] = {key: [] for key in needed_build}
        gathered = [(build_store[key], key) for key in needed_build]
        ordinal = 0
        for batch in source.batches(context, set(base_needed) | set(needed_build)):
            selection = batch.selection
            key_columns = [fn(batch, selection) for fn in build_fns]
            for store, column in gathered:
                buffer = batch.columns[column]
                store.extend(buffer[i] for i in selection)
            if single_key:
                keys: Sequence = key_columns[0]
            else:
                keys = list(zip(*key_columns))
            for key in keys:
                if null_possible and (
                        key is NULL if single_key
                        else any(part is NULL for part in key)):
                    ordinal += 1
                    continue
                bucket = hash_table.get(key)
                if bucket is None:
                    hash_table[key] = [ordinal]
                else:
                    bucket.append(ordinal)
                ordinal += 1
        return hash_table, build_store

    def _build_parallel(self, context: ExecutionContext,
                        needed_build: Sequence[str]
                        ) -> tuple[dict, dict[str, list]]:
        """Partitioned parallel build: per-morsel hash fragments.

        Each worker builds a *local* hash fragment over its morsel —
        local ordinals, locally gathered store columns — and the
        coordinator merges the fragments in morsel order, shifting each
        fragment's ordinals by the running slot count.  Because morsel
        order equals scan order and every NULL key still consumes a
        slot, the merged table and store are exactly what the serial
        single-pass build produces, so probe output (and its order) is
        unchanged.
        """
        build_fns = [fn for fn, _tag in self.build_key_fns]
        null_possible = any(tag is None for _fn, tag in self.build_key_fns)
        single_key = len(build_fns) == 1
        columns = [key.split(".", 1)[1] for key in needed_build]

        def build_fragment(batch: ColumnBatch):
            selection = batch.selection
            key_columns = [fn(batch, selection) for fn in build_fns]
            stores = []
            for column in columns:
                buffer = batch.columns[column]
                stores.append([buffer[i] for i in selection])
            if single_key:
                keys: Sequence = key_columns[0]
            else:
                keys = list(zip(*key_columns))
            local_table: dict = {}
            slot = 0
            for key in keys:
                if null_possible and (
                        key is NULL if single_key
                        else any(part is NULL for part in key)):
                    slot += 1
                    continue
                bucket = local_table.get(key)
                if bucket is None:
                    local_table[key] = [slot]
                else:
                    bucket.append(slot)
                slot += 1
            return local_table, stores, slot

        hash_table: dict = {}
        build_store: dict[str, list] = {key: [] for key in needed_build}
        offset = 0
        morsels = _parallel_morsels(context, *self.build_chain[:3],
                                    payload_fn=build_fragment)
        for _batch, fragment in morsels:
            if fragment is None:
                continue
            local_table, stores, slots = fragment
            for key_name, values in zip(needed_build, stores):
                build_store[key_name].extend(values)
            for key, locals_ in local_table.items():
                bucket = hash_table.get(key)
                if bucket is None:
                    hash_table[key] = [slot + offset for slot in locals_]
                else:
                    bucket.extend(slot + offset for slot in locals_)
            offset += slots
        return hash_table, build_store


def _join_vector_source(context: ExecutionContext, child: PhysicalOperator
                        ) -> Optional[tuple["_BatchJoinSource", set[str], int]]:
    """Resolve ``child`` as ``[FilterOp…] → HashJoin`` over columnar inputs.

    The probe input must be a ``[FilterOp…] → TableScan`` chain over a
    column store; the build input may be such a chain *or* another
    resolvable batch hash join (resolved recursively), which keeps
    multi-way join trees on the batch path.  All bindings must be
    distinct, the join keys must vector-compile against their own side,
    and the residual plus every filter above the join must compile
    under the join schema.  Returns ``(source, needed_columns,
    compiled_count)`` or None (the caller falls back to the row path).
    """
    filters: list[FilterOp] = []
    node: PhysicalOperator = child
    while isinstance(node, FilterOp):
        filters.append(node)
        node = node.child
    if not isinstance(node, HashJoin):
        return None
    join = node
    probe_chain = _vector_chain(context, join.probe)
    if probe_chain is None:
        return None
    probe_scan = probe_chain[0]
    build_chain = _vector_chain(context, join.build)
    nested = None
    if build_chain is not None:
        build_scan = build_chain[0]
        build_schema = {build_scan.binding_name: build_scan.table}
        compiled_count = build_chain[3] + probe_chain[3]
    else:
        resolved = _join_vector_source(context, join.build)
        if resolved is None:
            return None
        nested_source, nested_needed, nested_compiled = resolved
        nested = (nested_source, set(nested_needed))
        build_schema = dict(nested_source.schema)
        compiled_count = nested_compiled + probe_chain[3]
    build_bindings = {binding.lower() for binding in build_schema}
    if probe_scan.binding_name.lower() in build_bindings:
        return None
    schema = dict(build_schema)
    schema[probe_scan.binding_name] = probe_scan.table
    needed: set[str] = set()
    try:
        build_key_fns = []
        for expression in join.build_keys:
            if nested is None:
                fn, tag = context.compile_vector_projection(
                    expression, build_scan.table, build_scan.binding_name)
            else:
                fn, tag, keys = context.compile_join_vector_projection(
                    expression, build_schema)
                nested[1].update(keys)
            build_key_fns.append((fn, tag))
            compiled_count += 1
        probe_key_fns = []
        for expression in join.probe_keys:
            fn, tag = context.compile_vector_projection(
                expression, probe_scan.table, probe_scan.binding_name)
            probe_key_fns.append((fn, tag))
            compiled_count += 1
        residual_fn = None
        if join.residual is not None:
            residual_fn, keys = context.compile_join_vector_predicate(
                join.residual, schema)
            needed.update(keys)
            compiled_count += 1
        filter_fns: list[tuple[FilterOp, VectorExpression]] = []
        for filter_op in reversed(filters):
            fn, keys = context.compile_join_vector_predicate(
                filter_op.predicate, schema)
            filter_fns.append((filter_op, fn))
            needed.update(keys)
            compiled_count += 1
    except VectorCompileError:
        return None
    source = _BatchJoinSource(join, build_chain, probe_chain, build_key_fns,
                              probe_key_fns, residual_fn, filter_fns, schema,
                              nested_build=nested)
    return source, needed, compiled_count


class SortOp(PhysicalOperator):
    """Full sort of the binding stream on a list of key expressions."""

    label = "Sort"

    def __init__(self, child: PhysicalOperator,
                 keys: Sequence[tuple[Expression, bool]]):
        super().__init__()
        self.child = child
        self.keys = list(keys)

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Binding]:
        key_fns = [(_compile_projected(expression, context), descending)
                   for expression, descending in self.keys]
        scopes = _BindingScopes()
        materialised: list[tuple[list, Binding]] = []
        for binding in self.child.rows(context):
            scope = scopes.scope_for(binding)
            key = [_SortKey(key_fn(scope), descending)
                   for key_fn, descending in key_fns]
            materialised.append((key, binding))
        materialised.sort(key=lambda pair: pair[0])
        for _key, binding in materialised:
            yield self._emit(binding)

    def details(self) -> str:
        return ", ".join(
            f"{expression.sql()}{' DESC' if descending else ''}"
            for expression, descending in self.keys)

    def estimated_rows(self) -> int:
        return self.child.estimated_rows()


class _SortKey:
    """Orders values with NULLs first and mixed types safely; supports DESC."""

    __slots__ = ("value", "descending")

    def __init__(self, value: Any, descending: bool):
        self.value = value
        self.descending = descending

    def _rank(self) -> tuple:
        value = self.value
        if value is NULL:
            rank = (0, 0, "")
        elif isinstance(value, bool):
            rank = (1, int(value), "")
        elif isinstance(value, (int, float)):
            rank = (1, value, "")
        elif isinstance(value, str):
            rank = (2, 0, value.lower())
        else:
            rank = (3, 0, str(value))
        return rank

    def __lt__(self, other: "_SortKey") -> bool:
        if self.descending:
            return other._rank() < self._rank()
        return self._rank() < other._rank()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SortKey) and self._rank() == other._rank()


class TopOp(PhysicalOperator):
    """TOP n / the public server's row limit."""

    label = "Top"

    def __init__(self, child: PhysicalOperator, count: int):
        super().__init__()
        self.child = child
        self.count = count

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Binding]:
        produced = 0
        for binding in self.child.rows(context):
            if produced >= self.count:
                break
            produced += 1
            yield self._emit(binding)

    def details(self) -> str:
        return f"TOP {self.count}"

    def scale_rows(self, child_rows: int) -> int:
        return min(self.count, child_rows)

    def estimated_rows(self) -> int:
        return self.scale_rows(self.child.estimated_rows())


class GroupAggregate(PhysicalOperator):
    """Hash aggregation over grouping expressions.

    Produces bindings with a single synthetic relation whose row maps
    each group-by expression's SQL text and each aggregate's result key
    to its value, so the select list and HAVING clause evaluate against
    it transparently.
    """

    label = "Aggregate"

    #: Parallel merge strategy the planner proved safe: ``"partial"``
    #: merges per-morsel :meth:`_AggState.partial_state` fragments (only
    #: when the merge is provably bit-exact — the same associativity
    #: rules the cluster executor applies across shards); ``"ordered"``
    #: keeps the fold on the coordinator in morsel order (order-sensitive
    #: float SUM/AVG, DISTINCT, unproven integer sums).
    parallel_mode = "ordered"

    #: Planner proof (the CBO's ``_sum_stays_exact``) that every SUM/AVG
    #: argument is an exact-integer column bounded below 2**53, letting
    #: the scalar fold answer sums from zone-map integer totals on
    #: fully-matched segments without changing a single bit.
    zone_exact_sums = False

    def __init__(self, child: PhysicalOperator, group_by: Sequence[Expression],
                 aggregates: Sequence[AggregateCall], binding_name: str = OUTPUT_BINDING):
        super().__init__()
        self.child = child
        self.group_by = list(group_by)
        # The same aggregate may appear in both the select list and HAVING;
        # keep one state per distinct result key so it is not updated twice.
        deduplicated: dict[str, AggregateCall] = {}
        for aggregate in aggregates:
            deduplicated.setdefault(aggregate.result_key(), aggregate)
        self.aggregates = list(deduplicated.values())
        self.binding_name = binding_name

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Binding]:
        if self.vectorized and context.compile_enabled:
            vectorized = self._vectorized_rows(context)
            if vectorized is not None:
                yield from vectorized
                return
        group_fns = [context.compile(expression) for expression in self.group_by]
        argument_fns = [(aggregate.result_key(),
                         context.compile(aggregate.argument)
                         if aggregate.argument is not None else None)
                        for aggregate in self.aggregates]
        scopes = _BindingScopes()
        groups: dict[tuple, dict[str, Any]] = {}
        order: list[tuple] = []
        for binding in self.child.rows(context):
            scope = scopes.scope_for(binding)
            key = tuple(group_fn(scope) for group_fn in group_fns)
            state = groups.get(key)
            if state is None:
                state = {"__count__": 0, "values": {agg.result_key(): _AggState(agg)
                                                    for agg in self.aggregates}}
                groups[key] = state
                order.append(key)
            state["__count__"] += 1
            values = state["values"]
            for result_key, argument_fn in argument_fns:
                argument = argument_fn(scope) if argument_fn is not None else 1
                values[result_key].update(argument)
        if not groups and not self.group_by:
            # Aggregates over an empty input still produce one row (count=0, others NULL).
            empty = {aggregate.result_key(): _AggState(aggregate).result()
                     for aggregate in self.aggregates}
            row = dict(empty)
            yield self._emit({self.binding_name: row})
            return
        for key in order:
            state = groups[key]
            row: dict[str, Any] = {}
            for expression, value in zip(self.group_by, key):
                row[_group_key_name(expression)] = value
            for aggregate in self.aggregates:
                row[aggregate.result_key()] = state["values"][aggregate.result_key()].result()
            yield self._emit({self.binding_name: row})

    # -- the vectorized aggregation path -----------------------------------

    def _vectorized_rows(self, context: ExecutionContext) -> Optional[Iterator[Binding]]:
        """Batch aggregation over a columnar scan or hash-join chain, or None."""
        chain = _vector_chain(context, self.child)
        if chain is not None:
            scan, scan_predicate, filter_fns, compiled_count = chain
            table, binding_name = scan.table, scan.binding_name
            try:
                group_fns = []
                for expression in self.group_by:
                    fn, _tag = context.compile_vector_projection(expression, table,
                                                                 binding_name)
                    group_fns.append(fn)
                    compiled_count += 1
                argument_fns: list[tuple[str, Optional[VectorExpression],
                                         Optional[str]]] = []
                for aggregate in self.aggregates:
                    if aggregate.argument is None:
                        argument_fns.append((aggregate.result_key(), None, None))
                    else:
                        fn, tag = context.compile_vector_projection(
                            aggregate.argument, table, binding_name)
                        argument_fns.append((aggregate.result_key(), fn, tag))
                        compiled_count += 1
            except VectorCompileError:
                return None
            context.statistics.exprs_compiled += compiled_count
            if self.parallel_mode == "partial" and _parallel_eligible(context, scan):
                return self._run_parallel_partial(context, scan, scan_predicate,
                                                  filter_fns, group_fns,
                                                  argument_fns)
            if not self.group_by and not _parallel_eligible(context, scan):
                zone_run = self._run_zone_scalar(context, scan, scan_predicate,
                                                 filter_fns, argument_fns)
                if zone_run is not None:
                    return zone_run
            # "ordered" parallel mode needs no special casing: the
            # parallel driver inside _drive_batches gathers morsels in
            # scan order and the fold below runs on the coordinator,
            # which IS the ordered gather.
            batches = _drive_batches(context, scan, scan_predicate, filter_fns)
            return self._run_vectorized(context, batches, group_fns, argument_fns)
        joined = _join_vector_source(context, self.child)
        if joined is None:
            return None
        source, needed, compiled_count = joined
        try:
            group_fns = []
            for expression in self.group_by:
                fn, _tag, keys = context.compile_join_vector_projection(
                    expression, source.schema)
                group_fns.append(fn)
                needed.update(keys)
                compiled_count += 1
            argument_fns = []
            for aggregate in self.aggregates:
                if aggregate.argument is None:
                    argument_fns.append((aggregate.result_key(), None, None))
                else:
                    fn, tag, keys = context.compile_join_vector_projection(
                        aggregate.argument, source.schema)
                    argument_fns.append((aggregate.result_key(), fn, tag))
                    needed.update(keys)
                    compiled_count += 1
        except VectorCompileError:
            return None
        context.statistics.exprs_compiled += compiled_count
        return self._run_vectorized(context, source.batches(context, needed),
                                    group_fns, argument_fns)

    def _run_vectorized(self, context: ExecutionContext,
                        batches: Iterator[ColumnBatch],
                        group_fns: Sequence[VectorExpression],
                        argument_fns: Sequence[tuple[str, Optional[VectorExpression],
                                                     Optional[str]]]
                        ) -> Iterator[Binding]:
        if not self.group_by:
            states = {aggregate.result_key(): _AggState(aggregate)
                      for aggregate in self.aggregates}
            for batch in batches:
                selection = batch.selection
                for result_key, argument_fn, tag in argument_fns:
                    state = states[result_key]
                    if argument_fn is None:
                        state.update_count(len(selection))
                    else:
                        state.update_batch(argument_fn(batch, selection), tag)
            row = {result_key: state.result() for result_key, state in states.items()}
            yield self._emit({self.binding_name: row})
            return
        groups: dict[tuple, dict[str, _AggState]] = {}
        order: list[tuple] = []
        for batch in batches:
            selection = batch.selection
            key_columns = [group_fn(batch, selection) for group_fn in group_fns]
            value_columns = [(result_key,
                              argument_fn(batch, selection)
                              if argument_fn is not None else None)
                             for result_key, argument_fn, _tag in argument_fns]
            for position in range(len(selection)):
                key = tuple(column[position] for column in key_columns)
                states = groups.get(key)
                if states is None:
                    states = {aggregate.result_key(): _AggState(aggregate)
                              for aggregate in self.aggregates}
                    groups[key] = states
                    order.append(key)
                for result_key, column in value_columns:
                    states[result_key].update(
                        1 if column is None else column[position])
        for key in order:
            states = groups[key]
            row = {}
            for expression, value in zip(self.group_by, key):
                row[_group_key_name(expression)] = value
            for aggregate in self.aggregates:
                row[aggregate.result_key()] = states[aggregate.result_key()].result()
            yield self._emit({self.binding_name: row})

    def _run_zone_scalar(self, context: ExecutionContext, scan: "TableScan",
                         scan_predicate: Optional[VectorExpression],
                         filter_fns: Sequence[tuple["FilterOp",
                                                    VectorExpression]],
                         argument_fns: Sequence[tuple[str,
                                                      Optional[VectorExpression],
                                                      Optional[str]]]
                         ) -> Optional[Iterator[Binding]]:
        """Scalar aggregation that answers segments from zone maps, or None.

        A sealed segment that every predicate conjunct proves *fully
        matched* — and that carries no tombstoned rows — contributes
        COUNT/MIN/MAX (and, when the planner proved the sum exact via
        :attr:`zone_exact_sums`, SUM/AVG) straight from its zone map,
        without decoding a single value.  Zone minima/maxima use the
        same first-wins comparisons and zone integer sums the same
        exact arithmetic as :class:`_AggState`, so the merged fold is
        bit-identical to scanning.  Segments that cannot be answered
        (or skipped) are scanned with the ordinary per-batch
        accounting; the append tail always scans.
        """
        if not scan.use_zone_maps:
            return None
        specs: list[tuple[str, Optional[str], str,
                          Optional[VectorExpression], Optional[str]]] = []
        binding = scan.binding_name.lower()
        for aggregate, (result_key, argument_fn, tag) in zip(self.aggregates,
                                                             argument_fns):
            if aggregate.distinct:
                return None
            if aggregate.argument is None:
                specs.append((result_key, None, "count_star", argument_fn, tag))
                continue
            func = aggregate.func
            if func not in ("count", "min", "max", "sum", "avg"):
                return None
            argument = aggregate.argument
            if not isinstance(argument, ColumnRef):
                return None
            qualifier = (argument.qualifier or "").lower()
            if qualifier and qualifier != binding:
                return None
            column = argument.name.lower()
            if not scan.table.has_column(column):
                return None
            if func in ("sum", "avg") and (not self.zone_exact_sums
                                           or tag != "int"):
                # Only planner-proved exact-integer columns whose
                # codegen tag guarantees non-NULL, non-bool ints may be
                # answered from zone integer sums.
                return None
            specs.append((result_key, column, func, argument_fn, tag))
        predicate_fns = [scan_predicate] + [fn for _op, fn in filter_fns]
        zone_pairs = [getattr(fn, "zone_predicate", None)
                      for fn in predicate_fns if fn is not None]
        return self._zone_scalar_fold(context, scan, scan_predicate,
                                      filter_fns, specs, zone_pairs)

    def _zone_scalar_fold(self, context: ExecutionContext, scan: "TableScan",
                          scan_predicate: Optional[VectorExpression],
                          filter_fns: Sequence[tuple["FilterOp",
                                                     VectorExpression]],
                          specs, zone_fns) -> Iterator[Binding]:
        statistics = context.statistics
        storage = scan.table.storage
        row_bytes = int(scan.table.average_row_bytes())
        binding_name = scan.binding_name
        mbps = context.simulated_scan_mbps
        states: dict[str, _AggState] = {}
        for aggregate, spec in zip(self.aggregates, specs):
            states[spec[0]] = _AggState(aggregate)
        for unit in storage.scan_units():
            segment = unit.segment
            if segment is not None:
                verdicts = [(zone_fn(segment) if zone_fn is not None
                             else (True, False)) for zone_fn in zone_fns]
                if any(not any_possible for any_possible, _all in verdicts):
                    statistics.segments_skipped += 1
                    scan.actual_segments_skipped += 1
                    continue
                if (segment.tombstones == 0
                        and all(all_match for _any, all_match in verdicts)):
                    contributions = _zone_contributions(segment, specs)
                    if contributions is not None:
                        # Answered without touching the data: counts as
                        # a skipped segment (no rows or bytes scanned,
                        # no simulated I/O), but the operators' actual
                        # rows match the scan they replaced.
                        statistics.segments_skipped += 1
                        scan.actual_segments_skipped += 1
                        scan.actual_rows += segment.rows
                        for filter_op, _fn in filter_fns:
                            filter_op.actual_rows += segment.rows
                        for result_key, partial in contributions:
                            states[result_key].merge_partial(partial)
                        continue
            selection = unit.selection()
            if not selection:
                continue
            if segment is not None:
                statistics.segments_scanned += 1
                scan.actual_segments_scanned += 1
            statistics.rows_scanned += len(selection)
            statistics.bytes_scanned += len(selection) * row_bytes
            statistics.batches_processed += 1
            statistics.batch_rows += len(selection)
            if mbps:
                seconds = (len(selection) * row_bytes) / (mbps * 1.0e6)
                statistics.simulated_io_seconds += seconds
                time.sleep(seconds)
            batch = ColumnBatch(unit.columns(), unit.masks(), selection,
                                binding_name)
            if scan_predicate is not None:
                batch.selection = _apply_scan_predicate(scan_predicate, batch,
                                                        selection, segment)
            scan.actual_rows += len(batch.selection)
            for filter_op, predicate_fn in filter_fns:
                if not batch.selection:
                    break
                filter_op.apply_batch(batch, predicate_fn)
            if not batch.selection:
                continue
            selection = batch.selection
            for result_key, _column, _func, argument_fn, tag in specs:
                state = states[result_key]
                if argument_fn is None:
                    state.update_count(len(selection))
                else:
                    state.update_batch(argument_fn(batch, selection), tag)
        row = {result_key: state.result()
               for result_key, state in states.items()}
        yield self._emit({self.binding_name: row})

    def _run_parallel_partial(self, context: ExecutionContext, scan: "TableScan",
                              scan_predicate: Optional[VectorExpression],
                              filter_fns: Sequence[tuple["FilterOp",
                                                         VectorExpression]],
                              group_fns: Sequence[VectorExpression],
                              argument_fns: Sequence[tuple[str,
                                                           Optional[VectorExpression],
                                                           Optional[str]]]
                              ) -> Iterator[Binding]:
        """Morsel-parallel aggregation through mergeable partial states.

        Each worker folds its morsel into local :class:`_AggState`
        fragments (the exact per-batch arithmetic of the serial fold);
        the coordinator merges the fragments **in morsel order** through
        ``partial_state()/merge_partial()`` — the same machinery the
        cluster uses across shards.  The planner only selects this mode
        when the merge is provably bit-exact, so results stay
        byte-identical to serial execution.  Group output order is
        first-seen order under the morsel-order merge, which equals the
        serial scan's first-seen order.
        """
        aggregates = self.aggregates

        if not self.group_by:
            def scalar_partial(batch: ColumnBatch):
                local = {aggregate.result_key(): _AggState(aggregate)
                         for aggregate in aggregates}
                selection = batch.selection
                for result_key, argument_fn, tag in argument_fns:
                    state = local[result_key]
                    if argument_fn is None:
                        state.update_count(len(selection))
                    else:
                        state.update_batch(argument_fn(batch, selection), tag)
                return local

            states = {aggregate.result_key(): _AggState(aggregate)
                      for aggregate in aggregates}
            morsels = _parallel_morsels(context, scan, scan_predicate,
                                        filter_fns, payload_fn=scalar_partial)
            for _batch, local in morsels:
                self.actual_morsels += 1
                if local is None:
                    continue
                for result_key, state in states.items():
                    state.merge_partial(local[result_key].partial_state())
            row = {result_key: state.result()
                   for result_key, state in states.items()}
            yield self._emit({self.binding_name: row})
            return

        def grouped_partial(batch: ColumnBatch):
            selection = batch.selection
            key_columns = [group_fn(batch, selection) for group_fn in group_fns]
            value_columns = [(result_key,
                              argument_fn(batch, selection)
                              if argument_fn is not None else None)
                             for result_key, argument_fn, _tag in argument_fns]
            local_groups: dict[tuple, dict[str, _AggState]] = {}
            local_order: list[tuple] = []
            for position in range(len(selection)):
                key = tuple(column[position] for column in key_columns)
                local = local_groups.get(key)
                if local is None:
                    local = {aggregate.result_key(): _AggState(aggregate)
                             for aggregate in aggregates}
                    local_groups[key] = local
                    local_order.append(key)
                for result_key, column in value_columns:
                    local[result_key].update(
                        1 if column is None else column[position])
            return local_groups, local_order

        groups: dict[tuple, dict[str, _AggState]] = {}
        order: list[tuple] = []
        morsels = _parallel_morsels(context, scan, scan_predicate, filter_fns,
                                    payload_fn=grouped_partial)
        for _batch, fragment in morsels:
            self.actual_morsels += 1
            if fragment is None:
                continue
            local_groups, local_order = fragment
            for key in local_order:
                states = groups.get(key)
                if states is None:
                    states = {aggregate.result_key(): _AggState(aggregate)
                              for aggregate in aggregates}
                    groups[key] = states
                    order.append(key)
                local = local_groups[key]
                for result_key, state in states.items():
                    state.merge_partial(local[result_key].partial_state())
        for key in order:
            states = groups[key]
            row = {}
            for expression, value in zip(self.group_by, key):
                row[_group_key_name(expression)] = value
            for aggregate in self.aggregates:
                row[aggregate.result_key()] = states[aggregate.result_key()].result()
            yield self._emit({self.binding_name: row})

    def details(self) -> str:
        groups = ", ".join(expression.sql() for expression in self.group_by) or "(scalar)"
        aggregates = ", ".join(aggregate.sql() for aggregate in self.aggregates)
        return f"GROUP BY {groups} COMPUTE {aggregates}"

    def scale_rows(self, child_rows: int) -> int:
        return max(1, child_rows // 10) if self.group_by else 1

    def estimated_rows(self) -> int:
        return self.scale_rows(self.child.estimated_rows())


def _zone_contributions(segment, specs) -> Optional[list]:
    """Per-aggregate ``partial_state`` tuples read off a segment's zone maps.

    Returns ``[(result_key, (count, total, minimum, maximum)), ...]`` —
    the exact mergeable fragments :meth:`_AggState.merge_partial`
    consumes — or None when any aggregate needs the real values (e.g. a
    MIN over a segment whose zone could not rank its values, or a SUM
    whose zone lost integer exactness).
    """
    contributions = []
    for result_key, column, func, _argument_fn, _tag in specs:
        if func == "count_star":
            contributions.append((result_key, (segment.rows, 0.0, None, None)))
            continue
        zone = segment.zone(column)
        if zone is None:
            return None
        nonnull = zone.nonnull
        if func == "count":
            contributions.append((result_key, (nonnull, 0.0, None, None)))
        elif func in ("min", "max"):
            if nonnull and zone.kind is None:
                # Mixed types or NaN: the zone could not rank the
                # values, so the segment must be scanned.
                return None
            contributions.append((result_key,
                                  (nonnull, 0.0, zone.minimum, zone.maximum)))
        else:  # sum / avg over planner-proved exact-integer columns
            if zone.int_sum is None or (nonnull and zone.kind != "num"):
                return None
            contributions.append((result_key,
                                  (nonnull, zone.int_sum, None, None)))
    return contributions


def _group_key_name(expression: Expression) -> str:
    if isinstance(expression, ColumnRef):
        return expression.name.lower()
    return expression.sql()


class _AggState:
    """Running state of one aggregate within one group."""

    def __init__(self, aggregate: AggregateCall):
        self.func = aggregate.func
        self.distinct = aggregate.distinct
        self.count = 0
        self.total = 0.0
        self.minimum: Any = None
        self.maximum: Any = None
        self.seen: set = set()

    def update(self, value: Any) -> None:
        if value is NULL:
            return
        if self.distinct:
            if value in self.seen:
                return
            self.seen.add(value)
        self.count += 1
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def update_count(self, rows: int) -> None:
        """COUNT(*) over a whole batch (arguments are never NULL)."""
        self.count += rows

    def update_batch(self, values: list, tag: Optional[str]) -> None:
        """Fold one batch of argument values into the running state.

        A numeric codegen ``tag`` guarantees the values are non-NULL
        ints/floats (never bools), so the reductions run as C-level
        builtins (floats accumulate one by one to keep the total
        bit-identical to the row path).  Everything else — DISTINCT,
        row-view fallbacks that may contain NULLs, strings — goes
        through the exact per-value :meth:`update`.
        """
        if self.distinct or tag not in ("int", "float"):
            for value in values:
                self.update(value)
            return
        if not values:
            return
        self.count += len(values)
        func = self.func
        if func in ("sum", "avg"):
            # Accumulate one by one from the running float total so the
            # result is bit-identical to the row path: a per-batch sum()
            # would round differently — floats in the last ulp, ints
            # beyond 2**53.
            total = self.total
            for value in values:
                total += value
            self.total = total
        elif func == "min":
            low = min(values)
            if self.minimum is None or low < self.minimum:
                self.minimum = low
        elif func == "max":
            high = max(values)
            if self.maximum is None or high > self.maximum:
                self.maximum = high

    # -- partial aggregation (the cluster's shard-side states) ----------

    def partial_state(self) -> tuple[int, float, Any, Any]:
        """The mergeable partial: ``(count, total, minimum, maximum)``.

        COUNT/MIN/MAX merge directly and AVG merges as a sum+count pair
        (``total``/``count``), so a scatter-gather execution can combine
        per-shard states without re-reading any rows.  DISTINCT states
        are not mergeable (their value sets would have to travel) and
        raise — callers gather the value stream instead.
        """
        if self.distinct:
            raise PlanError(
                f"DISTINCT {self.func} has no mergeable partial state")
        return (self.count, self.total, self.minimum, self.maximum)

    def merge_partial(self, state: tuple[int, float, Any, Any]) -> None:
        """Fold another state's :meth:`partial_state` into this one."""
        if self.distinct:
            raise PlanError(
                f"DISTINCT {self.func} has no mergeable partial state")
        count, total, minimum, maximum = state
        self.count += count
        self.total += total
        if minimum is not None and (self.minimum is None or minimum < self.minimum):
            self.minimum = minimum
        if maximum is not None and (self.maximum is None or maximum > self.maximum):
            self.maximum = maximum

    def result(self) -> Any:
        if self.func == "count":
            return self.count
        if self.count == 0:
            return NULL
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return self.total / self.count
        if self.func == "min":
            return self.minimum
        if self.func == "max":
            return self.maximum
        raise PlanError(f"unsupported aggregate function {self.func!r}")


#: Public name of the aggregate running-state machinery: the cluster's
#: partial-aggregate merge builds on the same states the row and batch
#: execution paths use.
AggregateState = _AggState


class ProjectOp(PhysicalOperator):
    """Evaluates the select list, producing output-row bindings.

    When the input is a single ``TableScan`` (possibly under residual
    ``FilterOp``s) and every expression compiles in direct-row mode, the
    scan, filters and projection fuse into one tight loop over the
    table's row dicts — no per-row RowScope or binding-dict churn.
    """

    label = "Compute Scalar"

    def __init__(self, child: PhysicalOperator, items: Sequence[SelectItem],
                 database: Database, allow_fused: bool = True):
        super().__init__()
        self.child = child
        self.items = list(items)
        self.database = database
        self.allow_fused = allow_fused

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Binding]:
        if self.vectorized and context.compile_enabled:
            vectorized = self._vectorized_rows(context)
            if vectorized is not None:
                yield from vectorized
                return
        if self.allow_fused and context.compile_enabled:
            fused = self._fused_rows(context)
            if fused is not None:
                yield from fused
                return
        compiled_items: list[tuple[Any, Optional[str], Optional[CompiledExpression]]] = []
        for position, item in enumerate(self.items):
            if isinstance(item.expression, Star):
                compiled_items.append((item.expression, None, None))
            else:
                compiled_items.append((item.expression, item.output_name(position),
                                       _compile_projected(item.expression, context)))
        scopes = _BindingScopes()
        for binding in self.child.rows(context):
            scope = scopes.scope_for(binding)
            output: dict[str, Any] = {}
            for expression, name, value_fn in compiled_items:
                if value_fn is None:
                    self._expand_star(expression, binding, output)
                else:
                    output[name] = value_fn(scope)
            yield self._emit({**binding, OUTPUT_BINDING: output})

    # -- the vectorized single-table fast path ------------------------------

    def _vectorized_rows(self, context: ExecutionContext) -> Optional[Iterator[Binding]]:
        """A batch scan/join→filter→project pipeline, or None when not applicable."""
        chain = _vector_chain(context, self.child)
        if chain is not None:
            scan, scan_predicate, filter_fns, compiled_count = chain
            table, binding_name = scan.table, scan.binding_name
            # (output name, vector fn); a Star is (None, None) and expands to
            # every table column through the batch's row-dict adapter.
            compiled_items: list[tuple[Optional[str], Optional[VectorExpression]]] = []
            try:
                for position, item in enumerate(self.items):
                    if isinstance(item.expression, Star):
                        qualifier = (item.expression.qualifier or "").lower()
                        if qualifier and qualifier != binding_name.lower():
                            return None
                        compiled_items.append((None, None))
                    else:
                        fn, _tag = context.compile_vector_projection(
                            item.expression, table, binding_name)
                        compiled_items.append((item.output_name(position), fn))
                        compiled_count += 1
            except VectorCompileError:
                return None
            context.statistics.exprs_compiled += compiled_count
            batches = _drive_batches(context, scan, scan_predicate, filter_fns)
            star_columns = [column.name.lower() for column in scan.table.columns]
            return self._run_vectorized(context, batches, compiled_items,
                                        star_columns)
        joined = _join_vector_source(context, self.child)
        if joined is None:
            return None
        source, needed, compiled_count = joined
        compiled_items = []
        try:
            for position, item in enumerate(self.items):
                if isinstance(item.expression, Star):
                    # Star expansion over a join stays on the row path.
                    return None
                fn, _tag, keys = context.compile_join_vector_projection(
                    item.expression, source.schema)
                compiled_items.append((item.output_name(position), fn))
                needed.update(keys)
                compiled_count += 1
        except VectorCompileError:
            return None
        context.statistics.exprs_compiled += compiled_count
        return self._run_vectorized(context, source.batches(context, needed),
                                    compiled_items, None)

    def _run_vectorized(self, context: ExecutionContext,
                        batches: Iterator[ColumnBatch],
                        compiled_items: Sequence[tuple[Optional[str],
                                                       Optional[VectorExpression]]],
                        star_columns: Optional[list[str]]
                        ) -> Iterator[Binding]:
        has_star = any(fn is None for _name, fn in compiled_items)
        names = [name for name, _fn in compiled_items]
        for batch in batches:
            selection = batch.selection
            value_lists = [None if fn is None else fn(batch, selection)
                           for _name, fn in compiled_items]
            if has_star:
                star_rows = batch.rows(star_columns)
                for position, star_row in enumerate(star_rows):
                    output: dict[str, Any] = {}
                    for name, values in zip(names, value_lists):
                        if values is None:
                            for column, value in star_row.items():
                                output.setdefault(column, value)
                        else:
                            output[name] = values[position]
                    yield self._emit({OUTPUT_BINDING: output})
            else:
                for values_row in zip(*value_lists):
                    yield self._emit({OUTPUT_BINDING: dict(zip(names, values_row))})

    # -- the fused single-table fast path ---------------------------------

    def _fused_rows(self, context: ExecutionContext) -> Optional[Iterator[Binding]]:
        """A fused scan→filter→project generator, or None when not applicable."""
        filters: list[FilterOp] = []
        node: PhysicalOperator = self.child
        while isinstance(node, FilterOp):
            filters.append(node)
            node = node.child
        if not isinstance(node, TableScan):
            return None
        scan = node
        table = scan.table
        binding_name = scan.binding_name
        compiled_count = 0
        try:
            scan_predicate = None
            if scan.predicate is not None:
                scan_predicate = context.compile_row(scan.predicate, table, binding_name)
                compiled_count += 1
            # Filters stack project-downward; rows meet them scan-upward.
            filter_fns = []
            for filter_op in reversed(filters):
                filter_fns.append(
                    (filter_op,
                     context.compile_row(filter_op.predicate, table, binding_name)))
                compiled_count += 1
            compiled_items: list[tuple[Optional[str], Optional[CompiledExpression]]] = []
            for position, item in enumerate(self.items):
                if isinstance(item.expression, Star):
                    qualifier = (item.expression.qualifier or "").lower()
                    if qualifier and qualifier != binding_name.lower():
                        return None
                    compiled_items.append((None, None))
                else:
                    compiled_items.append(
                        (item.output_name(position),
                         context.compile_row(item.expression, table, binding_name)))
                    compiled_count += 1
        except RowCompileError:
            return None
        context.statistics.exprs_compiled += compiled_count
        return self._run_fused(context, scan, table, binding_name,
                               scan_predicate, filter_fns, compiled_items)

    def _run_fused(self, context: ExecutionContext, scan: "TableScan", table: Table,
                   binding_name: str, scan_predicate: Optional[CompiledExpression],
                   filter_fns: Sequence[tuple["FilterOp", CompiledExpression]],
                   compiled_items: Sequence[tuple[Optional[str], Optional[CompiledExpression]]]
                   ) -> Iterator[Binding]:
        statistics = context.statistics
        row_bytes = int(table.average_row_bytes())
        has_star = any(value_fn is None for _name, value_fn in compiled_items)
        predicates = [fn for _op, fn in filter_fns]
        # Counters accumulate in locals and flush once (also on early close,
        # e.g. under a TOP that stops pulling).
        scanned = 0
        scan_passed = 0
        filter_passed = [0] * len(predicates)
        emitted = 0
        try:
            for row in table.storage.iter_dicts():
                scanned += 1
                if scan_predicate is not None and scan_predicate(row) is not True:
                    continue
                scan_passed += 1
                rejected = False
                for position, predicate in enumerate(predicates):
                    if predicate(row) is not True:
                        rejected = True
                        break
                    filter_passed[position] += 1
                if rejected:
                    continue
                if has_star:
                    output: dict[str, Any] = {}
                    for name, value_fn in compiled_items:
                        if value_fn is None:
                            for column, value in row.items():
                                output.setdefault(column, value)
                        else:
                            output[name] = value_fn(row)
                else:
                    output = {name: value_fn(row) for name, value_fn in compiled_items}
                emitted += 1
                yield {binding_name: row, OUTPUT_BINDING: output}
        finally:
            statistics.rows_scanned += scanned
            statistics.bytes_scanned += scanned * row_bytes
            scan.actual_rows += scan_passed
            for (filter_op, _fn), passed in zip(filter_fns, filter_passed):
                filter_op.actual_rows += passed
            self.actual_rows += emitted

    def _expand_star(self, star: Star, binding: Binding, output: dict[str, Any]) -> None:
        names = ([star.qualifier.lower()] if star.qualifier
                 else [name for name in binding if name != OUTPUT_BINDING])
        for name in names:
            row = binding.get(name)
            if row is None:
                continue
            for column, value in row.items():
                output.setdefault(column, value)

    def details(self) -> str:
        return ", ".join(item.expression.sql() for item in self.items)

    def estimated_rows(self) -> int:
        return self.child.estimated_rows()


class DistinctOp(PhysicalOperator):
    """Duplicate elimination on the projected output row."""

    label = "Distinct"

    def __init__(self, child: PhysicalOperator):
        super().__init__()
        self.child = child

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Binding]:
        seen: set[tuple] = set()
        for binding in self.child.rows(context):
            output = binding.get(OUTPUT_BINDING, {})
            key = tuple(sorted((name, _hashable(value)) for name, value in output.items()))
            if key in seen:
                continue
            seen.add(key)
            yield self._emit(binding)

    def estimated_rows(self) -> int:
        return self.child.estimated_rows()


def _hashable(value: Any) -> Any:
    try:
        hash(value)
        return value
    except TypeError:
        return repr(value)


class InsertIntoOp(PhysicalOperator):
    """SELECT ... INTO ##results: materialise the output rows into a new table."""

    label = "Table Insert"

    def __init__(self, child: PhysicalOperator, target: str, database: Database):
        super().__init__()
        self.child = child
        self.target = target
        self.database = database

    def children(self) -> Sequence[PhysicalOperator]:
        return (self.child,)

    def rows(self, context: ExecutionContext) -> Iterator[Binding]:
        collected: list[dict[str, Any]] = []
        for binding in self.child.rows(context):
            collected.append(dict(binding.get(OUTPUT_BINDING, {})))
        table = _create_table_for_rows(self.database, self.target, collected)
        for row in collected:
            table.insert(row, defer_index_sort=True)
        table.rebuild_indexes()
        for row in collected:
            yield self._emit({OUTPUT_BINDING: row})

    def details(self) -> str:
        return f"INTO {self.target}"

    def estimated_rows(self) -> int:
        return self.child.estimated_rows()


def _create_table_for_rows(database: Database, name: str,
                           rows: Sequence[dict[str, Any]]) -> Table:
    """Infer a column layout from result rows and (re)create the target table."""
    columns: list[Column] = []
    names: list[str] = []
    for row in rows:
        for key in row:
            if key not in names:
                names.append(key)
    if not names:
        names = ["value"]
    for key in names:
        sample = next((row[key] for row in rows if row.get(key) is not NULL), NULL)
        if isinstance(sample, bool):
            dtype = DataType.BOOLEAN
        elif isinstance(sample, int):
            dtype = DataType.BIGINT
        elif isinstance(sample, float):
            dtype = DataType.FLOAT
        elif isinstance(sample, (bytes, bytearray)):
            dtype = DataType.BLOB
        else:
            dtype = DataType.TEXT
        columns.append(Column(key, dtype, nullable=True))
    return database.create_table(name, columns, replace=True,
                                 description=f"materialised results ({name})")


def evaluate_projected(expression: Expression, scope: RowScope,
                       evaluation: EvaluationContext) -> Any:
    """Evaluate a select-list / order-key expression, tolerating aggregation.

    Above a GroupAggregate the base columns are gone and the grouped
    values live in the synthetic output row keyed by column name or by
    the group expression's SQL text; if ordinary evaluation cannot
    resolve a column, the value is looked up there instead.
    """
    from .errors import UnknownColumnError

    try:
        return expression.evaluate(scope, evaluation)
    except UnknownColumnError:
        if isinstance(expression, ColumnRef):
            return scope.lookup(expression.name)
        return scope.lookup(expression.sql())


def _scope_for(binding: Binding) -> RowScope:
    scope = RowScope()
    output = binding.get(OUTPUT_BINDING)
    for name, row in binding.items():
        if name == OUTPUT_BINDING:
            continue
        scope.bind(name, row)
    if output is not None:
        scope.bind(OUTPUT_BINDING, output)
    return scope


class _BindingScopes:
    """Reuses one RowScope across consecutive rows of a binding stream.

    The alias set of an operator's bindings is fixed by the plan shape, so
    instead of building a fresh scope (dict + list + lower-cased binds) per
    row, the previous scope is re-bound in place whenever the alias set is
    unchanged.
    """

    __slots__ = ("_scope", "_keys")

    def __init__(self) -> None:
        self._scope: Optional[RowScope] = None
        self._keys: Optional[set[str]] = None

    def scope_for(self, binding: Binding) -> RowScope:
        keys = binding.keys()
        scope = self._scope
        if scope is None or self._keys != keys:
            scope = _scope_for(binding)
            self._scope = scope
            self._keys = set(keys)
            return scope
        for name, row in binding.items():
            scope.bind(name, row)
        return scope


def _compile_projected(expression: Expression,
                       context: ExecutionContext) -> CompiledExpression:
    """Compiled :func:`evaluate_projected`: tolerates aggregation output rows."""
    compiled = context.compile(expression)

    def fn(scope: RowScope) -> Any:
        try:
            return compiled(scope)
        except UnknownColumnError:
            if isinstance(expression, ColumnRef):
                return scope.lookup(expression.name)
            return scope.lookup(expression.sql())

    return fn


# ---------------------------------------------------------------------------
# Plan wrapper and result
# ---------------------------------------------------------------------------

@dataclass
class QueryResult:
    """The rows, column names, statistics and plan of one executed query."""

    columns: list[str]
    rows: list[dict[str, Any]]
    statistics: ExecutionStatistics
    plan: "PhysicalPlan"

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self.rows)

    def column(self, name: str) -> list[Any]:
        key = name.lower()
        return [row.get(key, row.get(name)) for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a single-row, single-column result."""
        if not self.rows:
            return NULL
        first = self.rows[0]
        return next(iter(first.values())) if first else NULL


@dataclass
class PhysicalPlan:
    """A root operator plus the projection metadata needed to run it.

    Plans are reusable: the session's plan cache executes the same plan
    object for every repetition of a hot query, so per-run state (the
    operators' actual-row counters) is reset at the start of each
    execution and the statistics of the most recent run are kept on
    :attr:`last_statistics` for EXPLAIN output.
    """

    root: PhysicalOperator
    output_names: list[str]
    database: Database
    description: str = ""
    last_statistics: Optional[ExecutionStatistics] = None
    #: Intra-query worker budget the planner built this plan with (1 =
    #: serial) and the simulated-I/O bandwidth executions should model.
    parallelism: int = 1
    simulated_scan_mbps: Optional[float] = None
    #: Whether the most recent execution ran with per-operator timers
    #: (EXPLAIN prints ``time=…ms`` only for timed runs).
    last_timed: bool = False

    def reset_actuals(self) -> None:
        """Zero the per-run actual-row counters before a (re-)execution."""

        def walk(operator: PhysicalOperator) -> None:
            operator.actual_rows = 0
            operator.actual_morsels = 0
            operator.actual_seconds = 0.0
            if isinstance(operator, TableScan):
                operator.actual_segments_scanned = 0
                operator.actual_segments_skipped = 0
                operator.actual_runtime_segments_pruned = 0
                operator.actual_runtime_rows_pruned = 0
            elif isinstance(operator, HashJoin):
                operator.runtime_filter_kind = None
                operator.runtime_segments_pruned = 0
                operator.runtime_rows_pruned = 0
            for child in operator.children():
                walk(child)

        walk(self.root)

    def execute(self, variables: Optional[dict[str, Any]] = None, *,
                row_limit: Optional[int] = None,
                time_limit_seconds: Optional[float] = None,
                compiled: bool = True,
                time_operators: bool = False) -> QueryResult:
        """Run the plan.  ``time_operators`` additionally accumulates
        per-operator inclusive wall time on ``actual_seconds`` (EXPLAIN
        ANALYZE's ``time=…ms``); it wraps every reached generator and so
        is *not* free — the regular path leaves it off."""
        from .errors import QueryLimitExceeded

        self.reset_actuals()
        context = ExecutionContext(
            database=self.database,
            evaluation=self.database.evaluation_context(variables),
            compile_enabled=compiled,
            parallelism=self.parallelism,
            simulated_scan_mbps=self.simulated_scan_mbps,
        )
        self.last_statistics = context.statistics
        self.last_timed = bool(time_operators)
        timed = self._install_operator_timers() if time_operators else None
        started_wall = time.perf_counter()
        started_cpu = time.process_time()
        rows: list[dict[str, Any]] = []
        try:
            for binding in self.root.rows(context):
                output = binding.get(OUTPUT_BINDING, {})
                rows.append(dict(output))
                context.statistics.rows_returned += 1
                if row_limit is not None and len(rows) > row_limit:
                    raise QueryLimitExceeded(
                        f"query exceeded the public row limit of {row_limit} rows",
                        limit_kind="rows")
                if time_limit_seconds is not None and (
                        time.perf_counter() - started_wall) > time_limit_seconds:
                    raise QueryLimitExceeded(
                        f"query exceeded the public time limit of {time_limit_seconds} s",
                        limit_kind="time")
        finally:
            if timed is not None:
                self._remove_operator_timers(timed)
        context.statistics.elapsed_seconds = time.perf_counter() - started_wall
        context.statistics.cpu_seconds = time.process_time() - started_cpu
        columns = self.output_names or (list(rows[0].keys()) if rows else [])
        return QueryResult(columns=columns, rows=rows,
                           statistics=context.statistics, plan=self)

    # -- per-operator timing (EXPLAIN ANALYZE) ------------------------------

    def _install_operator_timers(self) -> list[PhysicalOperator]:
        """Shadow each operator's ``rows`` with a timing wrapper.

        The wrapper is an *instance* attribute so plan shape, operator
        classes and cached-plan reuse are untouched; removal is just
        deleting the shadow.  Timing is inclusive (a parent's time
        contains its children's), matching EXPLAIN conventions.
        """
        wrapped: list[PhysicalOperator] = []
        seen: set[int] = set()

        def walk(operator: PhysicalOperator) -> None:
            if id(operator) in seen:
                return
            seen.add(id(operator))
            original = operator.rows

            def rows(context: ExecutionContext, *,
                     _op: PhysicalOperator = operator,
                     _original: Any = original) -> Iterator[Binding]:
                generator = _original(context)
                while True:
                    begin = time.perf_counter()
                    try:
                        item = next(generator)
                    except StopIteration:
                        _op.actual_seconds += time.perf_counter() - begin
                        return
                    _op.actual_seconds += time.perf_counter() - begin
                    yield item

            operator.rows = rows  # type: ignore[method-assign]
            wrapped.append(operator)
            for child in operator.children():
                walk(child)

        walk(self.root)
        return wrapped

    @staticmethod
    def _remove_operator_timers(wrapped: list[PhysicalOperator]) -> None:
        for operator in wrapped:
            operator.__dict__.pop("rows", None)

    def explain(self) -> str:
        from .explain import render_plan

        return render_plan(self)
