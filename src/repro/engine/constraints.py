"""Integrity constraints.

The paper (section 9.1.3) stresses that the database design includes "a
fairly complete set of foreign key declarations ... and we also insist
that all fields are non-null.  These integrity constraints are
invaluable tools in detecting errors during loading".  The loader
relies on these declarations both during row-at-a-time inserts and for
a post-load validation pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence, TYPE_CHECKING

from .errors import (CheckViolation, ForeignKeyViolation, NotNullViolation,
                     SchemaError)
from .expressions import EvaluationContext, Expression, RowScope
from .types import NULL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .catalog import Database


@dataclass
class PrimaryKey:
    """A primary-key declaration (enforced through a unique index)."""

    columns: Sequence[str]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError("primary key needs at least one column")
        self.columns = [column.lower() for column in self.columns]


@dataclass
class ForeignKey:
    """A foreign-key declaration referencing another table's primary key.

    ``allow_null`` lets optional relationships (e.g. PhotoObj.specObjID
    for the 99 % of objects without a spectrum) skip the reference check
    when the referencing value is NULL or zero, mirroring how the
    SkyServer links PhotoObj and SpecObj only "if a photo object has a
    measured spectrogram".
    """

    columns: Sequence[str]
    referenced_table: str
    referenced_columns: Sequence[str]
    name: str = ""
    allow_null: bool = True
    treat_zero_as_null: bool = False

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.referenced_columns):
            raise SchemaError(
                f"foreign key {self.name or self.columns}: column count mismatch")
        self.columns = [column.lower() for column in self.columns]
        self.referenced_columns = [column.lower() for column in self.referenced_columns]

    def key_of(self, row: dict[str, Any]) -> Optional[tuple]:
        """The referencing key of ``row``, or None when the FK does not apply."""
        key = tuple(row.get(column, NULL) for column in self.columns)
        if self.allow_null and any(part is NULL for part in key):
            return None
        if self.treat_zero_as_null and all(part in (0, NULL) for part in key):
            return None
        return key

    def check(self, row: dict[str, Any], database: "Database", *, table_name: str) -> None:
        key = self.key_of(row)
        if key is None:
            return
        referenced = database.table(self.referenced_table)
        if not referenced.has_key(self.referenced_columns, key):
            raise ForeignKeyViolation(
                f"{table_name}.{'/'.join(self.columns)} = {key!r} has no match in "
                f"{self.referenced_table}.{'/'.join(self.referenced_columns)}",
                table=table_name, constraint=self.name or "fk")


@dataclass
class CheckConstraint:
    """A row-level CHECK constraint expressed as an engine expression."""

    expression: Expression
    name: str = ""

    def check(self, row: dict[str, Any], *, table_name: str) -> None:
        scope = RowScope().bind(table_name, row)
        result = self.expression.evaluate(scope, EvaluationContext())
        if result is False:
            raise CheckViolation(
                f"CHECK {self.name or self.expression.sql()} failed for row in {table_name}",
                table=table_name, constraint=self.name or "check")


def check_not_null(row: dict[str, Any], columns: Sequence, *, table_name: str) -> None:
    """Raise when any non-nullable column holds NULL."""
    for column in columns:
        if not column.nullable and row.get(column.name.lower(), NULL) is NULL:
            raise NotNullViolation(
                f"column {column.name!r} of table {table_name!r} may not be NULL",
                table=table_name, constraint=f"nn_{column.name}")


@dataclass
class ConstraintReport:
    """Result of a full-table validation pass (used after bulk loads)."""

    table: str
    rows_checked: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return f"{self.table}: {self.rows_checked} rows checked, {status}"
