"""Sealed columnar segments: per-column encodings and zone maps.

The paper's hot queries (the Fig.13 data-mining suite, §11) scan a few
wide tables whose columns are extremely compressible: the snowflake
arms (``type``, ``mode``, flag fields) hold a handful of distinct
values, and ``objID``/``htmID`` ascend almost monotonically because the
pipeline loads in scan order.  This module provides the in-memory
segment format the :class:`~repro.engine.storage.ColumnStore` seals
full morsels into:

* **Encodings** — each sealed column picks one of

  - ``dict``  — ≤ 255 distinct values: a byte of code per row plus the
    dictionary (first-occurrence order, so decoding returns the exact
    original objects);
  - ``rle``   — run-length over the dictionary codes when runs are long
    (sorted/clustered columns);
  - ``delta`` — frame-of-reference for NULL-free, bool-free integer
    columns whose range fits 32 bits: ``base + offset`` with the
    narrowest of ``'B'``/``'H'``/``'I'`` offsets;
  - ``plain`` — everything else (the stored buffer, zero-copy decode).

  Encodings operate on the *raw* buffer — NULL placeholders included —
  and the null mask travels separately, which is what makes
  ``decode(encode(x)) == x`` hold bit-for-bit (the property suite
  proves it; CONTRIBUTING makes it a ground rule for new encodings).

* **Zone maps** (:class:`ZoneStats`) — per-column min/max, null count
  and an exact integer sum, built once at seal time.  Predicates are
  folded against them by :func:`compile_zone_predicate` to decide, per
  segment, *"can any row match?"* and *"do all rows match?"* without
  touching data.  Zone maps are conservative by contract: when in
  doubt (NaN, mixed types, unsupported operators, session variables
  that fail to fold) the answer degrades to ``(maybe, not-proven)`` —
  a segment that could match is never skipped.

String bounds are kept twice: raw (first-wins ``<``/``>`` exactly like
``_AggState``, so MIN/MAX answered from the zone are bit-identical to a
scan) and case-folded (the engine's ``_compare`` lowercases both string
sides, so *predicate* analysis must order by ``value.lower()``).
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import Any, Callable, Optional, Sequence

from .batch import BATCH_ROWS, ColumnBatch
from .expressions import (Between, BinaryOp, ColumnRef, EvaluationContext,
                          Expression, InList, RowScope, UnaryOp)
from .types import NULL, DataType

#: Rows per sealed segment.  Aligned with the morsel size so one sealed
#: segment is exactly one unit of parallel dispatch: skipping a segment
#: skips a whole morsel.
SEGMENT_ROWS = BATCH_ROWS

#: Test/bench hook: force every seal to a single encoding ("plain",
#: "dict", "rle", "delta" — unencodable columns fall back to plain).
#: The property suite uses it to prove layouts are result-identical.
FORCED_ENCODING: Optional[str] = None

#: Diagnostic: count of segment-column decodes since process start.
#: ``bench_segments`` asserts the dictionary-code fast path answers an
#: equality filter without a single decode.
DECODE_EVENTS = 0

_RLE_MAX_RUN_FRACTION = 8       # rle only if runs <= rows / 8
_DICT_MAX_CARDINALITY = 255     # codes must fit one byte
_DELTA_MAX_RANGE = 1 << 32      # offsets no wider than 'I'


def _note_decode() -> None:
    global DECODE_EVENTS
    DECODE_EVENTS += 1


def _distinct_key(value: Any) -> Any:
    """A hashable key that never conflates distinct objects.

    ``hash(1) == hash(1.0) == hash(True)`` and ``0.0 == -0.0``, but the
    decoder must give back the exact original objects, so the key pins
    the type and (for floats) the bit pattern.
    """
    if isinstance(value, float):
        return ("f", value.hex())
    return (type(value), value)


def _logical_bytes(values: Sequence, dtype: DataType) -> int:
    """The uncompressed in-memory cost model (8 B per scalar, UTF-8-ish
    length per string) used for compression-ratio reporting."""
    if isinstance(values, array):
        return len(values) * values.itemsize
    total = 0
    for value in values:
        total += len(value) if isinstance(value, str) else 8
    return total


# ---------------------------------------------------------------------------
# Encodings
# ---------------------------------------------------------------------------

class PlainColumn:
    """The stored buffer itself: zero-copy decode."""

    __slots__ = ("values", "dtype")
    name = "plain"

    def __init__(self, values: Sequence, dtype: DataType):
        self.values = values
        self.dtype = dtype

    def decode(self) -> Sequence:
        return self.values

    def value_at(self, position: int) -> Any:
        return self.values[position]

    def encoded_bytes(self) -> int:
        return _logical_bytes(self.values, self.dtype)


class DictColumn:
    """One byte of code per row plus a first-occurrence dictionary."""

    __slots__ = ("dictionary", "codes", "dtype")
    name = "dict"

    def __init__(self, dictionary: list, codes: array, dtype: DataType):
        self.dictionary = dictionary
        self.codes = codes
        self.dtype = dtype

    def decode(self) -> list:
        dictionary = self.dictionary
        return [dictionary[code] for code in self.codes]

    def value_at(self, position: int) -> Any:
        return self.dictionary[self.codes[position]]

    def code_at(self, position: int) -> int:
        return self.codes[position]

    def encoded_bytes(self) -> int:
        return len(self.codes) + _logical_bytes(self.dictionary, self.dtype)


class RleColumn:
    """Run-length over dictionary codes: (run start, run code) pairs."""

    __slots__ = ("dictionary", "starts", "run_codes", "rows", "dtype")
    name = "rle"

    def __init__(self, dictionary: list, starts: array, run_codes: array,
                 rows: int, dtype: DataType):
        self.dictionary = dictionary
        self.starts = starts          # array('l'): first row of each run
        self.run_codes = run_codes    # array('B'): the run's code
        self.rows = rows
        self.dtype = dtype

    def decode(self) -> list:
        out: list = []
        dictionary, starts = self.dictionary, self.starts
        bounds = list(starts[1:]) + [self.rows]
        for start, stop, code in zip(starts, bounds, self.run_codes):
            out.extend([dictionary[code]] * (stop - start))
        return out

    def materialize_codes(self) -> array:
        codes = array("B")
        bounds = list(self.starts[1:]) + [self.rows]
        for start, stop, code in zip(self.starts, bounds, self.run_codes):
            codes.extend([code] * (stop - start))
        return codes

    def value_at(self, position: int) -> Any:
        run = bisect_right(self.starts, position) - 1
        return self.dictionary[self.run_codes[run]]

    def code_at(self, position: int) -> int:
        run = bisect_right(self.starts, position) - 1
        return self.run_codes[run]

    def encoded_bytes(self) -> int:
        return (len(self.starts) * self.starts.itemsize + len(self.run_codes)
                + _logical_bytes(self.dictionary, self.dtype))


class DeltaColumn:
    """Frame of reference: ``minimum + offset``, narrowest offset array."""

    __slots__ = ("base", "offsets", "dtype")
    name = "delta"

    def __init__(self, base: int, offsets: array, dtype: DataType):
        self.base = base
        self.offsets = offsets
        self.dtype = dtype

    def decode(self) -> list:
        base = self.base
        return [base + offset for offset in self.offsets]

    def value_at(self, position: int) -> Any:
        return self.base + self.offsets[position]

    def encoded_bytes(self) -> int:
        return len(self.offsets) * self.offsets.itemsize + 8


def _try_dict(values: Sequence, dtype: DataType):
    """(dictionary, codes) with ≤ 255 first-occurrence entries, or None."""
    dictionary: list = []
    codes = array("B")
    index: dict = {}
    try:
        for value in values:
            key = _distinct_key(value)
            code = index.get(key)
            if code is None:
                code = len(dictionary)
                if code > _DICT_MAX_CARDINALITY:
                    return None
                index[key] = code
                dictionary.append(value)
            codes.append(code)
    except TypeError:               # unhashable value somewhere
        return None
    return dictionary, codes


def _runs_of(codes: array) -> tuple[array, array]:
    starts = array("l")
    run_codes = array("B")
    previous = -1
    for position, code in enumerate(codes):
        if code != previous:
            starts.append(position)
            run_codes.append(code)
            previous = code
    return starts, run_codes


def _try_delta(values: Sequence):
    """Frame-of-reference offsets for bool-free int values, or None."""
    low = high = None
    for value in values:
        if type(value) is not int:      # exact: bools/floats/NULL disqualify
            return None
        if low is None or value < low:
            low = value
        if high is None or value > high:
            high = value
    if low is None:
        return None
    spread = high - low
    if spread >= _DELTA_MAX_RANGE:
        return None
    typecode = "B" if spread < (1 << 8) else "H" if spread < (1 << 16) else "I"
    return low, array(typecode, (value - low for value in values))


def encode_column(values: Sequence, dtype: DataType):
    """Pick an encoding for one sealed column's raw buffer."""
    rows = len(values)
    forced = FORCED_ENCODING
    if forced == "plain":
        return PlainColumn(values, dtype)
    if forced in (None, "dict", "rle"):
        encoded = _try_dict(values, dtype)
        if encoded is not None:
            dictionary, codes = encoded
            if forced != "dict":
                starts, run_codes = _runs_of(codes)
                if (forced == "rle"
                        or len(starts) * _RLE_MAX_RUN_FRACTION <= rows):
                    return RleColumn(dictionary, starts, run_codes, rows, dtype)
            return DictColumn(dictionary, codes, dtype)
        if forced in ("dict", "rle"):
            return PlainColumn(values, dtype)
    if forced in (None, "delta"):
        encoded = _try_delta(values)
        if encoded is not None:
            base, offsets = encoded
            return DeltaColumn(base, offsets, dtype)
    return PlainColumn(values, dtype)


# ---------------------------------------------------------------------------
# Zone maps
# ---------------------------------------------------------------------------

class ZoneStats:
    """Per-column min/max, null count and exact integer sum of one segment.

    ``minimum``/``maximum`` use the aggregate path's first-wins strict
    comparisons over the raw values; ``cmp_min``/``cmp_max`` are the
    predicate-ordering bounds (``value.lower()`` for strings — the
    engine compares strings case-insensitively).  ``kind`` is ``"num"``
    / ``"str"`` when the bounds are trustworthy, ``None`` when the
    column holds NaN or mixed types (zone maps then answer "maybe").
    """

    __slots__ = ("rows", "null_count", "has_null", "minimum", "maximum",
                 "cmp_min", "cmp_max", "kind", "int_sum")

    def __init__(self, rows: int):
        self.rows = rows
        self.null_count = 0
        self.has_null = False
        self.minimum: Any = None
        self.maximum: Any = None
        self.cmp_min: Any = None
        self.cmp_max: Any = None
        self.kind: Optional[str] = "empty"
        self.int_sum: Optional[int] = 0

    @property
    def nonnull(self) -> int:
        return self.rows - self.null_count


def build_zone(values: Sequence, mask: Optional[Sequence[int]]) -> ZoneStats:
    zone = ZoneStats(len(values))
    for position, value in enumerate(values):
        if mask is not None and mask[position]:
            zone.null_count += 1
            continue
        if zone.kind is None:
            continue
        if isinstance(value, bool) or isinstance(value, int):
            kind = "num"
        elif isinstance(value, float):
            if value != value:          # NaN poisons ordering
                zone.kind = None
                zone.int_sum = None
                continue
            kind = "num"
            zone.int_sum = None
        elif isinstance(value, str):
            kind = "str"
            zone.int_sum = None
        else:
            zone.kind = None
            zone.int_sum = None
            continue
        if zone.kind == "empty":
            zone.kind = kind
            zone.minimum = zone.maximum = value
            folded = value.lower() if kind == "str" else value
            zone.cmp_min = zone.cmp_max = folded
        elif zone.kind != kind:
            zone.kind = None
            zone.int_sum = None
            continue
        else:
            if value < zone.minimum:
                zone.minimum = value
            if value > zone.maximum:
                zone.maximum = value
            folded = value.lower() if kind == "str" else value
            if folded < zone.cmp_min:
                zone.cmp_min = folded
            if folded > zone.cmp_max:
                zone.cmp_max = folded
        if zone.int_sum is not None:
            zone.int_sum += value
    zone.has_null = zone.null_count > 0
    if zone.kind == "empty":            # all NULL: no bounds, sum of nothing
        zone.kind = None
        zone.int_sum = 0 if zone.int_sum is not None else None
    if zone.kind is None and zone.nonnull:
        zone.minimum = zone.maximum = zone.cmp_min = zone.cmp_max = None
    return zone


# ---------------------------------------------------------------------------
# Sealed segments
# ---------------------------------------------------------------------------

class SealedSegment:
    """An immutable run of ``SEGMENT_ROWS`` rows: encoded columns, local
    null masks (only where the segment actually holds NULLs), zone maps
    and a tombstone count (DML invalidation: a nonzero count keeps the
    zone map usable for *skipping* — it still bounds a superset of the
    live rows — but bars answering aggregates from it)."""

    __slots__ = ("base", "rows", "columns", "masks", "zones", "tombstones")

    def __init__(self, base: int, rows: int, columns: dict, masks: dict,
                 zones: dict, tombstones: int = 0):
        self.base = base
        self.rows = rows
        self.columns = columns          # name -> encoded column
        self.masks = masks              # name -> bytes (local; only if nulls)
        self.zones = zones              # name -> ZoneStats
        self.tombstones = tombstones    # live-row deletes since sealing

    def decode_column(self, name: str) -> Sequence:
        _note_decode()
        return self.columns[name].decode()

    def value_at(self, name: str, position: int) -> Any:
        mask = self.masks.get(name)
        if mask is not None and mask[position]:
            return NULL
        return self.columns[name].value_at(position)

    def zone(self, name: str) -> Optional[ZoneStats]:
        return self.zones.get(name)

    def null_count(self, name: str) -> int:
        zone = self.zones.get(name)
        return zone.null_count if zone is not None else 0

    def encoding_of(self, name: str) -> str:
        return self.columns[name].name

    def encoded_bytes(self) -> int:
        total = sum(column.encoded_bytes() for column in self.columns.values())
        total += sum(len(mask) for mask in self.masks.values())
        return total

    def code_filter(self, name: str, vector_fn: Callable,
                    selection: list[int], binding_name: str) -> Optional[list[int]]:
        """Filter ``selection`` by dictionary codes — no decode.

        Runs the compiled single-column vector predicate once over the
        *dictionary* (a |dict| ≤ 256 element batch) to learn which codes
        match, then filters the selection on codes alone.  Exactly
        equivalent to decode-then-filter for any single-column
        predicate, because the predicate's value for a row depends only
        on that row's (dictionary) value.  Requires a NULL-free column
        — codegen predicates already do.
        """
        column = self.columns.get(name)
        if not isinstance(column, (DictColumn, RleColumn)):
            return None
        if name in self.masks:
            return None
        dictionary = column.dictionary
        probe = ColumnBatch({name: dictionary}, {},
                            list(range(len(dictionary))), binding_name)
        matching = set(vector_fn(probe, probe.selection))
        if len(matching) == len(dictionary):
            return selection
        if not matching:
            return []
        codes = (column.codes if isinstance(column, DictColumn)
                 else column.materialize_codes())
        return [position for position in selection
                if codes[position] in matching]


def build_segment(base: int, specs: dict, tombstones: int = 0) -> SealedSegment:
    """Seal one segment.  ``specs``: name -> (values, mask, dtype) where
    ``values`` is the raw local buffer (NULL placeholders included) and
    ``mask`` the local null mask (or None)."""
    columns: dict = {}
    masks: dict = {}
    zones: dict = {}
    rows = 0
    for name, (values, mask, dtype) in specs.items():
        rows = len(values)
        has_nulls = mask is not None and any(mask)
        zones[name] = build_zone(values, mask if has_nulls else None)
        columns[name] = encode_column(values, dtype)
        if has_nulls:
            masks[name] = bytes(mask)
    return SealedSegment(base, rows, columns, masks, zones, tombstones)


# ---------------------------------------------------------------------------
# Zone-map predicate analysis
# ---------------------------------------------------------------------------

_EMPTY_SCOPE = RowScope()
_UNFOLDABLE = object()

#: A conjunct verdict: (any row can match, every row provably matches).
_UNKNOWN = (True, False)


def _fold(node: Expression, evaluation: EvaluationContext):
    """Evaluate a column-free subtree (constants, session variables,
    scalar functions of constants).  Returns ``_UNFOLDABLE`` on any
    failure — the conjunct then degrades to "maybe"."""
    try:
        return node.evaluate(_EMPTY_SCOPE, evaluation)
    except Exception:
        return _UNFOLDABLE


def _segment_column(node: Expression, table, binding_name: str) -> Optional[str]:
    """The storage column a bare ColumnRef resolves to, or None."""
    if not isinstance(node, ColumnRef):
        return None
    qualifier = node.qualifier
    if qualifier is not None and qualifier.lower() != binding_name.lower():
        return None
    name = node.name.lower()
    if not any(column.name.lower() == name for column in table.columns):
        return None
    return name


def _bounds_for(zone: ZoneStats, value: Any):
    """(low, high, comparable_value) in predicate order, or None."""
    if isinstance(value, str):
        if zone.kind != "str":
            return None
        return zone.cmp_min, zone.cmp_max, value.lower()
    if isinstance(value, (int, float)):        # bools included
        if zone.kind != "num":
            return None
        return zone.cmp_min, zone.cmp_max, value

    return None


def _comparison_verdict(zone: Optional[ZoneStats], op: str, value: Any):
    if zone is None or zone.kind is None:
        return _UNKNOWN
    if zone.nonnull == 0 or value is NULL or value is None:
        # No non-NULL rows, or a NULL comparand: no row satisfies the
        # comparison (SQL three-valued logic).
        return (False, False)
    bounds = _bounds_for(zone, value)
    if bounds is None:
        return _UNKNOWN
    low, high, value = bounds
    exact = not zone.has_null           # all_match needs every row non-NULL
    try:
        if op == "=":
            return (low <= value <= high,
                    exact and low == value == high)
        if op in ("<>", "!="):
            return (not (low == value == high),
                    exact and (value < low or value > high))
        if op == "<":
            return (low < value, exact and high < value)
        if op == "<=":
            return (low <= value, exact and high <= value)
        if op == ">":
            return (high > value, exact and low > value)
        if op == ">=":
            return (high >= value, exact and low >= value)
    except TypeError:
        return _UNKNOWN
    return _UNKNOWN


_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=",
            "<>": "<>", "!=": "!="}


class _ZoneConjunct:
    """One analyzable conjunct: evaluates against a segment's zones."""

    __slots__ = ("column", "verdict")

    def __init__(self, column: str, verdict: Callable):
        self.column = column
        self.verdict = verdict          # (zone) -> (any, all)


def _analyze(node: Expression, evaluation: EvaluationContext, table,
             binding_name: str) -> Optional[_ZoneConjunct]:
    """A zone verdict closure for one conjunct, or None (unsupported)."""
    if isinstance(node, BinaryOp):
        if node.op == "or":
            left = _analyze(node.left, evaluation, table, binding_name)
            right = _analyze(node.right, evaluation, table, binding_name)
            if left is None or right is None or left.column != right.column:
                return None

            def disjunction(zone, _left=left, _right=right):
                left_any, left_all = _left.verdict(zone)
                right_any, right_all = _right.verdict(zone)
                return (left_any or right_any, left_all or right_all)

            return _ZoneConjunct(left.column, disjunction)
        if node.op in ("=", "<>", "!=", "<", "<=", ">", ">="):
            column = _segment_column(node.left, table, binding_name)
            other, op = node.right, node.op
            if column is None:
                column = _segment_column(node.right, table, binding_name)
                other, op = node.left, _FLIPPED[node.op]
            if column is None or other.referenced_columns():
                return None

            def comparison(zone, _op=op, _other=other):
                value = _fold(_other, evaluation)
                if value is _UNFOLDABLE:
                    return _UNKNOWN
                return _comparison_verdict(zone, _op, value)

            return _ZoneConjunct(column, comparison)
        return None
    if isinstance(node, Between):
        column = _segment_column(node.operand, table, binding_name)
        if (column is None or node.low.referenced_columns()
                or node.high.referenced_columns()):
            return None

        def between(zone, _node=node):
            low = _fold(_node.low, evaluation)
            high = _fold(_node.high, evaluation)
            if low is _UNFOLDABLE or high is _UNFOLDABLE:
                return _UNKNOWN
            if isinstance(low, str) or isinstance(high, str):
                # String BETWEEN ordering differs between the row and
                # batch paths; stay out of it.
                return _UNKNOWN
            low_any, low_all = _comparison_verdict(zone, ">=", low)
            high_any, high_all = _comparison_verdict(zone, "<=", high)
            if _node.negated:
                inverse_any, _ = _comparison_verdict(zone, "<", low)
                inverse_any2, _ = _comparison_verdict(zone, ">", high)
                exact = zone is not None and not zone.has_null
                return (inverse_any or inverse_any2,
                        exact and not (low_any and high_any)
                        and zone.nonnull > 0)
            return (low_any and high_any, low_all and high_all)

        return _ZoneConjunct(column, between)
    if isinstance(node, InList):
        column = _segment_column(node.operand, table, binding_name)
        if column is None or node.negated:
            return None
        if any(item.referenced_columns() for item in node.items):
            return None

        def in_list(zone, _items=node.items):
            any_possible = False
            all_match = False
            for item in _items:
                value = _fold(item, evaluation)
                if value is _UNFOLDABLE:
                    return _UNKNOWN
                item_any, item_all = _comparison_verdict(zone, "=", value)
                any_possible = any_possible or item_any
                all_match = all_match or item_all
            return (any_possible, all_match)

        return _ZoneConjunct(column, in_list)
    if isinstance(node, UnaryOp) and node.op in ("is null", "is not null"):
        column = _segment_column(node.operand, table, binding_name)
        if column is None:
            return None
        if node.op == "is null":
            def is_null(zone):
                if zone is None:
                    return _UNKNOWN
                return (zone.has_null, zone.null_count == zone.rows)
            return _ZoneConjunct(column, is_null)

        def is_not_null(zone):
            if zone is None:
                return _UNKNOWN
            return (zone.null_count < zone.rows, not zone.has_null)
        return _ZoneConjunct(column, is_not_null)
    return None


def _conjuncts_of(node: Expression) -> list[Expression]:
    if isinstance(node, BinaryOp) and node.op == "and":
        return _conjuncts_of(node.left) + _conjuncts_of(node.right)
    return [node]


def compile_zone_predicate(expression: Expression,
                           evaluation: EvaluationContext, table,
                           binding_name: str) -> Optional[Callable]:
    """A per-segment verdict function for ``expression``, or None.

    The returned callable maps a :class:`SealedSegment` to
    ``(any_possible, all_match)``: *any_possible* False proves no live
    row in the segment satisfies the predicate (skip it without reading
    data); *all_match* True proves every sealed row does (combined with
    a zero tombstone count, aggregates can answer from the zone map
    alone).  Unsupported conjuncts degrade to "maybe" — never to a
    skip.
    """
    conjuncts = _conjuncts_of(expression)
    analyzed = [_analyze(conjunct, evaluation, table, binding_name)
                for conjunct in conjuncts]
    known = [conjunct for conjunct in analyzed if conjunct is not None]
    if not known:
        return None
    complete = len(known) == len(analyzed)

    def verdict(segment: SealedSegment) -> tuple[bool, bool]:
        all_match = complete
        for conjunct in known:
            any_possible, conjunct_all = conjunct.verdict(
                segment.zones.get(conjunct.column))
            if not any_possible:
                return (False, False)
            all_match = all_match and conjunct_all
        return (True, all_match)

    return verdict


def runtime_range_zone(column: str, low, high) -> Callable:
    """Zone form of a runtime join filter: build-key bounds vs segment.

    After a hash join's build side finishes, ``[low, high]`` is the
    min/max of the numeric build keys; a probe-side segment whose zone
    for ``column`` lies entirely outside that range cannot contain a
    matching join key, so it can be skipped without being read.  The
    verdict callable has the ``(any_possible, all_match)`` shape of
    :func:`compile_zone_predicate` — ``all_match`` is always False
    because a range overlap never proves membership in the build's
    exact key set.

    Pruning stays sound under tombstones: zone bounds cover a superset
    of the live rows, and an all-NULL zone is skippable outright since
    NULL join keys match nothing on either side.
    """

    def verdict(segment: SealedSegment) -> tuple[bool, bool]:
        zone = segment.zones.get(column)
        if zone is None:
            return (True, False)
        if zone.null_count >= zone.rows:
            return (False, False)
        if zone.kind != "num":
            return (True, False)
        if zone.cmp_max < low or zone.cmp_min > high:
            return (False, False)
        return (True, False)

    return verdict
