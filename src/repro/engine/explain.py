"""Query-plan rendering.

The paper shows graphical plans for Query 1 (Figure 10: a table-valued
function nested-loop-joined against PhotoObj, sorted, inserted into a
results table), Query 15A (Figure 11: a parallel table scan) and the
NEO pair query (Figure 12: a nested-loop join of two index scans).
:func:`render_plan` produces an indented text rendering of the same
information: operator, target object, predicate, estimated rows and —
after execution — actual rows (plus worker/morsel counts for
morsel-parallel operators).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .operators import PhysicalOperator
from .stats import q_error

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .operators import PhysicalPlan


def render_operator(operator: PhysicalOperator, depth: int = 0,
                    executed: bool = False, timed: bool = False) -> list[str]:
    indent = "  " * depth
    details = operator.details()
    estimated = (operator.planner_rows if operator.planner_rows is not None
                 else operator.estimated_rows())
    line = f"{indent}-> {operator.label}"
    if details:
        line += f" [{details}]"
    line += f" (estimated rows={estimated}"
    if operator.planner_cost:
        line += f" cost={operator.planner_cost:.1f}"
    if operator.workers > 1:
        line += f" workers={operator.workers}"
    if executed or operator.actual_rows:
        # After EXPLAIN ANALYZE, every operator reports its actual row
        # count — zero included: "produced nothing" is an actual, not a
        # missing estimate.  The estimate is repeated as ``est=`` with
        # its q-error so misestimates (the cardinality-feedback trigger)
        # are visible right next to the observed count.
        line += f", actual rows={operator.actual_rows}"
        if timed and operator.actual_seconds > 0.0:
            # Inclusive wall time from the span clocks installed by
            # ``execute(time_operators=True)``; operators the execution
            # never drove row-at-a-time (fused vectorized children)
            # carry no time of their own and print none.
            line += f" time={operator.actual_seconds * 1000.0:.3f}ms"
        if operator.planner_rows is not None:
            error = q_error(operator.planner_rows, operator.actual_rows)
            line += f" est={operator.planner_rows} q-err={error:.1f}"
        if operator.actual_morsels:
            line += f" morsels={operator.actual_morsels}"
        scanned = getattr(operator, "actual_segments_scanned", 0)
        skipped = getattr(operator, "actual_segments_skipped", 0)
        if scanned or skipped:
            line += (f" segments={scanned}/{scanned + skipped}"
                     f" skipped={skipped}")
        kind = getattr(operator, "runtime_filter_kind", None)
        if kind is not None:
            line += (f" runtime_filter: {kind},"
                     f" pruned={operator.runtime_segments_pruned}"
                     f"/{operator.runtime_rows_pruned}")
    line += ")"
    lines = [line]
    for child in operator.children():
        lines.extend(render_operator(child, depth + 1, executed, timed))
    return lines


def render_plan(plan: "PhysicalPlan") -> str:
    header = []
    if plan.description:
        header.append(plan.description)
    statistics = plan.last_statistics
    lines = header + render_operator(plan.root, executed=statistics is not None,
                                     timed=getattr(plan, "last_timed", False))
    if statistics is not None:
        footer = (f"[compiled exprs={statistics.exprs_compiled}; "
                  f"plan cache hits={statistics.plan_cache_hits} "
                  f"misses={statistics.plan_cache_misses}")
        if statistics.batches_processed:
            footer += (f"; batches={statistics.batches_processed} "
                       f"({statistics.batch_rows} rows)")
        if statistics.morsels_dispatched:
            footer += (f"; morsels={statistics.morsels_dispatched} "
                       f"workers={statistics.parallel_workers}")
        lines.append(footer + "]")
    return "\n".join(lines)


def plan_operators(plan: "PhysicalPlan") -> list[str]:
    """The operator labels of a plan in pre-order (handy for tests)."""
    labels: list[str] = []

    def walk(operator: PhysicalOperator) -> None:
        labels.append(operator.label)
        for child in operator.children():
            walk(child)

    walk(plan.root)
    return labels
