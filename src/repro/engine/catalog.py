"""The database catalog.

A :class:`Database` owns tables, views, indices (via tables), scalar
and table-valued functions, and temporary result tables (the ``##name``
tables the paper's queries SELECT INTO).  It also exposes the metadata
browsing interface that SkyServerQA's object browser presents (tables,
columns, types, units, indexes, constraints and comments) and the
space-accounting summary used to reproduce Table 1.
"""

from __future__ import annotations

import datetime as _dt
import threading
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from .constraints import CheckConstraint, ConstraintReport, ForeignKey, PrimaryKey
from .errors import CatalogError
from .expressions import EvaluationContext
from .functions import FunctionRegistry
from .stats import TableStatistics, collect_table_statistics
from .table import Table
from .types import Column
from .view import ResolvedRelation, View, fold_view_chain


class Database:
    """An in-memory database: the engine's equivalent of one SQL Server catalog."""

    def __init__(self, name: str = "SkyServer", *, description: str = ""):
        self.name = name
        self.description = description
        self.tables: dict[str, Table] = {}
        self.views: dict[str, View] = {}
        self.functions = FunctionRegistry()
        #: ANALYZE snapshots keyed by lower-cased table name; the
        #: planner's cost-based optimizer reads them, ``ANALYZE`` and
        #: the loader write them.
        self.statistics: dict[str, TableStatistics] = {}
        self._clock: Callable[[], _dt.datetime] = lambda: _dt.datetime.now(tz=_dt.timezone.utc)
        #: Bumped by every DDL change (tables, views, indexes, functions);
        #: the session plan cache invalidates entries planned under an
        #: older version.
        self.schema_version = 0
        #: The database-wide snapshot epoch: advanced whenever a table's
        #: exclusive (write) section completes and on every DDL bump.  A
        #: reader holding read locks can record the epoch as a snapshot
        #: identifier — an unchanged epoch means nothing has changed.
        self.epoch = 0
        self._epoch_lock = threading.Lock()
        #: Durability manager (:class:`repro.engine.durable.DurabilityManager`)
        #: when this database is backed by disk, else ``None``.  The
        #: catalog notifies it of table create/drop so new tables get
        #: WAL hooks and checkpoints cover the full table set.
        self.durability = None

    def checkpoint(self) -> Optional[dict[str, Any]]:
        """Write a durable checkpoint and truncate the WAL (no-op and
        ``None`` when the database is purely in-memory)."""
        if self.durability is None:
            return None
        return self.durability.checkpoint()

    def bump_schema_version(self) -> None:
        with self._epoch_lock:
            self.schema_version += 1
            self.epoch += 1

    def _bump_epoch(self) -> None:
        with self._epoch_lock:
            self.epoch += 1

    # -- clock (shared by all tables, lets the loader control timestamps) --

    def set_clock(self, clock: Callable[[], _dt.datetime]) -> None:
        self._clock = clock
        for table in self.tables.values():
            table.set_clock(clock)

    def now(self) -> _dt.datetime:
        return self._clock()

    # -- tables -------------------------------------------------------------

    def create_table(self, name: str, columns: Sequence[Column], *,
                     primary_key: Optional[PrimaryKey] = None,
                     foreign_keys: Sequence[ForeignKey] = (),
                     checks: Sequence[CheckConstraint] = (),
                     description: str = "",
                     replace: bool = False,
                     storage: str = "row") -> Table:
        key = name.lower()
        if key in self._lowered_table_names() and not replace:
            raise CatalogError(f"table {name!r} already exists")
        if replace:
            self.drop_table(name, if_exists=True)
        table = Table(name, columns, primary_key=primary_key,
                      foreign_keys=foreign_keys, checks=checks,
                      description=description, storage=storage)
        table.set_clock(self._clock)
        table.on_schema_change(self.bump_schema_version)
        table.lock.on_exclusive_release = self._bump_epoch
        self.tables[name] = table
        self.bump_schema_version()
        if self.durability is not None:
            self.durability.table_created(table)
        return table

    def drop_table(self, name: str, *, if_exists: bool = False) -> None:
        for existing in list(self.tables):
            if existing.lower() == name.lower():
                del self.tables[existing]
                self.statistics.pop(existing.lower(), None)
                self.bump_schema_version()
                if self.durability is not None:
                    self.durability.table_dropped(existing)
                return
        if not if_exists:
            raise CatalogError(f"no table named {name!r}")

    def has_table(self, name: str) -> bool:
        return name.lower() in self._lowered_table_names()

    def table(self, name: str) -> Table:
        key = name.lower()
        for existing, table in self.tables.items():
            if existing.lower() == key:
                return table
        raise CatalogError(f"no table named {name!r}")

    def _lowered_table_names(self) -> set[str]:
        return {name.lower() for name in self.tables}

    def table_names(self) -> list[str]:
        return sorted(self.tables, key=str.lower)

    # -- views ---------------------------------------------------------------

    def create_view(self, view: View, *, replace: bool = False) -> View:
        key = view.name.lower()
        if key in {existing.lower() for existing in self.views} and not replace:
            raise CatalogError(f"view {view.name!r} already exists")
        if key in self._lowered_table_names():
            raise CatalogError(f"a table named {view.name!r} already exists")
        self.views[view.name] = view
        self.bump_schema_version()
        return view

    def has_view(self, name: str) -> bool:
        return name.lower() in {existing.lower() for existing in self.views}

    def view(self, name: str) -> View:
        key = name.lower()
        for existing, view in self.views.items():
            if existing.lower() == key:
                return view
        raise CatalogError(f"no view named {name!r}")

    def view_names(self) -> list[str]:
        return sorted(self.views, key=str.lower)

    def resolve_relation(self, name: str) -> ResolvedRelation:
        """Fold views down to a base table; raises if the base table is missing."""
        resolved = fold_view_chain(name, self.views)
        if not self.has_table(resolved.table_name):
            raise CatalogError(f"no table or view named {name!r}")
        return resolved

    # -- functions -------------------------------------------------------------

    def register_scalar_function(self, name: str, implementation: Callable[..., Any], *,
                                 description: str = "", replace: bool = False) -> None:
        self.functions.register_scalar(name, implementation,
                                       description=description, replace=replace)
        self.bump_schema_version()

    def register_table_function(self, name: str, columns: Sequence[Column],
                                implementation: Callable[..., Iterable[Mapping[str, Any]]], *,
                                description: str = "", row_estimate: int = 10,
                                replace: bool = False) -> None:
        self.functions.register_table_valued(name, columns, implementation,
                                             description=description,
                                             row_estimate=row_estimate, replace=replace)
        self.bump_schema_version()

    def evaluation_context(self, variables: Optional[Mapping[str, Any]] = None) -> EvaluationContext:
        """Build the ambient context used to evaluate expressions in this database."""
        return EvaluationContext(functions=self.functions.scalar_callables(),
                                 variables={k.lower(): v for k, v in (variables or {}).items()})

    # -- statistics (the ANALYZE subsystem) ------------------------------------

    def analyze_table(self, name: str) -> TableStatistics:
        """Collect and store statistics for one table (SQL ``ANALYZE name``).

        Bumps the schema version: cached plans were costed against the
        old statistics and must be re-planned.
        """
        table = self.table(name)
        with table.lock.read():
            statistics = collect_table_statistics(table)
        self.statistics[table.name.lower()] = statistics
        self.bump_schema_version()
        return statistics

    def analyze(self, table_names: Optional[Sequence[str]] = None) -> list[TableStatistics]:
        """ANALYZE several tables (default: every table in the catalog)."""
        names = table_names if table_names is not None else self.table_names()
        return [self.analyze_table(name) for name in names]

    def table_statistics(self, name: str) -> Optional[TableStatistics]:
        return self.statistics.get(name.lower())

    def statistics_freshness(self) -> list[dict[str, Any]]:
        """Per-table staleness report (surfaced by ``site_statistics``)."""
        report = []
        for name in self.table_names():
            table = self.table(name)
            statistics = self.table_statistics(name)
            entry: dict[str, Any] = {
                "table": table.name,
                "analyzed": statistics is not None,
                "modification_counter": table.modification_counter,
            }
            if statistics is not None:
                entry["analyzed_at_modification"] = statistics.modification_counter
                entry["modifications_since_analyze"] = statistics.modifications_since(table)
                entry["stale"] = statistics.is_stale(table)
            report.append(entry)
        return report

    # -- concurrency (the serving layer's lock/epoch view) ----------------------

    def concurrency_statistics(self) -> dict[str, Any]:
        """Aggregate lock-acquisition/contention counters plus the epoch.

        This is the ``site_statistics()["serving"]["locks"]`` payload:
        how often readers and writers took table locks, and how often
        either side had to wait (contention), summed over every table.
        """
        totals = {"read_acquisitions": 0, "write_acquisitions": 0,
                  "read_contentions": 0, "write_contentions": 0}
        contended: list[str] = []
        for name in self.table_names():
            statistics = self.table(name).lock.statistics()
            for key in totals:
                totals[key] += statistics[key]
            if statistics["read_contentions"] or statistics["write_contentions"]:
                contended.append(name)
        return {"epoch": self.epoch, "contended_tables": contended, **totals}

    # -- integrity validation (post-load pass) ---------------------------------

    def validate_table(self, name: str) -> ConstraintReport:
        """Re-check NOT NULL and FK constraints for every row of a table."""
        table = self.table(name)
        report = ConstraintReport(table=table.name)
        nullable = {column.name.lower() for column in table.columns if column.nullable}
        for _row_id, row in table.iter_rows():
            report.rows_checked += 1
            for column in table.columns:
                if column.name.lower() not in nullable and row.get(column.name.lower()) is None:
                    report.add(f"NULL in NOT NULL column {column.name}")
            for foreign_key in table.foreign_keys:
                key = foreign_key.key_of(row)
                if key is None:
                    continue
                referenced = self.table(foreign_key.referenced_table)
                if not referenced.has_key(foreign_key.referenced_columns, key):
                    report.add(
                        f"dangling FK {'/'.join(foreign_key.columns)}={key!r} "
                        f"-> {foreign_key.referenced_table}")
        return report

    def validate(self, table_names: Optional[Sequence[str]] = None) -> list[ConstraintReport]:
        names = table_names if table_names is not None else self.table_names()
        return [self.validate_table(name) for name in names]

    # -- space accounting (Table 1) ---------------------------------------------

    def size_report(self) -> list[dict[str, Any]]:
        """Per-table record counts and byte sizes, mirroring Table 1."""
        report = []
        for name in self.table_names():
            table = self.table(name)
            report.append({
                "table": table.name,
                "records": table.row_count,
                "data_bytes": table.data_bytes,
                "index_bytes": table.index_bytes(),
                "total_bytes": table.data_bytes + table.index_bytes(),
            })
        return report

    def total_bytes(self) -> int:
        return sum(entry["total_bytes"] for entry in self.size_report())

    # -- schema browser -----------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Full metadata tree (the SkyServerQA object browser's data source)."""
        return {
            "database": self.name,
            "description": self.description,
            "tables": [self.table(name).describe() for name in self.table_names()],
            "views": [self.view(name).describe() for name in self.view_names()],
            "functions": self.functions.describe(),
        }
