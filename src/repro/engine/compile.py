"""Expression compilation: AST subtrees become plain Python closures.

The interpreted evaluator (:meth:`Expression.evaluate`) pays a virtual
dispatch, an operator-string comparison and often a fresh ``RowScope``
for every row.  For the hot operators that is the dominant CPU cost of a
query, so each operator instead compiles its expressions **once per
execution** into closures:

* :func:`compile_expression` produces ``Callable[[RowScope], Any]`` —
  a drop-in replacement for ``expression.evaluate(scope, context)``
  with identical SQL three-valued-NULL semantics, short-circuit
  AND/OR, and identical error behaviour;
* :func:`compile_row_expression` produces ``Callable[[dict], Any]``
  for the fused single-table fast path: column references become
  direct dictionary reads, skipping ``RowScope`` construction and its
  case-insensitive key scans entirely.  It raises
  :class:`RowCompileError` when an expression cannot be resolved
  against the one table (the caller then falls back to the general
  path);
* constant subtrees are folded at compile time (``2*3+1`` evaluates
  once, session variables are frozen to their per-execution values,
  constant LIKE patterns pre-compile their regex, constant IN lists
  pre-evaluate their candidates).

Folding is conservative: a constant subtree whose evaluation raises is
left as a lazy closure so errors surface exactly where the interpreter
would raise them (or not at all, when short-circuiting skips them).
"""

from __future__ import annotations

import math
import re
from operator import eq, ge, gt, itemgetter, le, lt, ne
from typing import Any, Callable

from .errors import ExpressionError, UnknownColumnError, UnknownFunctionError
from .expressions import (_ARITHMETIC, _BITWISE, _BUILTIN_FUNCTIONS,
                          _COMPARISON, AggregateCall, Between,
                          BinaryOp, CaseWhen, ColumnRef, EvaluationContext,
                          Expression, FunctionCall, InList, Like, Literal,
                          Star, UnaryOp, Variable, like_regex)
from .types import NULL

#: A compiled scalar expression.  The single argument is a RowScope for
#: :func:`compile_expression` and a plain row dict for
#: :func:`compile_row_expression`.
CompiledExpression = Callable[[Any], Any]


class RowCompileError(Exception):
    """An expression cannot be compiled in direct-row mode.

    Raised during :func:`compile_row_expression` when a node references
    a column outside the scanned table, contains an aggregate, or is a
    node type the row-mode compiler does not support.  Callers fall
    back to the general scope-based path.
    """


_COMPARATORS = {"=": eq, "<>": ne, "!=": ne, "<": lt, "<=": le, ">": gt, ">=": ge}


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def compile_expression(expression: Expression,
                       evaluation: EvaluationContext) -> CompiledExpression:
    """Compile ``expression`` to a closure over a :class:`RowScope`.

    ``compiled(scope)`` is equivalent to
    ``expression.evaluate(scope, evaluation)`` for the ``evaluation``
    context given here (session variables are frozen at compile time,
    which is sound because compilation happens per execution).
    """
    fn, _is_const = _Compiler(evaluation).compile(expression)
    return fn


def compile_row_expression(expression: Expression, evaluation: EvaluationContext,
                           table: "Any", binding_name: str) -> CompiledExpression:
    """Compile ``expression`` to a closure over a plain row dict.

    Column references must resolve to columns of ``table`` (qualified by
    ``binding_name`` or unqualified); raises :class:`RowCompileError`
    otherwise.
    """
    fn, _is_const = _RowCompiler(evaluation, table, binding_name).compile(expression)
    return fn


def supports_row_mode(expression: Expression, table: "Any", binding_name: str) -> bool:
    """True when :func:`compile_row_expression` would accept ``expression``."""
    try:
        _RowModeProbe(table, binding_name).check(expression)
    except RowCompileError:
        return False
    return True


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------

class _Compiler:
    """Bottom-up compiler producing ``(closure, is_constant)`` pairs."""

    def __init__(self, evaluation: EvaluationContext):
        self.evaluation = evaluation

    # -- dispatch -----------------------------------------------------------

    def compile(self, node: Expression) -> tuple[CompiledExpression, bool]:
        if isinstance(node, Literal):
            value = node.value
            return (lambda _target: value), True
        if isinstance(node, ColumnRef):
            return self.column(node)
        if isinstance(node, Variable):
            return self.variable(node)
        if isinstance(node, BinaryOp):
            return self.binary(node)
        if isinstance(node, UnaryOp):
            return self.unary(node)
        if isinstance(node, Between):
            return self.between(node)
        if isinstance(node, InList):
            return self.in_list(node)
        if isinstance(node, Like):
            return self.like(node)
        if isinstance(node, FunctionCall):
            return self.function_call(node)
        if isinstance(node, CaseWhen):
            return self.case_when(node)
        if isinstance(node, AggregateCall):
            return self.aggregate(node)
        if isinstance(node, Star):
            def star(_target: Any) -> Any:
                raise ExpressionError("'*' cannot be evaluated as a scalar expression")
            return star, False
        return self.fallback(node)

    def fallback(self, node: Expression) -> tuple[CompiledExpression, bool]:
        """Unknown node subclass: defer to the interpreter."""
        evaluation = self.evaluation
        return (lambda scope: node.evaluate(scope, evaluation)), False

    # -- leaves -------------------------------------------------------------

    def column(self, node: ColumnRef) -> tuple[CompiledExpression, bool]:
        name, qualifier = node.name, node.qualifier
        return (lambda scope: scope.lookup(name, qualifier)), False

    def variable(self, node: Variable) -> tuple[CompiledExpression, bool]:
        evaluation = self.evaluation
        try:
            value = evaluation.variable(node.name)
        except ExpressionError:
            # Undeclared: raise at evaluation time, exactly like the interpreter.
            name = node.name
            return (lambda _target: evaluation.variable(name)), False
        return (lambda _target: value), True

    # -- folding ------------------------------------------------------------

    def _fold(self, fn: CompiledExpression) -> tuple[CompiledExpression, bool]:
        """Evaluate a constant closure once; stay lazy if it raises."""
        try:
            value = fn(None)
        except Exception:
            return fn, False
        return (lambda _target: value), True

    # -- operators ----------------------------------------------------------

    def binary(self, node: BinaryOp) -> tuple[CompiledExpression, bool]:
        op = node.op
        left_fn, left_const = self.compile(node.left)
        right_fn, right_const = self.compile(node.right)
        if op == "and":
            fn = _compile_and(left_fn, right_fn)
        elif op == "or":
            fn = _compile_or(left_fn, right_fn)
        elif op in _COMPARISON:
            fn = _compile_comparison(op, left_fn, right_fn)
        elif op in _ARITHMETIC:
            fn = _compile_arithmetic(op, left_fn, right_fn)
        elif op in _BITWISE:
            fn = _compile_bitwise(op, left_fn, right_fn)
        else:
            def fn(_target: Any) -> Any:
                raise ExpressionError(f"unknown binary operator {op!r}")
        if left_const and right_const:
            return self._fold(fn)
        return fn, False

    def unary(self, node: UnaryOp) -> tuple[CompiledExpression, bool]:
        op = node.op
        operand_fn, operand_const = self.compile(node.operand)
        if op == "is null":
            fn: CompiledExpression = lambda target: operand_fn(target) is NULL
        elif op == "is not null":
            fn = lambda target: operand_fn(target) is not NULL
        elif op == "-":
            def fn(target: Any) -> Any:
                value = operand_fn(target)
                return NULL if value is NULL else -value
        elif op == "+":
            def fn(target: Any) -> Any:
                value = operand_fn(target)
                return NULL if value is NULL else value
        elif op == "not":
            def fn(target: Any) -> Any:
                value = operand_fn(target)
                return NULL if value is NULL else not bool(value)
        else:
            def fn(target: Any) -> Any:
                if operand_fn(target) is NULL:
                    return NULL
                raise ExpressionError(f"unknown unary operator {op!r}")
        if operand_const:
            return self._fold(fn)
        return fn, False

    def between(self, node: Between) -> tuple[CompiledExpression, bool]:
        operand_fn, operand_const = self.compile(node.operand)
        low_fn, low_const = self.compile(node.low)
        high_fn, high_const = self.compile(node.high)
        negated = node.negated

        def fn(target: Any) -> Any:
            value = operand_fn(target)
            low = low_fn(target)
            high = high_fn(target)
            if value is NULL or low is NULL or high is NULL:
                return NULL
            result = low <= value <= high
            return (not result) if negated else result

        if operand_const and low_const and high_const:
            return self._fold(fn)
        return fn, False

    def in_list(self, node: InList) -> tuple[CompiledExpression, bool]:
        operand_fn, operand_const = self.compile(node.operand)
        compiled_items = [self.compile(item) for item in node.items]
        negated = node.negated
        if all(is_const for _fn, is_const in compiled_items):
            candidates = [item_fn(None) for item_fn, _is_const in compiled_items]

            def fn(target: Any) -> Any:
                value = operand_fn(target)
                if value is NULL:
                    return NULL
                return _in_candidates(value, candidates, negated)

            if operand_const:
                return self._fold(fn)
            return fn, False

        item_fns = [item_fn for item_fn, _is_const in compiled_items]

        def fn(target: Any) -> Any:
            value = operand_fn(target)
            if value is NULL:
                return NULL
            # The generator keeps the interpreter's laziness: items after
            # the first match are never evaluated (so they cannot raise).
            return _in_candidates(value, (item_fn(target) for item_fn in item_fns),
                                  negated)

        return fn, False

    def like(self, node: Like) -> tuple[CompiledExpression, bool]:
        operand_fn, operand_const = self.compile(node.operand)
        pattern_fn, pattern_const = self.compile(node.pattern)
        negated = node.negated
        if pattern_const:
            pattern = pattern_fn(None)
            if pattern is NULL:
                def fn(target: Any) -> Any:
                    operand_fn(target)  # preserve evaluation-order errors
                    return NULL
            else:
                regex = re.compile(like_regex(pattern), re.IGNORECASE)

                def fn(target: Any) -> Any:
                    value = operand_fn(target)
                    if value is NULL:
                        return NULL
                    result = regex.match(str(value)) is not None
                    return (not result) if negated else result
            if operand_const:
                return self._fold(fn)
            return fn, False

        def fn(target: Any) -> Any:
            value = operand_fn(target)
            pattern = pattern_fn(target)
            if value is NULL or pattern is NULL:
                return NULL
            result = re.match(like_regex(pattern), str(value),
                              flags=re.IGNORECASE) is not None
            return (not result) if negated else result

        return fn, False

    def function_call(self, node: FunctionCall) -> tuple[CompiledExpression, bool]:
        arg_fns = [fn for fn, _is_const in (self.compile(arg) for arg in node.args)]
        lowered = node.name.lower()
        bare = lowered[len("dbo."):] if lowered.startswith("dbo.") else lowered
        evaluation = self.evaluation
        func = (evaluation.functions.get(lowered) or evaluation.functions.get(bare)
                or _BUILTIN_FUNCTIONS.get(bare))
        if func is None:
            name = node.name

            def fn(target: Any) -> Any:
                for arg_fn in arg_fns:  # arguments evaluate first, as interpreted
                    arg_fn(target)
                raise UnknownFunctionError(f"unknown function {name!r}")

            return fn, False
        # Functions may be impure (fGetUrlExpId, random samplers): never folded.
        return (lambda target: func(*[arg_fn(target) for arg_fn in arg_fns])), False

    def case_when(self, node: CaseWhen) -> tuple[CompiledExpression, bool]:
        branches = [(self.compile(condition), self.compile(value))
                    for condition, value in node.branches]
        branch_fns = [(cond_fn, val_fn)
                      for (cond_fn, _cc), (val_fn, _vc) in branches]
        default = self.compile(node.default) if node.default is not None else None

        if default is not None:
            default_fn, default_const = default
        else:
            default_fn, default_const = (lambda _target: NULL), True

        def fn(target: Any) -> Any:
            for cond_fn, val_fn in branch_fns:
                if cond_fn(target) is True:
                    return val_fn(target)
            return default_fn(target)

        all_const = default_const and all(
            cc and vc for (_f, cc), (_g, vc) in branches)
        if all_const:
            return self._fold(fn)
        return fn, False

    def aggregate(self, node: AggregateCall) -> tuple[CompiledExpression, bool]:
        key = node.result_key()
        rendering = node.sql()

        def fn(scope: Any) -> Any:
            try:
                return scope.lookup(key)
            except UnknownColumnError:
                raise ExpressionError(
                    f"aggregate {rendering} evaluated outside an aggregation operator")

        return fn, False


class _RowCompiler(_Compiler):
    """Compiles against a plain row dict of one table (the fused fast path)."""

    def __init__(self, evaluation: EvaluationContext, table: Any, binding_name: str):
        super().__init__(evaluation)
        self.table = table
        self.binding_name = binding_name.lower()

    def column(self, node: ColumnRef) -> tuple[CompiledExpression, bool]:
        qualifier = (node.qualifier or "").lower()
        if qualifier and qualifier != self.binding_name:
            raise RowCompileError(f"column {node.sql()} is outside {self.binding_name!r}")
        if not self.table.has_column(node.name):
            raise RowCompileError(f"no column {node.name!r} in {self.table.name!r}")
        # Table rows are keyed by lower-cased column name with every column
        # present, so a direct C-level itemgetter replaces scope.lookup.
        return itemgetter(node.name.lower()), False

    def aggregate(self, node: AggregateCall) -> tuple[CompiledExpression, bool]:
        raise RowCompileError("aggregates cannot run in the fused scan path")

    def fallback(self, node: Expression) -> tuple[CompiledExpression, bool]:
        raise RowCompileError(f"unsupported node {type(node).__name__} in row mode")


class _RowModeProbe:
    """Structural check for :func:`supports_row_mode` (no context needed)."""

    _SUPPORTED = (Literal, ColumnRef, Variable, BinaryOp, UnaryOp, Between,
                  InList, Like, FunctionCall, CaseWhen)

    def __init__(self, table: Any, binding_name: str):
        self.table = table
        self.binding_name = binding_name.lower()

    def check(self, node: Expression) -> None:
        if isinstance(node, ColumnRef):
            qualifier = (node.qualifier or "").lower()
            if qualifier and qualifier != self.binding_name:
                raise RowCompileError(node.sql())
            if not self.table.has_column(node.name):
                raise RowCompileError(node.sql())
            return
        if isinstance(node, AggregateCall) or not isinstance(node, self._SUPPORTED):
            raise RowCompileError(type(node).__name__)
        for child in node.children():
            self.check(child)


# ---------------------------------------------------------------------------
# Operator closures (shared between scope mode and row mode)
# ---------------------------------------------------------------------------

def _compile_and(left_fn: CompiledExpression,
                 right_fn: CompiledExpression) -> CompiledExpression:
    def fn(target: Any) -> Any:
        left = left_fn(target)
        if left is False:
            return False
        right = right_fn(target)
        if right is False:
            return False
        if left is NULL or right is NULL:
            return NULL
        return bool(left) and bool(right)
    return fn


def _compile_or(left_fn: CompiledExpression,
                right_fn: CompiledExpression) -> CompiledExpression:
    def fn(target: Any) -> Any:
        left = left_fn(target)
        if left is True:
            return True
        right = right_fn(target)
        if right is True:
            return True
        if left is NULL or right is NULL:
            return NULL
        return bool(left) or bool(right)
    return fn


def _compile_comparison(op: str, left_fn: CompiledExpression,
                        right_fn: CompiledExpression) -> CompiledExpression:
    compare = _COMPARATORS[op]

    def fn(target: Any) -> Any:
        left = left_fn(target)
        right = right_fn(target)
        if left is NULL or right is NULL:
            return NULL
        if isinstance(left, str) and isinstance(right, str):
            left, right = left.lower(), right.lower()
        try:
            return compare(left, right)
        except TypeError as exc:
            raise ExpressionError(f"cannot compare {left!r} {op} {right!r}") from exc

    return fn


def _compile_arithmetic(op: str, left_fn: CompiledExpression,
                        right_fn: CompiledExpression) -> CompiledExpression:
    if op == "+":
        def fn(target: Any) -> Any:
            left = left_fn(target)
            right = right_fn(target)
            if left is NULL or right is NULL:
                return NULL
            try:
                return left + right
            except TypeError as exc:
                raise ExpressionError(
                    f"cannot apply {op!r} to {left!r} and {right!r}") from exc
    elif op == "-":
        def fn(target: Any) -> Any:
            left = left_fn(target)
            right = right_fn(target)
            if left is NULL or right is NULL:
                return NULL
            try:
                return left - right
            except TypeError as exc:
                raise ExpressionError(
                    f"cannot apply {op!r} to {left!r} and {right!r}") from exc
    elif op == "*":
        def fn(target: Any) -> Any:
            left = left_fn(target)
            right = right_fn(target)
            if left is NULL or right is NULL:
                return NULL
            try:
                return left * right
            except TypeError as exc:
                raise ExpressionError(
                    f"cannot apply {op!r} to {left!r} and {right!r}") from exc
    elif op == "/":
        def fn(target: Any) -> Any:
            left = left_fn(target)
            right = right_fn(target)
            if left is NULL or right is NULL:
                return NULL
            try:
                if right == 0:
                    return NULL
                if isinstance(left, int) and isinstance(right, int):
                    # SQL Server integer division truncates toward zero.
                    quotient = abs(left) // abs(right)
                    return quotient if (left >= 0) == (right >= 0) else -quotient
                return left / right
            except TypeError as exc:
                raise ExpressionError(
                    f"cannot apply {op!r} to {left!r} and {right!r}") from exc
    elif op == "%":
        def fn(target: Any) -> Any:
            left = left_fn(target)
            right = right_fn(target)
            if left is NULL or right is NULL:
                return NULL
            try:
                if right == 0:
                    return NULL
                if isinstance(left, float) or isinstance(right, float):
                    return math.fmod(left, right)
                return left % right
            except TypeError as exc:
                raise ExpressionError(
                    f"cannot apply {op!r} to {left!r} and {right!r}") from exc
    else:
        def fn(_target: Any) -> Any:
            raise ExpressionError(f"unknown arithmetic operator {op!r}")
    return fn


def _compile_bitwise(op: str, left_fn: CompiledExpression,
                     right_fn: CompiledExpression) -> CompiledExpression:
    def fn(target: Any) -> Any:
        left = left_fn(target)
        right = right_fn(target)
        if left is NULL or right is NULL:
            return NULL
        try:
            left_int, right_int = int(left), int(right)
        except (TypeError, ValueError) as exc:
            raise ExpressionError(f"bitwise {op!r} requires integers") from exc
        if op == "&":
            return left_int & right_int
        if op == "|":
            return left_int | right_int
        return left_int ^ right_int
    return fn


def _in_candidates(value: Any, candidates: "Any", negated: bool) -> Any:
    saw_null = False
    value_is_str = isinstance(value, str)
    for candidate in candidates:
        if candidate is NULL:
            saw_null = True
            continue
        if value_is_str and isinstance(candidate, str):
            if value.lower() == candidate.lower():
                return not negated
        elif candidate == value:
            return not negated
    if saw_null:
        return NULL
    return negated


