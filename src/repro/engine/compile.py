"""Expression compilation: AST subtrees become plain Python closures.

The interpreted evaluator (:meth:`Expression.evaluate`) pays a virtual
dispatch, an operator-string comparison and often a fresh ``RowScope``
for every row.  For the hot operators that is the dominant CPU cost of a
query, so each operator instead compiles its expressions **once per
execution** into closures:

* :func:`compile_expression` produces ``Callable[[RowScope], Any]`` —
  a drop-in replacement for ``expression.evaluate(scope, context)``
  with identical SQL three-valued-NULL semantics, short-circuit
  AND/OR, and identical error behaviour;
* :func:`compile_row_expression` produces ``Callable[[dict], Any]``
  for the fused single-table fast path: column references become
  direct dictionary reads, skipping ``RowScope`` construction and its
  case-insensitive key scans entirely.  It raises
  :class:`RowCompileError` when an expression cannot be resolved
  against the one table (the caller then falls back to the general
  path);
* :func:`compile_vector_predicate` / :func:`compile_vector_projection`
  produce batch-at-a-time functions over
  :class:`~repro.engine.batch.ColumnBatch` selection vectors.  Where
  three-valued logic provably cannot surface (NULL-free columns,
  constant non-column operands, statically compatible types) the
  expression is translated into one **generated list comprehension**
  over the column buffers; otherwise the row-mode closure is driven
  over a NULL-mask-aware batch row view.  :class:`VectorCompileError`
  signals that not even row mode applies;
* constant subtrees are folded at compile time (``2*3+1`` evaluates
  once, session variables are frozen to their per-execution values,
  constant LIKE patterns pre-compile their regex, constant IN lists
  pre-evaluate their candidates).

Folding is conservative: a constant subtree whose evaluation raises is
left as a lazy closure so errors surface exactly where the interpreter
would raise them (or not at all, when short-circuiting skips them).

Thread safety: a compiled closure closes only over immutable compile
products (folded constants, pre-compiled regexes, the frozen variable
values) and *reads* whatever row dict, scope or column buffers it is
handed — it never writes shared state.  The morsel-parallel scan driver
(:mod:`repro.engine.parallel`) relies on this: one compiled closure is
shared by every worker, each applying it to its own morsel's
:class:`~repro.engine.batch.ColumnBatch` concurrently.  Keep new
codegen paths free of per-call mutable caches.  Runtime join filters
(:class:`repro.engine.operators.RuntimeJoinFilter`) obey the same
contract — built once after the hash build, then only *read* by
workers — so they compose with any closure compiled here without
changing which rows those closures ultimately accept.
"""

from __future__ import annotations

import math
import re
from operator import eq, ge, gt, itemgetter, le, lt, ne
from typing import Any, Callable, Optional

from .errors import ExpressionError, UnknownColumnError, UnknownFunctionError
from .expressions import (_ARITHMETIC, _BITWISE, _BUILTIN_FUNCTIONS,
                          _COMPARISON, AggregateCall, Between,
                          BinaryOp, CaseWhen, ColumnRef, EvaluationContext,
                          Expression, FunctionCall, InList, Like, Literal,
                          Star, UnaryOp, Variable, like_regex,
                          truncate_int_div)
from .types import DataType, NULL

#: A compiled scalar expression.  The single argument is a RowScope for
#: :func:`compile_expression` and a plain row dict for
#: :func:`compile_row_expression`.
CompiledExpression = Callable[[Any], Any]


class RowCompileError(Exception):
    """An expression cannot be compiled in direct-row mode.

    Raised during :func:`compile_row_expression` when a node references
    a column outside the scanned table, contains an aggregate, or is a
    node type the row-mode compiler does not support.  Callers fall
    back to the general scope-based path.
    """


class VectorCompileError(Exception):
    """An expression cannot run in the vectorized batch path at all.

    Raised by :func:`compile_vector_predicate` /
    :func:`compile_vector_projection` when not even the per-row
    fallback (a row-mode closure driven over a batch row view) can
    evaluate the expression against the scanned table.  Callers fall
    back to the row-at-a-time operator pipeline.
    """


_COMPARATORS = {"=": eq, "<>": ne, "!=": ne, "<": lt, "<=": le, ">": gt, ">=": ge}


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def compile_expression(expression: Expression,
                       evaluation: EvaluationContext) -> CompiledExpression:
    """Compile ``expression`` to a closure over a :class:`RowScope`.

    ``compiled(scope)`` is equivalent to
    ``expression.evaluate(scope, evaluation)`` for the ``evaluation``
    context given here (session variables are frozen at compile time,
    which is sound because compilation happens per execution).
    """
    fn, _is_const = _Compiler(evaluation).compile(expression)
    return fn


def compile_row_expression(expression: Expression, evaluation: EvaluationContext,
                           table: "Any", binding_name: str) -> CompiledExpression:
    """Compile ``expression`` to a closure over a plain row dict.

    Column references must resolve to columns of ``table`` (qualified by
    ``binding_name`` or unqualified); raises :class:`RowCompileError`
    otherwise.
    """
    fn, _is_const = _RowCompiler(evaluation, table, binding_name).compile(expression)
    return fn


def supports_row_mode(expression: Expression, table: "Any", binding_name: str) -> bool:
    """True when :func:`compile_row_expression` would accept ``expression``."""
    try:
        _RowModeProbe(table, binding_name).check(expression)
    except RowCompileError:
        return False
    return True


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------

class _Compiler:
    """Bottom-up compiler producing ``(closure, is_constant)`` pairs."""

    def __init__(self, evaluation: EvaluationContext):
        self.evaluation = evaluation

    # -- dispatch -----------------------------------------------------------

    def compile(self, node: Expression) -> tuple[CompiledExpression, bool]:
        if isinstance(node, Literal):
            value = node.value
            return (lambda _target: value), True
        if isinstance(node, ColumnRef):
            return self.column(node)
        if isinstance(node, Variable):
            return self.variable(node)
        if isinstance(node, BinaryOp):
            return self.binary(node)
        if isinstance(node, UnaryOp):
            return self.unary(node)
        if isinstance(node, Between):
            return self.between(node)
        if isinstance(node, InList):
            return self.in_list(node)
        if isinstance(node, Like):
            return self.like(node)
        if isinstance(node, FunctionCall):
            return self.function_call(node)
        if isinstance(node, CaseWhen):
            return self.case_when(node)
        if isinstance(node, AggregateCall):
            return self.aggregate(node)
        if isinstance(node, Star):
            def star(_target: Any) -> Any:
                raise ExpressionError("'*' cannot be evaluated as a scalar expression")
            return star, False
        return self.fallback(node)

    def fallback(self, node: Expression) -> tuple[CompiledExpression, bool]:
        """Unknown node subclass: defer to the interpreter."""
        evaluation = self.evaluation
        return (lambda scope: node.evaluate(scope, evaluation)), False

    # -- leaves -------------------------------------------------------------

    def column(self, node: ColumnRef) -> tuple[CompiledExpression, bool]:
        name, qualifier = node.name, node.qualifier
        return (lambda scope: scope.lookup(name, qualifier)), False

    def variable(self, node: Variable) -> tuple[CompiledExpression, bool]:
        evaluation = self.evaluation
        try:
            value = evaluation.variable(node.name)
        except ExpressionError:
            # Undeclared: raise at evaluation time, exactly like the interpreter.
            name = node.name
            return (lambda _target: evaluation.variable(name)), False
        return (lambda _target: value), True

    # -- folding ------------------------------------------------------------

    def _fold(self, fn: CompiledExpression) -> tuple[CompiledExpression, bool]:
        """Evaluate a constant closure once; stay lazy if it raises."""
        try:
            value = fn(None)
        except Exception:
            return fn, False
        return (lambda _target: value), True

    # -- operators ----------------------------------------------------------

    def binary(self, node: BinaryOp) -> tuple[CompiledExpression, bool]:
        op = node.op
        left_fn, left_const = self.compile(node.left)
        right_fn, right_const = self.compile(node.right)
        if op == "and":
            fn = _compile_and(left_fn, right_fn)
        elif op == "or":
            fn = _compile_or(left_fn, right_fn)
        elif op in _COMPARISON:
            fn = _compile_comparison(op, left_fn, right_fn)
        elif op in _ARITHMETIC:
            fn = _compile_arithmetic(op, left_fn, right_fn)
        elif op in _BITWISE:
            fn = _compile_bitwise(op, left_fn, right_fn)
        else:
            def fn(_target: Any) -> Any:
                raise ExpressionError(f"unknown binary operator {op!r}")
        if left_const and right_const:
            return self._fold(fn)
        return fn, False

    def unary(self, node: UnaryOp) -> tuple[CompiledExpression, bool]:
        op = node.op
        operand_fn, operand_const = self.compile(node.operand)
        if op == "is null":
            def fn(target: Any) -> Any:
                return operand_fn(target) is NULL
        elif op == "is not null":
            def fn(target: Any) -> Any:
                return operand_fn(target) is not NULL
        elif op == "-":
            def fn(target: Any) -> Any:
                value = operand_fn(target)
                return NULL if value is NULL else -value
        elif op == "+":
            def fn(target: Any) -> Any:
                value = operand_fn(target)
                return NULL if value is NULL else value
        elif op == "not":
            def fn(target: Any) -> Any:
                value = operand_fn(target)
                return NULL if value is NULL else not bool(value)
        else:
            def fn(target: Any) -> Any:
                if operand_fn(target) is NULL:
                    return NULL
                raise ExpressionError(f"unknown unary operator {op!r}")
        if operand_const:
            return self._fold(fn)
        return fn, False

    def between(self, node: Between) -> tuple[CompiledExpression, bool]:
        operand_fn, operand_const = self.compile(node.operand)
        low_fn, low_const = self.compile(node.low)
        high_fn, high_const = self.compile(node.high)
        negated = node.negated

        def fn(target: Any) -> Any:
            value = operand_fn(target)
            low = low_fn(target)
            high = high_fn(target)
            if value is NULL or low is NULL or high is NULL:
                return NULL
            result = low <= value <= high
            return (not result) if negated else result

        if operand_const and low_const and high_const:
            return self._fold(fn)
        return fn, False

    def in_list(self, node: InList) -> tuple[CompiledExpression, bool]:
        operand_fn, operand_const = self.compile(node.operand)
        compiled_items = [self.compile(item) for item in node.items]
        negated = node.negated
        if all(is_const for _fn, is_const in compiled_items):
            candidates = [item_fn(None) for item_fn, _is_const in compiled_items]

            def fn(target: Any) -> Any:
                value = operand_fn(target)
                if value is NULL:
                    return NULL
                return _in_candidates(value, candidates, negated)

            if operand_const:
                return self._fold(fn)
            return fn, False

        item_fns = [item_fn for item_fn, _is_const in compiled_items]

        def fn(target: Any) -> Any:
            value = operand_fn(target)
            if value is NULL:
                return NULL
            # The generator keeps the interpreter's laziness: items after
            # the first match are never evaluated (so they cannot raise).
            return _in_candidates(value, (item_fn(target) for item_fn in item_fns),
                                  negated)

        return fn, False

    def like(self, node: Like) -> tuple[CompiledExpression, bool]:
        operand_fn, operand_const = self.compile(node.operand)
        pattern_fn, pattern_const = self.compile(node.pattern)
        negated = node.negated
        if pattern_const:
            pattern = pattern_fn(None)
            if pattern is NULL:
                def fn(target: Any) -> Any:
                    operand_fn(target)  # preserve evaluation-order errors
                    return NULL
            else:
                regex = re.compile(like_regex(pattern), re.IGNORECASE)

                def fn(target: Any) -> Any:
                    value = operand_fn(target)
                    if value is NULL:
                        return NULL
                    result = regex.match(str(value)) is not None
                    return (not result) if negated else result
            if operand_const:
                return self._fold(fn)
            return fn, False

        def fn(target: Any) -> Any:
            value = operand_fn(target)
            pattern = pattern_fn(target)
            if value is NULL or pattern is NULL:
                return NULL
            result = re.match(like_regex(pattern), str(value),
                              flags=re.IGNORECASE) is not None
            return (not result) if negated else result

        return fn, False

    def function_call(self, node: FunctionCall) -> tuple[CompiledExpression, bool]:
        arg_fns = [fn for fn, _is_const in (self.compile(arg) for arg in node.args)]
        lowered = node.name.lower()
        bare = lowered[len("dbo."):] if lowered.startswith("dbo.") else lowered
        evaluation = self.evaluation
        func = (evaluation.functions.get(lowered) or evaluation.functions.get(bare)
                or _BUILTIN_FUNCTIONS.get(bare))
        if func is None:
            name = node.name

            def fn(target: Any) -> Any:
                for arg_fn in arg_fns:  # arguments evaluate first, as interpreted
                    arg_fn(target)
                raise UnknownFunctionError(f"unknown function {name!r}")

            return fn, False
        # Functions may be impure (fGetUrlExpId, random samplers): never folded.
        return (lambda target: func(*[arg_fn(target) for arg_fn in arg_fns])), False

    def case_when(self, node: CaseWhen) -> tuple[CompiledExpression, bool]:
        branches = [(self.compile(condition), self.compile(value))
                    for condition, value in node.branches]
        branch_fns = [(cond_fn, val_fn)
                      for (cond_fn, _cc), (val_fn, _vc) in branches]
        default = self.compile(node.default) if node.default is not None else None

        if default is not None:
            default_fn, default_const = default
        else:
            default_fn, default_const = (lambda _target: NULL), True

        def fn(target: Any) -> Any:
            for cond_fn, val_fn in branch_fns:
                if cond_fn(target) is True:
                    return val_fn(target)
            return default_fn(target)

        all_const = default_const and all(
            cc and vc for (_f, cc), (_g, vc) in branches)
        if all_const:
            return self._fold(fn)
        return fn, False

    def aggregate(self, node: AggregateCall) -> tuple[CompiledExpression, bool]:
        key = node.result_key()
        rendering = node.sql()

        def fn(scope: Any) -> Any:
            try:
                return scope.lookup(key)
            except UnknownColumnError:
                raise ExpressionError(
                    f"aggregate {rendering} evaluated outside an aggregation operator")

        return fn, False


class _RowCompiler(_Compiler):
    """Compiles against a plain row dict of one table (the fused fast path)."""

    def __init__(self, evaluation: EvaluationContext, table: Any, binding_name: str):
        super().__init__(evaluation)
        self.table = table
        self.binding_name = binding_name.lower()

    def column(self, node: ColumnRef) -> tuple[CompiledExpression, bool]:
        qualifier = (node.qualifier or "").lower()
        if qualifier and qualifier != self.binding_name:
            raise RowCompileError(f"column {node.sql()} is outside {self.binding_name!r}")
        if not self.table.has_column(node.name):
            raise RowCompileError(f"no column {node.name!r} in {self.table.name!r}")
        # Table rows are keyed by lower-cased column name with every column
        # present, so a direct C-level itemgetter replaces scope.lookup.
        return itemgetter(node.name.lower()), False

    def aggregate(self, node: AggregateCall) -> tuple[CompiledExpression, bool]:
        raise RowCompileError("aggregates cannot run in the fused scan path")

    def fallback(self, node: Expression) -> tuple[CompiledExpression, bool]:
        raise RowCompileError(f"unsupported node {type(node).__name__} in row mode")


class _RowModeProbe:
    """Structural check for :func:`supports_row_mode` (no context needed)."""

    _SUPPORTED = (Literal, ColumnRef, Variable, BinaryOp, UnaryOp, Between,
                  InList, Like, FunctionCall, CaseWhen)

    def __init__(self, table: Any, binding_name: str):
        self.table = table
        self.binding_name = binding_name.lower()

    def check(self, node: Expression) -> None:
        if isinstance(node, ColumnRef):
            qualifier = (node.qualifier or "").lower()
            if qualifier and qualifier != self.binding_name:
                raise RowCompileError(node.sql())
            if not self.table.has_column(node.name):
                raise RowCompileError(node.sql())
            return
        if isinstance(node, AggregateCall) or not isinstance(node, self._SUPPORTED):
            raise RowCompileError(type(node).__name__)
        for child in node.children():
            self.check(child)


# ---------------------------------------------------------------------------
# Operator closures (shared between scope mode and row mode)
# ---------------------------------------------------------------------------

def _compile_and(left_fn: CompiledExpression,
                 right_fn: CompiledExpression) -> CompiledExpression:
    def fn(target: Any) -> Any:
        left = left_fn(target)
        if left is False:
            return False
        right = right_fn(target)
        if right is False:
            return False
        if left is NULL or right is NULL:
            return NULL
        return bool(left) and bool(right)
    return fn


def _compile_or(left_fn: CompiledExpression,
                right_fn: CompiledExpression) -> CompiledExpression:
    def fn(target: Any) -> Any:
        left = left_fn(target)
        if left is True:
            return True
        right = right_fn(target)
        if right is True:
            return True
        if left is NULL or right is NULL:
            return NULL
        return bool(left) or bool(right)
    return fn


def _compile_comparison(op: str, left_fn: CompiledExpression,
                        right_fn: CompiledExpression) -> CompiledExpression:
    compare = _COMPARATORS[op]

    def fn(target: Any) -> Any:
        left = left_fn(target)
        right = right_fn(target)
        if left is NULL or right is NULL:
            return NULL
        if isinstance(left, str) and isinstance(right, str):
            left, right = left.lower(), right.lower()
        try:
            return compare(left, right)
        except TypeError as exc:
            raise ExpressionError(f"cannot compare {left!r} {op} {right!r}") from exc

    return fn


def _compile_arithmetic(op: str, left_fn: CompiledExpression,
                        right_fn: CompiledExpression) -> CompiledExpression:
    if op == "+":
        def fn(target: Any) -> Any:
            left = left_fn(target)
            right = right_fn(target)
            if left is NULL or right is NULL:
                return NULL
            try:
                return left + right
            except TypeError as exc:
                raise ExpressionError(
                    f"cannot apply {op!r} to {left!r} and {right!r}") from exc
    elif op == "-":
        def fn(target: Any) -> Any:
            left = left_fn(target)
            right = right_fn(target)
            if left is NULL or right is NULL:
                return NULL
            try:
                return left - right
            except TypeError as exc:
                raise ExpressionError(
                    f"cannot apply {op!r} to {left!r} and {right!r}") from exc
    elif op == "*":
        def fn(target: Any) -> Any:
            left = left_fn(target)
            right = right_fn(target)
            if left is NULL or right is NULL:
                return NULL
            try:
                return left * right
            except TypeError as exc:
                raise ExpressionError(
                    f"cannot apply {op!r} to {left!r} and {right!r}") from exc
    elif op == "/":
        def fn(target: Any) -> Any:
            left = left_fn(target)
            right = right_fn(target)
            if left is NULL or right is NULL:
                return NULL
            try:
                if right == 0:
                    return NULL
                if isinstance(left, int) and isinstance(right, int):
                    return truncate_int_div(left, right)
                return left / right
            except TypeError as exc:
                raise ExpressionError(
                    f"cannot apply {op!r} to {left!r} and {right!r}") from exc
    elif op == "%":
        def fn(target: Any) -> Any:
            left = left_fn(target)
            right = right_fn(target)
            if left is NULL or right is NULL:
                return NULL
            try:
                if right == 0:
                    return NULL
                if isinstance(left, float) or isinstance(right, float):
                    return math.fmod(left, right)
                return left % right
            except TypeError as exc:
                raise ExpressionError(
                    f"cannot apply {op!r} to {left!r} and {right!r}") from exc
    else:
        def fn(_target: Any) -> Any:
            raise ExpressionError(f"unknown arithmetic operator {op!r}")
    return fn


def _compile_bitwise(op: str, left_fn: CompiledExpression,
                     right_fn: CompiledExpression) -> CompiledExpression:
    def fn(target: Any) -> Any:
        left = left_fn(target)
        right = right_fn(target)
        if left is NULL or right is NULL:
            return NULL
        try:
            left_int, right_int = int(left), int(right)
        except (TypeError, ValueError) as exc:
            raise ExpressionError(f"bitwise {op!r} requires integers") from exc
        if op == "&":
            return left_int & right_int
        if op == "|":
            return left_int | right_int
        return left_int ^ right_int
    return fn


def _in_candidates(value: Any, candidates: "Any", negated: bool) -> Any:
    saw_null = False
    value_is_str = isinstance(value, str)
    for candidate in candidates:
        if candidate is NULL:
            saw_null = True
            continue
        if value_is_str and isinstance(candidate, str):
            if value.lower() == candidate.lower():
                return not negated
        elif candidate == value:
            return not negated
    if saw_null:
        return NULL
    return negated


# ---------------------------------------------------------------------------
# Vector compilation: expressions over column batches
# ---------------------------------------------------------------------------

#: A compiled vectorized expression.  Called with a
#: :class:`~repro.engine.batch.ColumnBatch` and a selection vector; a
#: predicate returns the narrowed selection, a projection returns one
#: value per selected position.
VectorExpression = Callable[[Any, list], list]


class _Unvectorizable(Exception):
    """Internal: the codegen fast path does not cover this expression.

    The vector compilers catch it and fall back to driving a row-mode
    closure over the batch's row view (still batch-at-a-time, but one
    closure call per row instead of one generated loop).
    """


#: SQL comparison operators to their Python spellings.
_PY_COMPARATORS = {"=": "==", "<>": "!=", "!=": "!=",
                   "<": "<", "<=": "<=", ">": ">", ">=": ">="}

#: Tags the codegen treats as orderable numbers (bool compares as 0/1,
#: exactly as the interpreter's comparison operators do).
_NUMERIC_TAGS = frozenset(("int", "float", "bool"))

_DTYPE_TAGS = {DataType.INTEGER: "int", DataType.BIGINT: "int",
               DataType.FLOAT: "float", DataType.BOOLEAN: "bool",
               DataType.TEXT: "str"}


def _value_tag(value: Any) -> str:
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "str"
    raise _Unvectorizable(f"constant of type {type(value).__name__}")


def _make_int_div(divisor: int) -> Callable[[int], int]:
    """SQL Server integer division by a non-zero constant (truncates toward 0)."""
    return lambda value: truncate_int_div(value, divisor)


class _VectorCodegen:
    """Translates an expression tree into Python source over column buffers.

    The generated code reads directly from a :class:`ColumnStore`'s
    per-column sequences inside one list comprehension — no per-row
    closure calls, no dicts, no scopes.  The translation is exact only
    where SQL three-valued logic cannot surface: every referenced column
    must be NULL-free (checked against the store's null counts), every
    non-column operand must fold to a non-NULL constant, and operand
    types must be statically compatible (so the interpreter's
    comparison/arithmetic errors cannot occur).  Anything else raises
    :class:`_Unvectorizable` and the caller uses the row-view fallback.
    """

    def __init__(self, evaluation: EvaluationContext, table: "Any", binding_name: str):
        self.evaluation = evaluation
        self.table = table
        self.storage = table.storage
        self.binding_name = binding_name.lower()
        self.env: dict[str, Any] = {}
        self.columns: list[str] = []
        self._scalar = _Compiler(evaluation)
        self._counter = 0

    # -- helpers -----------------------------------------------------------

    def const(self, value: Any) -> str:
        name = f"_k{self._counter}"
        self._counter += 1
        self.env[name] = value
        return name

    def constant_value(self, node: Expression) -> Any:
        """Fold ``node`` to a compile-time constant or raise."""
        fn, is_const = self._scalar.compile(node)
        if not is_const:
            raise _Unvectorizable(f"non-constant operand {node.sql()}")
        return fn(None)

    def use_column(self, name: str) -> str:
        lowered = name.lower()
        if lowered not in self.columns:
            self.columns.append(lowered)
        return f"_c_{lowered}"

    # -- dispatch ------------------------------------------------------------

    def emit(self, node: Expression) -> tuple[str, str]:
        """(python source, type tag) for one subtree."""
        if isinstance(node, Literal):
            return self.literal(node.value)
        if isinstance(node, ColumnRef):
            return self.column(node)
        if isinstance(node, Variable):
            return self.variable(node)
        if isinstance(node, BinaryOp):
            return self.binary(node)
        if isinstance(node, UnaryOp):
            return self.unary(node)
        if isinstance(node, Between):
            return self.between(node)
        if isinstance(node, InList):
            return self.in_list(node)
        if isinstance(node, Like):
            return self.like(node)
        raise _Unvectorizable(f"node {type(node).__name__}")

    # -- leaves --------------------------------------------------------------

    def literal(self, value: Any) -> tuple[str, str]:
        if value is NULL:
            raise _Unvectorizable("NULL literal")
        return self.const(value), _value_tag(value)

    def column(self, node: ColumnRef) -> tuple[str, str]:
        qualifier = (node.qualifier or "").lower()
        if qualifier and qualifier != self.binding_name:
            raise _Unvectorizable(f"column {node.sql()} outside {self.binding_name!r}")
        column = self.table.column(node.name)
        if column is None:
            raise _Unvectorizable(f"no column {node.name!r}")
        if self.storage.kind != "column":
            # Row-backed table: the public entry points still honour
            # their contract (row-view fallback, never AttributeError).
            raise _Unvectorizable("table is not column-backed")
        if self.storage.column_null_count(node.name) > 0:
            raise _Unvectorizable(f"column {node.name!r} holds NULLs")
        tag = _DTYPE_TAGS.get(column.dtype)
        if tag is None:
            raise _Unvectorizable(f"column type {column.dtype.value}")
        return f"{self.use_column(node.name)}[_i]", tag

    def variable(self, node: Variable) -> tuple[str, str]:
        try:
            value = self.evaluation.variable(node.name)
        except ExpressionError as exc:
            raise _Unvectorizable(str(exc)) from exc
        if value is NULL:
            raise _Unvectorizable(f"variable {node.name} is NULL")
        return self.const(value), _value_tag(value)

    # -- operators -------------------------------------------------------------

    def binary(self, node: BinaryOp) -> tuple[str, str]:
        op = node.op
        if op in ("and", "or"):
            left, left_tag = self.emit(node.left)
            right, right_tag = self.emit(node.right)
            if left_tag != "bool" or right_tag != "bool":
                raise _Unvectorizable(f"non-boolean {op} operand")
            return f"({left} {op} {right})", "bool"
        if op in _COMPARISON:
            return self.comparison(node)
        if op in ("+", "-", "*"):
            left, left_tag = self.emit(node.left)
            right, right_tag = self.emit(node.right)
            if left_tag not in _NUMERIC_TAGS or right_tag not in _NUMERIC_TAGS:
                raise _Unvectorizable(f"non-numeric {op!r}")
            tag = "float" if "float" in (left_tag, right_tag) else "int"
            return f"({left} {op} {right})", tag
        if op == "/":
            return self.division(node)
        if op == "%":
            return self.modulo(node)
        if op in _BITWISE:
            left, left_tag = self.emit(node.left)
            right, right_tag = self.emit(node.right)
            if left_tag not in ("int", "bool") or right_tag not in ("int", "bool"):
                raise _Unvectorizable(f"non-integer bitwise {op!r}")
            # The interpreter coerces both sides via int(), so booleans
            # produce int results (True & True is 1, not True).
            if left_tag == "bool":
                left = f"int({left})"
            if right_tag == "bool":
                right = f"int({right})"
            return f"({left} {op} {right})", "int"
        raise _Unvectorizable(f"operator {op!r}")

    def comparison(self, node: BinaryOp) -> tuple[str, str]:
        pyop = _PY_COMPARATORS[node.op]
        left, left_tag = self.emit(node.left)
        right, right_tag = self.emit(node.right)
        if left_tag in _NUMERIC_TAGS and right_tag in _NUMERIC_TAGS:
            return f"({left} {pyop} {right})", "bool"
        if left_tag == "str" and right_tag == "str":
            # The interpreter compares strings case-insensitively.
            return f"({left}.lower() {pyop} {right}.lower())", "bool"
        raise _Unvectorizable(f"comparison of {left_tag} with {right_tag}")

    def division(self, node: BinaryOp) -> tuple[str, str]:
        left, left_tag = self.emit(node.left)
        if left_tag not in _NUMERIC_TAGS:
            raise _Unvectorizable("non-numeric dividend")
        divisor = self.constant_value(node.right)
        if divisor is NULL or not isinstance(divisor, (int, float)) or divisor == 0:
            # A zero (or NULL) divisor makes the whole expression NULL —
            # three-valued logic the fallback path handles exactly.
            raise _Unvectorizable("division needs a non-zero constant divisor")
        if left_tag in ("int", "bool") and isinstance(divisor, int):
            # bool divisors count as ints, exactly as the interpreter's
            # isinstance(right, int) check does (7 / (1=1) is 7, not 7.0).
            helper = self.const(_make_int_div(int(divisor)))
            return f"{helper}({left})", "int"
        return f"({left} / {self.const(divisor)})", "float"

    def modulo(self, node: BinaryOp) -> tuple[str, str]:
        left, left_tag = self.emit(node.left)
        if left_tag not in _NUMERIC_TAGS:
            raise _Unvectorizable("non-numeric modulo")
        divisor = self.constant_value(node.right)
        if divisor is NULL or not isinstance(divisor, (int, float)) or divisor == 0:
            raise _Unvectorizable("modulo needs a non-zero constant divisor")
        if left_tag == "float" or isinstance(divisor, float):
            self.env.setdefault("_fmod", math.fmod)
            return f"_fmod({left}, {self.const(divisor)})", "float"
        return f"({left} % {self.const(divisor)})", "int"

    def unary(self, node: UnaryOp) -> tuple[str, str]:
        op = node.op
        operand, tag = self.emit(node.operand)
        if op == "-":
            if tag not in _NUMERIC_TAGS:
                raise _Unvectorizable("negation of non-number")
            return f"(-{operand})", "int" if tag == "bool" else tag
        if op == "+":
            if tag not in _NUMERIC_TAGS:
                raise _Unvectorizable("unary + of non-number")
            return operand, tag
        if op == "not":
            if tag != "bool":
                raise _Unvectorizable("NOT of non-boolean")
            return f"(not {operand})", "bool"
        if op == "is null":
            # Every codegen-supported subtree is provably non-NULL.
            return self.const(False), "bool"
        if op == "is not null":
            return self.const(True), "bool"
        raise _Unvectorizable(f"unary {op!r}")

    def between(self, node: Between) -> tuple[str, str]:
        operand, operand_tag = self.emit(node.operand)
        low, low_tag = self.emit(node.low)
        high, high_tag = self.emit(node.high)
        tags = {operand_tag, low_tag, high_tag}
        if not (tags <= _NUMERIC_TAGS or tags == {"str"}):
            raise _Unvectorizable("mixed-type BETWEEN")
        # Unlike `<=` comparisons, the interpreter's BETWEEN compares
        # strings case-sensitively — so no .lower() here.
        source = f"({low} <= {operand} <= {high})"
        if node.negated:
            source = f"(not {source})"
        return source, "bool"

    def in_list(self, node: InList) -> tuple[str, str]:
        operand, operand_tag = self.emit(node.operand)
        candidates = [self.constant_value(item) for item in node.items]
        if any(candidate is NULL for candidate in candidates):
            # A NULL candidate makes a non-matching IN evaluate to NULL.
            raise _Unvectorizable("NULL in IN list")
        if operand_tag == "str":
            # Case-insensitive string matching, like the interpreter:
            # lower the operand once and every string candidate.
            folded = {candidate.lower() if isinstance(candidate, str) else candidate
                      for candidate in candidates}
            membership = self.const(frozenset(folded))
            source = f"({operand}.lower() in {membership})"
        elif operand_tag in _NUMERIC_TAGS:
            membership = self.const(frozenset(candidates))
            source = f"({operand} in {membership})"
        else:
            raise _Unvectorizable(f"IN over {operand_tag}")
        if node.negated:
            source = f"(not {source})"
        return source, "bool"

    def like(self, node: Like) -> tuple[str, str]:
        operand, operand_tag = self.emit(node.operand)
        if operand_tag != "str":
            raise _Unvectorizable("LIKE over non-string")
        pattern = self.constant_value(node.pattern)
        if pattern is NULL:
            raise _Unvectorizable("NULL LIKE pattern")
        regex = self.const(re.compile(like_regex(pattern), re.IGNORECASE))
        test = "is None" if node.negated else "is not None"
        return f"({regex}.match({operand}) {test})", "bool"


class _JoinVectorCodegen(_VectorCodegen):
    """Vector codegen over a *joined* batch: columns from several tables.

    The batch's ``columns`` mapping is keyed by the qualified name
    ``"<binding>.<column>"`` (both parts lower-cased); gathered buffers
    are plain lists built by the batch hash join.  The same NULL-freedom
    rule as the single-table codegen applies, checked against each
    source table's column store, so the generated loop never has to
    consider three-valued logic.
    """

    def __init__(self, evaluation: EvaluationContext,
                 schema: "Mapping[str, Any]"):
        self.evaluation = evaluation
        self.schema = {binding.lower(): table for binding, table in schema.items()}
        self.env: dict[str, Any] = {}
        #: Qualified column key -> generated identifier, in first-use order.
        self.column_ids: dict[str, str] = {}
        self._scalar = _Compiler(evaluation)
        self._counter = 0

    def column(self, node: ColumnRef) -> tuple[str, str]:
        qualifier = (node.qualifier or "").lower()
        if qualifier:
            table = self.schema.get(qualifier)
            if table is None:
                raise _Unvectorizable(f"unknown binding {qualifier!r}")
            binding = qualifier
        else:
            owners = [(binding, table) for binding, table in self.schema.items()
                      if table.has_column(node.name)]
            if len(owners) != 1:
                raise _Unvectorizable(f"ambiguous column {node.name!r}")
            binding, table = owners[0]
        column = table.column(node.name)
        if column is None:
            raise _Unvectorizable(f"no column {node.sql()}")
        storage = table.storage
        if storage.kind != "column":
            raise _Unvectorizable("join side is not column-backed")
        if storage.column_null_count(node.name) > 0:
            raise _Unvectorizable(f"column {node.sql()} holds NULLs")
        tag = _DTYPE_TAGS.get(column.dtype)
        if tag is None:
            raise _Unvectorizable(f"column type {column.dtype.value}")
        key = f"{binding}.{node.name.lower()}"
        identifier = self.column_ids.get(key)
        if identifier is None:
            identifier = f"_jc{len(self.column_ids)}"
            self.column_ids[key] = identifier
        return f"{identifier}[_i]", tag


def _codegen_join_vector(expression: Expression, evaluation: EvaluationContext,
                         schema: "Mapping[str, Any]", predicate: bool
                         ) -> tuple[VectorExpression, str, list[str]]:
    """Generated-loop vector fn over a joined batch, or :class:`_Unvectorizable`.

    Returns ``(fn, tag, column_keys)`` where ``column_keys`` are the
    qualified ``"binding.column"`` keys the function reads — the batch
    join gathers exactly those columns.
    """
    generator = _JoinVectorCodegen(evaluation, schema)
    body, tag = generator.emit(expression)
    if predicate and tag != "bool":
        raise _Unvectorizable("predicate does not produce a boolean")
    lines = ["def _vector_fn(_batch, _sel):",
             "    _cols = _batch.columns"]
    for key, identifier in generator.column_ids.items():
        lines.append(f"    {identifier} = _cols[{key!r}]")
    if predicate:
        lines.append(f"    return [_i for _i in _sel if {body}]")
    else:
        lines.append(f"    return [{body} for _i in _sel]")
    namespace = dict(generator.env)
    exec(compile("\n".join(lines), "<join-vector-codegen>", "exec"), namespace)
    return namespace["_vector_fn"], tag, list(generator.column_ids)


def compile_join_vector_predicate(expression: Expression,
                                  evaluation: EvaluationContext,
                                  schema: "Mapping[str, Any]"
                                  ) -> tuple[VectorExpression, list[str]]:
    """Compile a predicate over a joined batch (no row fallback).

    Raises :class:`VectorCompileError` outside the codegen subset — the
    caller then abandons the whole batch-join pipeline and the operator
    tree executes row-at-a-time.
    """
    try:
        fn, _tag, keys = _codegen_join_vector(expression, evaluation, schema,
                                              predicate=True)
        return fn, keys
    except _Unvectorizable as exc:
        raise VectorCompileError(str(exc)) from exc


def compile_join_vector_projection(expression: Expression,
                                   evaluation: EvaluationContext,
                                   schema: "Mapping[str, Any]"
                                   ) -> tuple[VectorExpression, str, list[str]]:
    """Compile a scalar over a joined batch; returns ``(fn, tag, keys)``."""
    try:
        return _codegen_join_vector(expression, evaluation, schema,
                                    predicate=False)
    except _Unvectorizable as exc:
        raise VectorCompileError(str(exc)) from exc


def _codegen_vector(expression: Expression, evaluation: EvaluationContext,
                    table: "Any", binding_name: str,
                    predicate: bool) -> tuple[VectorExpression, str]:
    """Build a generated-loop vector function, or raise :class:`_Unvectorizable`."""
    generator = _VectorCodegen(evaluation, table, binding_name)
    body, tag = generator.emit(expression)
    if predicate and tag != "bool":
        # `FilterOp` keeps rows only when the predicate `is True`; a
        # truthy non-boolean must not pass, so don't generate `if body`.
        raise _Unvectorizable("predicate does not produce a boolean")
    lines = ["def _vector_fn(_batch, _sel):",
             "    _cols = _batch.columns"]
    for name in generator.columns:
        lines.append(f"    _c_{name} = _cols[{name!r}]")
    if predicate:
        lines.append(f"    return [_i for _i in _sel if {body}]")
    else:
        lines.append(f"    return [{body} for _i in _sel]")
    namespace = dict(generator.env)
    exec(compile("\n".join(lines), "<vector-codegen>", "exec"), namespace)
    fn = namespace["_vector_fn"]
    # The column names the generated loop reads.  A single-column
    # predicate can run over a sealed segment's dictionary instead of
    # its decoded rows (segments.SealedSegment.code_filter); row-view
    # fallbacks never set this, so they always take the decoded path.
    fn.vector_columns = list(generator.columns)
    return fn, tag


def _row_view_fallback(expression: Expression, evaluation: EvaluationContext,
                       table: "Any", binding_name: str) -> CompiledExpression:
    """A row-mode closure for batch row views; raises VectorCompileError."""
    try:
        return compile_row_expression(expression, evaluation, table, binding_name)
    except RowCompileError as exc:
        raise VectorCompileError(str(exc)) from exc


def compile_vector_predicate(expression: Expression, evaluation: EvaluationContext,
                             table: "Any", binding_name: str) -> VectorExpression:
    """Compile a predicate to ``fn(batch, selection) -> narrowed selection``.

    Prefers the generated-loop fast path; falls back to calling a
    row-mode closure per selected position (NULL-mask aware) when the
    expression is outside the codegen subset.  Raises
    :class:`VectorCompileError` when not even row mode applies.
    """
    try:
        fn, _tag = _codegen_vector(expression, evaluation, table, binding_name,
                                   predicate=True)
        return fn
    except _Unvectorizable:
        pass
    row_fn = _row_view_fallback(expression, evaluation, table, binding_name)

    def vector(batch: Any, selection: list) -> list:
        view = batch.row_view()
        kept = []
        append = kept.append
        for position in selection:
            view.index = position
            if row_fn(view) is True:
                append(position)
        return kept

    return vector


def compile_vector_projection(expression: Expression, evaluation: EvaluationContext,
                              table: "Any", binding_name: str
                              ) -> tuple[VectorExpression, Optional[str]]:
    """Compile a scalar to ``fn(batch, selection) -> [value, ...]``.

    Returns ``(fn, tag)`` where ``tag`` is the codegen type tag
    (``"int"``/``"float"``/``"bool"``/``"str"``) when the generated loop
    applies — the aggregation operator uses a numeric tag to take
    C-speed ``sum``/``min``/``max`` reductions — and ``None`` for the
    row-view fallback (whose values may include NULLs).
    """
    try:
        return _codegen_vector(expression, evaluation, table, binding_name,
                               predicate=False)
    except _Unvectorizable:
        pass
    row_fn = _row_view_fallback(expression, evaluation, table, binding_name)

    def vector(batch: Any, selection: list) -> list:
        view = batch.row_view()
        values = []
        append = values.append
        for position in selection:
            view.index = position
            append(row_fn(view))
        return values

    return vector, None


