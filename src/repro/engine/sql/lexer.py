"""SQL tokenizer.

Produces a flat token stream from SQL text, handling the T-SQL
peculiarities the paper's queries use: ``@variables``, ``##temp`` table
names, ``--`` line comments, ``/* */`` block comments, single-quoted
strings with doubled-quote escapes, and dotted identifiers (split into
separate NAME/DOT tokens so the parser can distinguish ``dbo.f(...)``
from ``alias.column``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SQLSyntaxError


class TokenType(enum.Enum):
    NAME = "name"
    NUMBER = "number"
    STRING = "string"
    VARIABLE = "variable"
    OPERATOR = "operator"
    COMMA = "comma"
    DOT = "dot"
    LPAREN = "lparen"
    RPAREN = "rparen"
    SEMICOLON = "semicolon"
    STAR = "star"
    END = "end"


@dataclass
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, *keywords: str) -> bool:
        return self.type is TokenType.NAME and self.value.lower() in {
            keyword.lower() for keyword in keywords}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r})"


_TWO_CHAR_OPERATORS = ("<=", ">=", "<>", "!=")
_ONE_CHAR_OPERATORS = "=<>+-/%&|^~"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`SQLSyntaxError` on unknown characters."""
    tokens: list[Token] = []
    line = 1
    column = 1
    position = 0
    length = len(text)

    def error(message: str) -> SQLSyntaxError:
        return SQLSyntaxError(message, line=line, column=column)

    while position < length:
        char = text[position]

        if char == "\n":
            line += 1
            column = 1
            position += 1
            continue
        if char in " \t\r":
            position += 1
            column += 1
            continue

        # Comments.
        if char == "-" and text.startswith("--", position):
            end = text.find("\n", position)
            position = length if end == -1 else end
            continue
        if char == "/" and text.startswith("/*", position):
            end = text.find("*/", position + 2)
            if end == -1:
                raise error("unterminated block comment")
            skipped = text[position:end + 2]
            line += skipped.count("\n")
            position = end + 2
            continue

        start_line, start_column = line, column

        # Strings.
        if char == "'":
            value_chars: list[str] = []
            position += 1
            column += 1
            while True:
                if position >= length:
                    raise error("unterminated string literal")
                current = text[position]
                if current == "'":
                    if position + 1 < length and text[position + 1] == "'":
                        value_chars.append("'")
                        position += 2
                        column += 2
                        continue
                    position += 1
                    column += 1
                    break
                if current == "\n":
                    line += 1
                    column = 1
                else:
                    column += 1
                value_chars.append(current)
                position += 1
            tokens.append(Token(TokenType.STRING, "".join(value_chars),
                                start_line, start_column))
            continue

        # Numbers.
        if char.isdigit() or (char == "." and position + 1 < length
                              and text[position + 1].isdigit()):
            end = position
            seen_dot = False
            seen_exponent = False
            while end < length:
                current = text[end]
                if current.isdigit():
                    end += 1
                elif current == "." and not seen_dot and not seen_exponent:
                    seen_dot = True
                    end += 1
                elif current in "eE" and not seen_exponent and end > position:
                    if end + 1 < length and (text[end + 1].isdigit()
                                             or text[end + 1] in "+-"):
                        seen_exponent = True
                        end += 2 if text[end + 1] in "+-" else 1
                    else:
                        break
                else:
                    break
            value = text[position:end]
            tokens.append(Token(TokenType.NUMBER, value, start_line, start_column))
            column += end - position
            position = end
            continue

        # Variables and temp-table names.
        if char == "@":
            end = position + 1
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            if end == position + 1:
                raise error("'@' must be followed by a variable name")
            tokens.append(Token(TokenType.VARIABLE, text[position + 1:end],
                                start_line, start_column))
            column += end - position
            position = end
            continue
        if char == "#":
            end = position
            while end < length and text[end] == "#":
                end += 1
            name_start = end
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            if name_start == end:
                raise error("'#' must start a temporary table name")
            tokens.append(Token(TokenType.NAME, text[position:end],
                                start_line, start_column))
            column += end - position
            position = end
            continue

        # Identifiers and keywords (optionally [bracketed]).
        if char.isalpha() or char == "_":
            end = position
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            tokens.append(Token(TokenType.NAME, text[position:end],
                                start_line, start_column))
            column += end - position
            position = end
            continue
        if char == "[":
            end = text.find("]", position)
            if end == -1:
                raise error("unterminated [bracketed] identifier")
            tokens.append(Token(TokenType.NAME, text[position + 1:end],
                                start_line, start_column))
            column += end - position + 1
            position = end + 1
            continue

        # Punctuation and operators.
        if char == ",":
            tokens.append(Token(TokenType.COMMA, ",", start_line, start_column))
        elif char == ".":
            tokens.append(Token(TokenType.DOT, ".", start_line, start_column))
        elif char == "(":
            tokens.append(Token(TokenType.LPAREN, "(", start_line, start_column))
        elif char == ")":
            tokens.append(Token(TokenType.RPAREN, ")", start_line, start_column))
        elif char == ";":
            tokens.append(Token(TokenType.SEMICOLON, ";", start_line, start_column))
        elif char == "*":
            tokens.append(Token(TokenType.STAR, "*", start_line, start_column))
        elif text[position:position + 2] in _TWO_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, text[position:position + 2],
                                start_line, start_column))
            position += 2
            column += 2
            continue
        elif char in _ONE_CHAR_OPERATORS:
            tokens.append(Token(TokenType.OPERATOR, char, start_line, start_column))
        else:
            raise error(f"unexpected character {char!r}")
        position += 1
        column += 1

    tokens.append(Token(TokenType.END, "", line, column))
    return tokens
