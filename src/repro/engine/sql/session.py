"""SQL session: executes multi-statement batches against a database.

A session owns the variable environment created by ``DECLARE``/``SET``
statements (the paper's Query 1 batch declares ``@saturated`` and sets
it from ``dbo.fPhotoFlags('saturated')`` before using it in the WHERE
clause) and runs SELECT statements through the planner.  The session
can also enforce the public SkyServer limits (1 000 rows / 30 seconds,
§4) when asked to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from ..catalog import Database
from ..errors import SQLSyntaxError
from ..expressions import RowScope
from ..operators import PhysicalPlan, QueryResult
from ..planner import Planner
from .ast import DeclareStatement, SelectStatement, SetStatement, Statement
from .parser import parse_batch


@dataclass
class StatementResult:
    """The outcome of one statement within a batch."""

    statement: Statement
    kind: str                      # "declare", "set" or "select"
    result: Optional[QueryResult] = None
    variable: Optional[str] = None
    value: Any = None


class SqlSession:
    """Executes SQL batches, keeping variable state between statements."""

    def __init__(self, database: Database, *,
                 row_limit: Optional[int] = None,
                 time_limit_seconds: Optional[float] = None,
                 planner: Optional[Planner] = None):
        self.database = database
        self.planner = planner or Planner(database)
        self.variables: dict[str, Any] = {}
        self.row_limit = row_limit
        self.time_limit_seconds = time_limit_seconds

    # -- variables ----------------------------------------------------------

    def declare(self, name: str, type_name: str = "bigint") -> None:
        self.variables.setdefault(name.lower(), None)

    def set_variable(self, name: str, value: Any) -> None:
        self.variables[name.lower()] = value

    # -- execution -------------------------------------------------------------

    def execute(self, sql_text: str) -> list[StatementResult]:
        """Execute every statement of ``sql_text``; returns per-statement results."""
        statements = parse_batch(sql_text)
        if not statements:
            raise SQLSyntaxError("empty SQL batch")
        results: list[StatementResult] = []
        for statement in statements:
            results.append(self._execute_statement(statement))
        return results

    def query(self, sql_text: str) -> QueryResult:
        """Execute a batch and return the result of its final SELECT."""
        results = self.execute(sql_text)
        for outcome in reversed(results):
            if outcome.kind == "select" and outcome.result is not None:
                return outcome.result
        raise SQLSyntaxError("batch contained no SELECT statement")

    def plan(self, sql_text: str) -> PhysicalPlan:
        """Plan (without executing) the first SELECT in ``sql_text``."""
        statements = parse_batch(sql_text)
        for statement in statements:
            if isinstance(statement, SelectStatement) and statement.query is not None:
                return self.planner.plan(statement.query)
        raise SQLSyntaxError("batch contained no SELECT statement")

    def explain(self, sql_text: str) -> str:
        return self.plan(sql_text).explain()

    # -- statement dispatch -------------------------------------------------------

    def _execute_statement(self, statement: Statement) -> StatementResult:
        if isinstance(statement, DeclareStatement):
            for name in statement.names:
                self.declare(name)
            return StatementResult(statement, "declare")
        if isinstance(statement, SetStatement):
            assert statement.expression is not None
            context = self.database.evaluation_context(self.variables)
            value = statement.expression.evaluate(RowScope(), context)
            self.set_variable(statement.name, value)
            return StatementResult(statement, "set", variable=statement.name, value=value)
        if isinstance(statement, SelectStatement):
            assert statement.query is not None
            plan = self.planner.plan(statement.query)
            result = plan.execute(self.variables, row_limit=self.row_limit,
                                  time_limit_seconds=self.time_limit_seconds)
            return StatementResult(statement, "select", result=result)
        raise SQLSyntaxError(f"unsupported statement type {type(statement).__name__}")
