"""SQL session: executes multi-statement batches against a database.

A session owns the variable environment created by ``DECLARE``/``SET``
statements (the paper's Query 1 batch declares ``@saturated`` and sets
it from ``dbo.fPhotoFlags('saturated')`` before using it in the WHERE
clause) and runs SELECT statements through the planner.  The session
can also enforce the public SkyServer limits (1 000 rows / 30 seconds,
§4) when asked to.

Sessions keep an LRU **plan cache** keyed by whitespace-normalised SQL
text.  The SkyServer workload is dominated by hot template queries (the
same cone searches and colour cuts over and over, §4/§7), so the second
execution of an identical batch skips the lexer, parser and planner
entirely and re-executes the cached physical plan.  Cache entries
record the catalog's schema version at planning time and are dropped
when DDL (CREATE/DROP of tables, views, indexes or functions) bumps it;
batches that themselves change the schema (``SELECT ... INTO``) are
never cached, because their plans capture catalog objects the next
execution would replace.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional

from ..catalog import Database
from ..errors import SQLSyntaxError
from ..expressions import RowScope
from ..operators import PhysicalOperator, PhysicalPlan, QueryResult, TableScan
from ..planner import Planner
from ..stats import FEEDBACK_QERROR_THRESHOLD, q_error
from ...telemetry.trace import TRACER
from .ast import (AnalyzeStatement, DeclareStatement, SelectStatement,
                  SetStatement, Statement)
from .parser import parse_batch


@dataclass
class StatementResult:
    """The outcome of one statement within a batch."""

    statement: Statement
    kind: str                      # "declare", "set", "select" or "analyze"
    result: Optional[QueryResult] = None
    variable: Optional[str] = None
    value: Any = None


@dataclass
class CachedBatch:
    """One plan-cache entry: a parsed batch and its per-statement plans."""

    schema_version: int
    statements: list[Statement]
    #: Plans keyed by statement position, filled lazily as statements run
    #: (a SELECT later in a batch must be planned after the statements
    #: before it have executed).
    plans: dict[int, PhysicalPlan] = field(default_factory=dict)


class PlanCache:
    """A small LRU of parsed/planned batches, invalidated by schema version."""

    def __init__(self, capacity: int = 128):
        self.capacity = capacity
        self._entries: "OrderedDict[str, CachedBatch]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    @staticmethod
    def normalize(sql_text: str) -> str:
        """Whitespace-collapsed cache key.

        Case is preserved and quoted string literals are copied verbatim
        (including their whitespace and ``''`` escapes): ``'a  b'`` and
        ``'a b'`` are different queries and must not share an entry.
        """
        out: list[str] = []
        pending_space = False
        i, n = 0, len(sql_text)
        while i < n:
            ch = sql_text[i]
            if ch == "'":
                end = i + 1
                while end < n:
                    if sql_text[end] == "'":
                        if end + 1 < n and sql_text[end + 1] == "'":
                            end += 2
                            continue
                        break
                    end += 1
                end = min(end, n - 1)
                if pending_space and out:
                    out.append(" ")
                pending_space = False
                out.append(sql_text[i:end + 1])
                i = end + 1
            elif ch.isspace():
                pending_space = True
                i += 1
            else:
                if pending_space and out:
                    out.append(" ")
                pending_space = False
                out.append(ch)
                i += 1
        return "".join(out)

    def get(self, sql_text: str, schema_version: int) -> Optional[CachedBatch]:
        key = self.normalize(sql_text)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if entry.schema_version != schema_version:
            del self._entries[key]
            self.invalidations += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, sql_text: str, entry: CachedBatch) -> None:
        key = self.normalize(sql_text)
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, sql_text: str) -> bool:
        return self.normalize(sql_text) in self._entries

    def statistics(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "evictions": self.evictions,
            "size": len(self._entries),
            "capacity": self.capacity,
        }


class SqlSession:
    """Executes SQL batches, keeping variable state between statements."""

    def __init__(self, database: Database, *,
                 row_limit: Optional[int] = None,
                 time_limit_seconds: Optional[float] = None,
                 planner: Optional[Planner] = None,
                 plan_cache_size: int = 128):
        self.database = database
        self.planner = planner or Planner(database)
        self.variables: dict[str, Any] = {}
        self.row_limit = row_limit
        self.time_limit_seconds = time_limit_seconds
        self.plan_cache = PlanCache(plan_cache_size)
        #: SELECT executions that ran (at least partly) through the
        #: vectorized batch pipeline vs purely row-at-a-time.
        self.batch_executions = 0
        self.row_executions = 0
        self.batches_processed = 0
        #: SELECT executions that dispatched morsels to the shared
        #: worker pool, and the total morsel count across them.
        self.parallel_executions = 0
        self.morsels_dispatched = 0
        #: Sealed segments scanned vs skipped-or-answered by zone maps
        #: across this session's SELECTs.
        self.segments_scanned = 0
        self.segments_skipped = 0
        #: Cardinality feedback, keyed like the plan cache plus statement
        #: position: observed per-relation row counts (with the schema
        #: version they were observed under) from executions whose worst
        #: per-operator q-error reached ``FEEDBACK_QERROR_THRESHOLD``.
        #: The misestimated cached plan is invalidated; the next
        #: execution re-plans with these counts as cardinality overrides.
        self.feedback_cache: dict[tuple[str, int],
                                  tuple[int, dict[str, int]]] = {}
        self.feedback_invalidations = 0
        self.feedback_replans = 0
        #: How the most recent SELECT obtained its plan: "cache" (plan
        #: cache hit), "planned" (fresh CBO/fallback plan) or
        #: "feedback" (re-planned with observed cardinalities).  Pure
        #: telemetry — read by spans and the query log, never by the
        #: engine itself.
        self.last_plan_source = ""
        #: When True, executions install per-operator wall-clock timers
        #: (EXPLAIN ANALYZE turns this on around its execution).
        self._time_operators = False

    # -- variables ----------------------------------------------------------

    def declare(self, name: str, type_name: str = "bigint") -> None:
        self.variables.setdefault(name.lower(), None)

    def set_variable(self, name: str, value: Any) -> None:
        self.variables[name.lower()] = value

    # -- execution -------------------------------------------------------------

    def execute(self, sql_text: str) -> list[StatementResult]:
        """Execute every statement of ``sql_text``; returns per-statement results."""
        entry, from_cache = self._lookup_or_parse(sql_text)
        if not entry.statements:
            raise SQLSyntaxError("empty SQL batch")
        results: list[StatementResult] = []
        cache_key = PlanCache.normalize(sql_text)
        for position, statement in enumerate(entry.statements):
            results.append(self._execute_statement(statement, entry, position,
                                                   from_cache, cache_key))
        if (not from_cache and self._cacheable(entry.statements)
                and self.database.schema_version == entry.schema_version):
            # Batches that perform DDL (SELECT INTO) are not cacheable:
            # their plans reference catalog objects they just replaced.
            self.plan_cache.put(sql_text, entry)
        return results

    def query(self, sql_text: str) -> QueryResult:
        """Execute a batch and return the result of its final SELECT."""
        results = self.execute(sql_text)
        for outcome in reversed(results):
            if outcome.kind == "select" and outcome.result is not None:
                return outcome.result
        raise SQLSyntaxError("batch contained no SELECT statement")

    def plan(self, sql_text: str) -> PhysicalPlan:
        """Plan (without executing) the first SELECT in ``sql_text``."""
        entry, from_cache = self._lookup_or_parse(sql_text)
        for position, statement in enumerate(entry.statements):
            if isinstance(statement, SelectStatement) and statement.query is not None:
                plan = entry.plans.get(position)
                if plan is None:
                    overrides = self._feedback_overrides(
                        PlanCache.normalize(sql_text), position)
                    plan = self.planner.plan(
                        statement.query, cardinality_overrides=overrides)
                    entry.plans[position] = plan
                if (not from_cache and self._cacheable(entry.statements)
                        and self.database.schema_version == entry.schema_version):
                    self.plan_cache.put(sql_text, entry)
                return plan
        raise SQLSyntaxError("batch contained no SELECT statement")

    def explain(self, sql_text: str, *, analyze: bool = False) -> str:
        """The plan of the batch's SELECT; EXPLAIN ANALYZE executes it first.

        With ``analyze=True`` the whole batch is executed — including
        its DECLARE/SET statements, honouring the session's limits —
        and, exactly like plain ``explain``, the *first* SELECT's plan
        is rendered, now with actual row counts next to the
        optimizer's estimates.
        """
        if analyze:
            # Per-operator wall-clock timers are installed only for this
            # execution: always-on tracing stays statement-level, so the
            # regular path never pays the per-row timing overhead.
            self._time_operators = True
            try:
                for outcome in self.execute(sql_text):
                    if outcome.kind == "select" and outcome.result is not None:
                        return outcome.result.plan.explain()
            finally:
                self._time_operators = False
            raise SQLSyntaxError("batch contained no SELECT statement")
        return self.plan(sql_text).explain()

    def optimizer_statistics(self) -> dict[str, int]:
        """CBO vs fallback plan counts from this session's planner."""
        return {
            "cbo_plans": self.planner.cbo_plans,
            "fallback_plans": self.planner.fallback_plans,
        }

    def execution_mode_statistics(self) -> dict[str, int]:
        """Batch vs row execution counters across this session's SELECTs."""
        return {
            "batch_executions": self.batch_executions,
            "row_executions": self.row_executions,
            "batches_processed": self.batches_processed,
            "parallel_executions": self.parallel_executions,
            "morsels_dispatched": self.morsels_dispatched,
            "segments_scanned": self.segments_scanned,
            "segments_skipped": self.segments_skipped,
        }

    # -- plan cache -------------------------------------------------------------

    def _lookup_or_parse(self, sql_text: str) -> tuple[CachedBatch, bool]:
        version = self.database.schema_version
        entry = self.plan_cache.get(sql_text, version)
        if entry is not None:
            return entry, True
        return CachedBatch(version, parse_batch(sql_text)), False

    @staticmethod
    def _cacheable(statements: list[Statement]) -> bool:
        """False for batches whose execution performs DDL (SELECT ... INTO)
        or mutates optimizer statistics (ANALYZE)."""
        for statement in statements:
            if isinstance(statement, AnalyzeStatement):
                return False
            if (isinstance(statement, SelectStatement)
                    and statement.query is not None and statement.query.into):
                return False
        return True

    # -- statement dispatch -------------------------------------------------------

    def _execute_statement(self, statement: Statement, entry: CachedBatch,
                           position: int, from_cache: bool,
                           cache_key: str) -> StatementResult:
        if isinstance(statement, DeclareStatement):
            for name in statement.names:
                self.declare(name)
            return StatementResult(statement, "declare")
        if isinstance(statement, SetStatement):
            assert statement.expression is not None
            context = self.database.evaluation_context(self.variables)
            value = statement.expression.evaluate(RowScope(), context)
            self.set_variable(statement.name, value)
            return StatementResult(statement, "set", variable=statement.name, value=value)
        if isinstance(statement, AnalyzeStatement):
            names = ([statement.table] if statement.table
                     else self.database.table_names())
            analyzed = [self.database.analyze_table(name).table for name in names]
            return StatementResult(statement, "analyze", value=analyzed)
        if isinstance(statement, SelectStatement):
            assert statement.query is not None
            tracer = TRACER
            if tracer.enabled:
                with tracer.span("plan") as span:
                    plan = self._acquire_plan(statement, entry, position,
                                              cache_key)
                    span.attributes["source"] = self.last_plan_source
                with tracer.span("execute") as span:
                    result = plan.execute(
                        self.variables, row_limit=self.row_limit,
                        time_limit_seconds=self.time_limit_seconds,
                        time_operators=self._time_operators)
                    stats = result.statistics
                    span.attributes.update(
                        rows=len(result.rows),
                        batches=stats.batches_processed,
                        morsels=stats.morsels_dispatched,
                        segments_scanned=stats.segments_scanned,
                        segments_skipped=stats.segments_skipped,
                        runtime_filter_rows_pruned=(
                            stats.runtime_filter_rows_pruned))
            else:
                plan = self._acquire_plan(statement, entry, position,
                                          cache_key)
                result = plan.execute(
                    self.variables, row_limit=self.row_limit,
                    time_limit_seconds=self.time_limit_seconds,
                    time_operators=self._time_operators)
            result.statistics.plan_cache_hits = 1 if from_cache else 0
            result.statistics.plan_cache_misses = 0 if from_cache else 1
            if result.statistics.batches_processed:
                self.batch_executions += 1
                self.batches_processed += result.statistics.batches_processed
            else:
                self.row_executions += 1
            if result.statistics.morsels_dispatched:
                self.parallel_executions += 1
                self.morsels_dispatched += result.statistics.morsels_dispatched
            self.segments_scanned += result.statistics.segments_scanned
            self.segments_skipped += result.statistics.segments_skipped
            self._record_feedback(cache_key, position, entry, plan)
            return StatementResult(statement, "select", result=result)
        raise SQLSyntaxError(f"unsupported statement type {type(statement).__name__}")

    def _acquire_plan(self, statement: SelectStatement, entry: CachedBatch,
                      position: int, cache_key: str) -> PhysicalPlan:
        """The statement's physical plan — cached, fresh, or feedback
        re-planned — recording which on :attr:`last_plan_source`."""
        plan = entry.plans.get(position)
        if plan is not None:
            self.last_plan_source = "cache"
            return plan
        overrides = self._feedback_overrides(cache_key, position)
        if overrides:
            self.feedback_replans += 1
            self.last_plan_source = "feedback"
        else:
            self.last_plan_source = "planned"
        plan = self.planner.plan(statement.query,
                                 cardinality_overrides=overrides)
        entry.plans[position] = plan
        return plan

    # -- cardinality feedback -----------------------------------------------------

    def _feedback_overrides(self, cache_key: str,
                            position: int) -> Optional[dict[str, int]]:
        """Observed per-relation row counts for a statement, if still valid."""
        entry = self.feedback_cache.get((cache_key, position))
        if entry is None:
            return None
        version, overrides = entry
        if version != self.database.schema_version:
            # DDL changed the catalog under the observation; drop it
            # rather than steer the planner with counts from tables that
            # may no longer mean the same thing.
            del self.feedback_cache[(cache_key, position)]
            return None
        return overrides

    def _record_feedback(self, cache_key: str, position: int,
                         entry: CachedBatch, plan: PhysicalPlan) -> None:
        """Compare the plan's estimates against its actual row counts.

        When the worst per-operator q-error reaches
        ``FEEDBACK_QERROR_THRESHOLD``, the observed base-relation
        cardinalities are stored in the feedback cache and the cached
        plan for this statement is invalidated, so the next execution
        re-plans with the observations as selectivity overrides.  Table
        scans narrowed by a sibling's runtime join filter are *not*
        observed: their counts reflect the build side's keys, not the
        relation's own predicate selectivity.
        """
        if not getattr(self.planner, "enable_cbo", False):
            return
        observed: dict[str, int] = {}
        worst = 1.0

        def walk(operator: PhysicalOperator) -> None:
            nonlocal worst
            if operator.planner_rows is not None:
                pruned_scan = isinstance(operator, TableScan) and (
                    operator.actual_runtime_segments_pruned
                    or operator.actual_runtime_rows_pruned)
                if not pruned_scan:
                    worst = max(worst, q_error(operator.planner_rows,
                                               operator.actual_rows))
                    if isinstance(operator, TableScan):
                        observed[operator.binding_name.lower()] = \
                            operator.actual_rows
            for child in operator.children():
                walk(child)

        walk(plan.root)
        if worst < FEEDBACK_QERROR_THRESHOLD:
            return
        key = (cache_key, position)
        previous = self.feedback_cache.get(key)
        if (previous is not None
                and previous == (self.database.schema_version, observed)):
            # Already re-planned from exactly these observations; the
            # residual misestimate is not something base-relation
            # overrides can fix, so keep the current plan.
            return
        self.feedback_cache[key] = (self.database.schema_version, observed)
        if entry.plans.pop(position, None) is not None:
            self.feedback_invalidations += 1

    def feedback_statistics(self) -> dict[str, int]:
        """Cardinality-feedback counters for this session."""
        return {
            "entries": len(self.feedback_cache),
            "invalidations": self.feedback_invalidations,
            "replans": self.feedback_replans,
        }
