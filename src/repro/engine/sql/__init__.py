"""SQL front-end: lexer, parser and session for the engine's T-SQL subset.

The subset is what the paper's queries need: multi-statement batches
with ``DECLARE``/``SET`` variables, ``SELECT [TOP n] ... INTO ##temp``,
explicit ``JOIN ... ON`` and comma joins, table-valued functions in the
FROM clause, ``WHERE`` with arithmetic, bitwise flags, ``BETWEEN``,
``IN``, ``LIKE``, aggregates with ``GROUP BY``/``HAVING``,
``ORDER BY``, and ``ANALYZE [table]`` for optimizer statistics.
"""

from .ast import (AnalyzeStatement, DeclareStatement, SelectStatement,
                  SetStatement, Statement)
from .lexer import Token, TokenType, tokenize
from .parser import parse_batch, parse_expression, parse_select
from .session import PlanCache, SqlSession, StatementResult

__all__ = [
    "Statement",
    "AnalyzeStatement",
    "DeclareStatement",
    "SelectStatement",
    "SetStatement",
    "Token",
    "TokenType",
    "tokenize",
    "parse_batch",
    "parse_expression",
    "parse_select",
    "PlanCache",
    "SqlSession",
    "StatementResult",
]
